#!/usr/bin/env python3
"""Two population-based optimizers, one MapReduce framework.

Runs the Apiary PSO and the island-model GA on the same benchmark
function with the same evaluation budget and prints their convergence
side by side — both expressed as iterative MapReduce programs over the
identical runtime machinery (fused ReduceMap iterations, ring
communication, offset-keyed random streams).

Run:

    python examples/optimization_suite.py [function] [dims]
"""

import sys

from repro.apps.ga import IslandGA
from repro.apps.pso.mrpso import ApiaryPSO
from repro.core.main import run_program


def run_pso(function, dims, budget_rounds):
    flags = [
        "--mrs-seed", "9", "--pso-function", function,
        "--pso-dims", str(dims), "--pso-subswarms", "4",
        "--pso-particles", "10", "--pso-inner", "5",
        "--pso-outer", str(budget_rounds),
    ]
    prog = run_program(ApiaryPSO, flags, impl="serial")
    return [(r.evals, r.best) for r in prog.convergence], prog.best_value


def run_ga(function, dims, budget_rounds):
    flags = [
        "--mrs-seed", "9", "--ga-function", function,
        "--ga-dims", str(dims), "--ga-islands", "4",
        "--ga-pop", "10", "--ga-gens", "5",
        "--ga-rounds", str(budget_rounds),
    ]
    prog = run_program(IslandGA, flags, impl="serial")
    return [(r[1], r[3]) for r in prog.convergence], prog.best_fitness


def main() -> int:
    function = sys.argv[1] if len(sys.argv) > 1 else "rastrigin"
    dims = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    rounds = 25
    print(f"{function}-{dims}, 4 islands/hives x 10 individuals, "
          f"{rounds} outer rounds\n")

    pso_curve, pso_best = run_pso(function, dims, rounds)
    ga_curve, ga_best = run_ga(function, dims, rounds)

    print(f"  {'PSO evals':>10} {'PSO best':>12}   {'GA evals':>10} {'GA best':>12}")
    for (pe, pb), (ge, gb) in zip(pso_curve[::3], ga_curve[::3]):
        print(f"  {pe:>10} {pb:>12.4g}   {ge:>10} {gb:>12.4g}")
    print(f"\nfinal: PSO {pso_best:.6g}  |  GA {ga_best:.6g}")
    print("(both runs are bit-reproducible: same seed, same trajectory "
          "in any execution context)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
