#!/usr/bin/env python3
"""Quickstart: WordCount, the paper's Program 1, end to end.

Generates a small synthetic Gutenberg-style corpus, runs WordCount
through four execution contexts (the paper's debugging methodology:
they must agree) — serial, mock parallel, a multiprocess worker pool —
and finishes with a real distributed run: an in-process master plus
two slave subprocesses speaking XML-RPC.

Run:

    python examples/quickstart.py

Pass ``--mrs-metrics-json out.json`` to dump the serial run's metrics
report — startup time, per-phase (map/shuffle/reduce) breakdown, and
one span per task — as JSON.  Pass ``--mrs-event-log events.jsonl``
and/or ``--mrs-trace trace.json`` to record the serial run's structured
event stream and a Chrome/Perfetto timeline (open the trace at
https://ui.perfetto.dev).
"""

import argparse
import os
import sys
import tempfile

from repro.apps.wordcount import WordCountCombined, output_counts
from repro.core.main import run_program
from repro.datagen import CorpusSpec, generate_corpus
from repro.runtime.cluster import run_on_cluster


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mrs-metrics-json",
        dest="metrics_json",
        metavar="PATH",
        default=None,
        help="dump the serial run's metrics report as JSON to PATH",
    )
    parser.add_argument(
        "--mrs-event-log",
        dest="event_log",
        metavar="PATH",
        default=None,
        help="append the serial run's structured events to PATH (JSONL)",
    )
    parser.add_argument(
        "--mrs-trace",
        dest="trace",
        metavar="PATH",
        default=None,
        help="write a Chrome/Perfetto trace of the serial run to PATH",
    )
    cli = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="mrs_quickstart_")
    corpus_root = os.path.join(workdir, "corpus")
    print(f"Generating a 30-file synthetic corpus under {corpus_root} ...")
    generate_corpus(
        corpus_root,
        CorpusSpec(n_files=30, mean_words_per_file=500, seed=1),
    )

    # 1. Serial: the default implementation, fully deterministic.
    serial = run_program(
        WordCountCombined,
        [corpus_root, os.path.join(workdir, "out_serial")],
        impl="serial",
        metrics_json=cli.metrics_json,
        event_log=cli.event_log,
        trace=cli.trace,
    )
    counts = output_counts(serial)
    print(f"serial:       {len(counts)} distinct words")
    if cli.event_log:
        print(f"event log:    {cli.event_log}")
    if cli.trace:
        print(f"trace:        {cli.trace} (open at https://ui.perfetto.dev)")
    if cli.metrics_json:
        from repro.observability import export

        report = serial.metrics_report
        phases = ", ".join(
            f"{name} {export.phase_seconds(report, name) * 1000:.0f} ms"
            for name in ("map", "shuffle", "reduce")
        )
        print(
            f"metrics:      startup "
            f"{export.startup_seconds(report) * 1000:.0f} ms; {phases}; "
            f"{export.span_count(report)} task spans -> {cli.metrics_json}"
        )

    # 2. Mock parallel: same task split as a cluster, one process,
    #    all intermediate data through files (catches serialization bugs).
    mock = run_program(
        WordCountCombined,
        [corpus_root, os.path.join(workdir, "out_mock")],
        impl="mockparallel",
    )
    assert output_counts(mock) == counts, "implementations must agree!"
    print("mockparallel: identical output ✓")

    # 3. Multiprocess: a real worker pool on this machine — parallel
    #    map/reduce without starting a master and slaves by hand.
    pool = run_program(
        WordCountCombined,
        [corpus_root, os.path.join(workdir, "out_pool")],
        impl="multiprocess",
        procs=2,
    )
    assert output_counts(pool) == counts, "implementations must agree!"
    print("multiprocess: identical output ✓ (2 worker processes)")

    # 4. Distributed: master in this process, 2 slave subprocesses.
    distributed = run_on_cluster(
        WordCountCombined,
        [corpus_root, os.path.join(workdir, "out_cluster")],
        n_slaves=2,
    )
    assert output_counts(distributed) == counts, "implementations must agree!"
    print("master/slave: identical output ✓ (2 slaves over XML-RPC)")

    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print("\nTop five words:")
    for word, count in top:
        print(f"  {word:10s} {count}")
    print(f"\nOutput files: {os.path.join(workdir, 'out_cluster')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
