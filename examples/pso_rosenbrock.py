#!/usr/bin/env python3
"""Apiary PSO on Rosenbrock (the Fig 4 workload), serial and parallel.

Optimizes the Rosenbrock function with the Apiary subswarm topology:
each map task advances one hive for several inner iterations, the
reduce exchanges hive bests around a ring.  Prints a convergence table
(best value vs function evaluations vs wall time, the two panels of
Fig 4) for the serial bypass implementation and for a real 2-slave
cluster, and reports the measured per-iteration overhead the paper
quotes as ~0.3 s (vs >= 30 s for Hadoop).

Run:

    python examples/pso_rosenbrock.py [dims]
"""

import sys

from repro.apps.pso.mrpso import ApiaryPSO, serial_apiary_pso
from repro.runtime.cluster import run_on_cluster


def convergence_table(title, records, limit=8):
    print(f"\n{title}")
    print(f"  {'iter':>5} {'evals':>8} {'seconds':>8} {'best':>12}")
    step = max(1, len(records) // limit)
    shown = records[::step]
    if records and shown[-1] is not records[-1]:
        shown.append(records[-1])
    for r in shown:
        print(f"  {r.iteration:>5} {r.evals:>8} {r.elapsed:>8.2f} {r.best:>12.4g}")


def main() -> int:
    dims = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    flags = [
        "--mrs-seed", "42",
        "--pso-function", "rosenbrock",
        "--pso-dims", str(dims),
        "--pso-subswarms", "4",
        "--pso-particles", "5",
        "--pso-inner", "10",
        "--pso-outer", "30",
    ]
    print(f"Rosenbrock-{dims}, Apiary topology: 4 hives x 5 particles, "
          "10 inner iterations per map task")

    serial = serial_apiary_pso(
        function="rosenbrock", dims=dims, n_subswarms=4, particles_per=5,
        inner_iters=10, max_outer=30, seed=42,
    )
    convergence_table("Serial (bypass implementation):", serial.convergence)

    parallel = run_on_cluster(ApiaryPSO, flags, n_slaves=2)
    convergence_table("Parallel (master + 2 slaves):", parallel.convergence)

    assert [r.best for r in parallel.convergence] == [
        r.best for r in serial.convergence
    ], "stochastic equivalence must hold (section IV-A)"
    print("\nSerial and parallel trajectories are bit-identical ✓")

    serial_total = serial.convergence[-1].elapsed
    parallel_total = parallel.convergence[-1].elapsed
    iterations = len(parallel.convergence)
    print(f"\nserial wall time   : {serial_total:6.2f}s "
          f"({serial_total / iterations * 1000:.0f} ms/iteration)")
    print(f"parallel wall time : {parallel_total:6.2f}s "
          f"({parallel_total / iterations * 1000:.0f} ms/iteration, "
          "includes per-iteration MapReduce overhead)")
    print("Paper reference: ~0.3s/iteration overhead for Mrs; ~30s for "
          "Hadoop — two orders of magnitude (section V-B).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
