#!/usr/bin/env python3
"""Estimate pi with quasi-random Halton sampling (the Fig 3 workload).

Runs the PiEstimator MapReduce program with both inner-loop kernels —
optimized pure Python (Fig 3a) and the vectorized NumPy kernel that
stands in for the paper's ctypes C module (Fig 3b) — and contrasts the
measured Mrs times with the modeled Hadoop time for the same job from
the discrete-event simulator.

Run:

    python examples/pi_estimation.py [total_samples]
"""

import math
import sys
import time

from repro.apps.pi.estimator import PiEstimator
from repro.core.main import run_program
from repro.hadoopsim import HadoopCluster, HadoopJob


def run_kernel(samples: int, tasks: int, kernel: str):
    started = time.perf_counter()
    program = run_program(
        PiEstimator,
        [
            "--pi-samples", str(samples),
            "--pi-tasks", str(tasks),
            "--pi-kernel", kernel,
        ],
        impl="serial",
    )
    elapsed = time.perf_counter() - started
    return program.pi_estimate, elapsed


def main() -> int:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000_000
    tasks = 8
    print(f"Estimating pi from {samples:,} Halton points ({tasks} map tasks)\n")

    estimate_py, seconds_py = run_kernel(samples, tasks, "python")
    print(f"Mrs, pure-Python kernel : pi ≈ {estimate_py:.6f} "
          f"(err {abs(estimate_py - math.pi):.2e})  in {seconds_py:6.2f}s")

    estimate_np, seconds_np = run_kernel(samples, tasks, "numpy")
    print(f"Mrs, NumPy kernel ('C') : pi ≈ {estimate_np:.6f} "
          f"(err {abs(estimate_np - math.pi):.2e})  in {seconds_np:6.2f}s")
    assert estimate_py == estimate_np, "kernels must agree exactly"

    # What would the identical job cost on Hadoop?  The simulator
    # charges the calibrated control-plane overheads plus modeled Java
    # compute time.
    cluster = HadoopCluster(n_nodes=4, map_slots_per_node=2)
    model = cluster.model
    python_rate = samples / max(seconds_py, 1e-9)
    java_seconds_per_task = (samples / tasks) / (
        python_rate * model.java_speedup_vs_python
    )
    result = HadoopJob(cluster).run_modeled(
        map_seconds=java_seconds_per_task,
        n_map_tasks=tasks,
        reduce_seconds=0.01,
        n_reduce_tasks=1,
    )
    print(f"Hadoop (modeled)        : {result.modeled_seconds:6.1f}s  "
          f"[{result.breakdown!r}]")
    print(
        "\nThe fixed ~30s Hadoop floor dominates until tasks take tens of"
        "\nseconds each — the paper's core overhead argument (Fig 3)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
