#!/usr/bin/env python3
"""Monte Carlo parameter sweep — the bread-and-butter scientific job.

Estimates the expected running maximum of a drifted random walk as a
function of the drift, with per-replicate independent random streams
and streaming-moment aggregation (Welford/Chan), then verifies the
MapReduce statistics against a plain sequential run.

Run:

    python examples/parameter_sweep.py [replicates]
"""

import sys

from repro.apps.sweep import RandomWalkSweep
from repro.core.main import run_program


def main() -> int:
    replicates = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    flags = [
        "--sweep-replicates", str(replicates),
        "--sweep-chunk", "50",
        "--walk-steps", "200",
        "--mrs-seed", "123",
    ]
    print(f"random-walk sweep: 5 drift values x {replicates} replicates "
          "(200 steps each)\n")
    prog = run_program(RandomWalkSweep, flags, impl="serial")

    print(f"  {'drift':>7} {'mean max':>10} {'95% CI':>16} {'n':>6}")
    for index, drift in enumerate(prog.grid):
        m = prog.results[index]
        half = 1.96 * m.std_error
        print(f"  {drift:>7.2f} {m.mean:>10.3f} "
              f"[{m.mean - half:7.3f}, {m.mean + half:7.3f}] {m.count:>6}")

    bypass = run_program(RandomWalkSweep, flags, impl="bypass")
    worst = max(
        abs(prog.results[i].mean - bypass.results[i].mean)
        for i in prog.results
    )
    print(f"\nMapReduce vs sequential statistics: max |Δmean| = {worst:.2e} ✓")
    print("(identical replicate streams; only the merge-tree rounding "
          "differs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
