#!/usr/bin/env python3
"""Side-by-side: what the same WordCount job costs on Mrs vs Hadoop.

Generates a Gutenberg-layout corpus, runs WordCount for real on Mrs
(serial and a 2-slave cluster, measured wall-clock), then runs the
*same user code* through the Hadoop simulator, which executes the real
map/reduce functions for output parity and charges the calibrated
0.20-era control-plane costs on a virtual clock.

Also prints the startup-script comparison (Programs 3 vs 4): the
4-step Mrs launch against the 6-phase Hadoop launch that must format
HDFS and start daemons per job on a shared cluster.

Run:

    python examples/hadoop_comparison.py [n_files]
"""

import os
import sys
import tempfile
import time

from repro.apps.wordcount import WordCountCombined, output_counts
from repro.core.main import run_program
from repro.core.options import default_options
from repro.datagen import CorpusSpec, generate_corpus, corpus_file_list
from repro.hadoopsim import HadoopJob
from repro.hadoopsim.jobclient import compare_startup_scripts
from repro.runtime.cluster import run_on_cluster


def main() -> int:
    n_files = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    workdir = tempfile.mkdtemp(prefix="mrs_vs_hadoop_")
    root = os.path.join(workdir, "corpus")
    generate_corpus(root, CorpusSpec(n_files=n_files, mean_words_per_file=800, seed=5))
    paths = corpus_file_list(root)
    print(f"corpus: {n_files} files in the nested Gutenberg layout\n")

    started = time.perf_counter()
    serial = run_program(
        WordCountCombined, [root, os.path.join(workdir, "o1")], impl="serial"
    )
    mrs_serial = time.perf_counter() - started

    started = time.perf_counter()
    cluster_prog = run_on_cluster(
        WordCountCombined, [root, os.path.join(workdir, "o2")], n_slaves=2
    )
    mrs_cluster = time.perf_counter() - started

    hadoop_program = WordCountCombined(default_options(), [])
    result = HadoopJob().run_program(
        hadoop_program, paths, n_reduce_tasks=2,
        combiner=hadoop_program.combine,
    )
    assert dict(result.pairs) == output_counts(serial) == output_counts(
        cluster_prog
    ), "all three executions must produce identical counts"

    print("same job, same code, identical output on all three paths ✓\n")
    print(f"  Mrs serial (measured)          {mrs_serial:8.2f} s")
    print(f"  Mrs 2-slave cluster (measured) {mrs_cluster:8.2f} s  "
          "(includes ~1s cluster spin-up)")
    print(f"  Hadoop (modeled)               {result.modeled_seconds:8.2f} s")
    print(f"    of which startup             {result.startup_seconds:8.2f} s  "
          "(submit + input enumeration + setup task)")
    for phase, seconds in sorted(result.breakdown.phases.items()):
        print(f"      {phase:<22s} {seconds:8.2f} s")

    print("\nStartup scripts (Programs 3 vs 4):")
    reports = compare_startup_scripts(n_input_files=n_files)
    for name, report in reports.items():
        print(f"  {name:<7s} {report.step_count} steps, "
              f"{report.total:6.1f} s modeled")
        for step in report.steps:
            print(f"      {step.name:<28s} {step.seconds:6.2f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
