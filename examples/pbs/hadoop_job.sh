#!/bin/bash
# Program 4 of the paper: minimal PBS script for a Hadoop job on a
# *shared* cluster, where the per-job HDFS and daemons must be stood up
# and torn down around every job.  Kept for the side-by-side step-count
# comparison with mrs_job.sh (experiment E2); requires a real Hadoop
# distribution to actually run.
#
#PBS -l nodes=21:ppn=6
#PBS -l walltime=01:00:00

set -eu

# Step 1: Find the network address.
ADDR=$(/sbin/ip -o -4 addr list "$INTERFACE" | sed -e 's;^.*inet \(.*\)/.*$;\1;')

# Step 2: Set up the Hadoop configuration (per-job; note the sed —
# these files are oriented to a dedicated installation and must be
# *edited*, not just copied).
export HADOOP_LOG_DIR=$JOBDIR/log
mkdir -p "$HADOOP_LOG_DIR"
export HADOOP_CONF_DIR=$JOBDIR/conf
cp -R "$HADOOP_HOME/conf" "$HADOOP_CONF_DIR"
sed -e "s/MASTER_IP_ADDRESS/$ADDR/g" \
    -e "s@HADOOP_TMP_DIR@$JOBDIR/tmp@g" \
    -e "s/MAP_TASKS/$MAP_TASKS/g" \
    -e "s/REDUCE_TASKS/$REDUCE_TASKS/g" \
    -e "s/TASKS_PER_NODE/$TASKS_PER_NODE/g" \
    <"$HADOOP_HOME/conf/hadoop-site.xml" \
    >"$HADOOP_CONF_DIR/hadoop-site.xml"

# Step 3: Start daemons on the master (including formatting a fresh
# per-job HDFS).
HADOOP="$HADOOP_HOME/bin/hadoop"
$HADOOP namenode -format
"$HADOOP_HOME/bin/hadoop-daemon.sh" start namenode
"$HADOOP_HOME/bin/hadoop-daemon.sh" start jobtracker

# Step 4: Start daemons on the slaves.
pbsdsh -u "$HADOOP_HOME/bin/hadoop-daemon.sh" start datanode
pbsdsh -u "$HADOOP_HOME/bin/hadoop-daemon.sh" start tasktracker

# Step 5: Copy data in, run the MapReduce job, copy data out.
$HADOOP fs -put "$INPUT_DIR" /input
$HADOOP jar "$JAR" "$MAIN_CLASS" /input /output
$HADOOP fs -get /output "$JOBDIR/output"

# Step 6: Stop daemons everywhere (the per-job HDFS and all data in it
# disappear with them).
pbsdsh -u "$HADOOP_HOME/bin/hadoop-daemon.sh" stop tasktracker
pbsdsh -u "$HADOOP_HOME/bin/hadoop-daemon.sh" stop datanode
"$HADOOP_HOME/bin/hadoop-daemon.sh" stop jobtracker
"$HADOOP_HOME/bin/hadoop-daemon.sh" stop namenode
