#!/bin/bash
# Program 3 of the paper: minimal PBS script for a Mrs job.
#
# Four basic parts: find the network address, start the master, wait
# for the master's port file, start the slaves.  Environment variables
# not defined here (INTERFACE, JOBDIR, PROGRAM, ARGS, PBS_NODEFILE) are
# assumed to be set externally, exactly as in the paper.
#
#PBS -l nodes=21:ppn=6
#PBS -l walltime=01:00:00

set -eu

# Step 1: Find the network address.
ADDR=$(/sbin/ip -o -4 addr list "$INTERFACE" | sed -e 's;^.*inet \(.*\)/.*$;\1;')

# Step 2: Start the master.
PORT_FILE=$JOBDIR/master.run
python "$PROGRAM" --mrs master --mrs-host "$ADDR" \
    --mrs-runfile "$PORT_FILE" --mrs-tmpdir "$JOBDIR/tmp" $ARGS &
MASTER_PID=$!

# Step 3: Wait for the master to start.
while [[ ! -e $PORT_FILE ]]; do sleep 1; done
MASTER=$(cat "$PORT_FILE")

# Step 4: Start the slaves (one per processor slot; pbsdsh fans out
# across the allocation — pssh works the same way on private clusters).
pbsdsh -u python "$PROGRAM" --mrs slave --mrs-master "$MASTER" \
    --mrs-tmpdir "$JOBDIR/tmp" $ARGS &

wait $MASTER_PID
