#!/usr/bin/env python3
"""k-means clustering as iterative MapReduce.

Clusters synthetic Gaussian blobs with Lloyd's algorithm expressed as
repeated map (assign point to nearest centroid) / reduce (average each
cluster) rounds, with the reduce doubling as a combiner.  Shows the
per-iteration centroid shift converging to zero and verifies the
MapReduce result against the plain-NumPy bypass implementation.

Run:

    python examples/kmeans_clustering.py
"""

import sys

import numpy as np

from repro.apps.kmeans import KMeans
from repro.core.main import run_program

FLAGS = [
    "--km-points", "1500",
    "--km-clusters", "5",
    "--km-dims", "3",
    "--km-iters", "30",
    "--km-splits", "4",
    "--mrs-seed", "42",
]


def main() -> int:
    print("Clustering 1500 points (5 blobs, 3 dims) with MapReduce k-means\n")
    program = run_program(KMeans, FLAGS, impl="serial")

    print(f"  {'iteration':>9} {'max centroid shift':>20}")
    for i, shift in enumerate(program.shift_history, 1):
        print(f"  {i:>9} {shift:>20.6f}")
    print(f"\nconverged after {program.iterations_run} iterations")
    print(f"inertia (sum of squared distances): {program.inertia:.2f}")

    bypass = run_program(KMeans, FLAGS, impl="bypass")
    assert np.allclose(program.centroids, bypass.centroids, atol=1e-8)
    print("MapReduce centroids match the plain-NumPy implementation ✓")

    print("\nfinal centroids:")
    for row in program.centroids:
        print("  [" + ", ".join(f"{v:7.3f}" for v in row) + "]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
