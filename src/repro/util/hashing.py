"""Deterministic hashing helpers.

Partition functions must behave identically in every process of a job:
the master, every slave, and every worker subprocess must agree on which
split a key belongs to.  Python's builtin ``hash`` is randomized per
process for ``str``/``bytes`` (PYTHONHASHSEED), so the framework never
uses it for placement decisions.  These helpers provide a stable,
process-independent hash built on :mod:`hashlib`.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any

# The single pinned pickle protocol for the whole framework: canonical
# key bytes here AND the default value serializer (io/serializers.py)
# both use it, so a mixed-version cluster never disagrees about wire
# bytes and hashes stay reproducible across interpreter upgrades.
# Protocol 4 (available since CPython 3.4) is deterministic for the
# types used as MapReduce keys (str, bytes, int, float, tuples thereof)
# and — unlike protocol 2 — frames binary payloads efficiently, which
# matters for pickled values.  ``HIGHEST_PROTOCOL`` would drift with
# the interpreter; a literal cannot.
PICKLE_PROTOCOL = 4

# Backward-compatible alias (pre-unification name).
_PICKLE_PROTOCOL = PICKLE_PROTOCOL


_crc32 = zlib.crc32
# Fibonacci-hashing multiplier (golden ratio scaled to 64 bits): spreads
# the CRC's 32 bits across the full word so any ``% n_splits`` sees
# well-mixed high and low bits.
#
# The native shuffle kernels (src/repro/native/_shuffle.c: mrs_hash64)
# reimplement crc32 * _MIX mod 2^64 in C; placement there and here MUST
# agree bit-for-bit, so any change to this construction has to land in
# both places (tests/io/test_native_kernels.py locks the parity).
_MIX = 0x9E3779B97F4A7C15
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash_bytes(data: bytes) -> int:
    """Return a stable 64-bit unsigned hash of ``data``.

    Placement only needs determinism across processes and platforms,
    not cryptographic strength — and this runs once per emitted record,
    so it must be cheap.  CRC-32 (C-speed, seed-independent, identical
    on every platform) followed by a Fibonacci multiply to spread the
    bits over 64 positions replaces the previous per-record
    ``hashlib.blake2b`` construction, which cost more than the key
    encoding it hashed.
    """
    return (_crc32(data) * _MIX) & _MASK


def _key_to_bytes_general(key: Any) -> bytes:
    """The full dispatch chain for keys whose exact type has no fast
    path: subclasses of the common types, and everything pickled."""
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bool):
        # bool is an int subclass; tag it distinctly.
        return b"B:" + (b"1" if key else b"0")
    if isinstance(key, int):
        cls = type(key)
        type_tag = f"{cls.__module__}.{cls.__qualname__}".encode("utf-8")
        return b"I:" + type_tag + b":" + str(int(key)).encode("ascii")
    return b"p:" + pickle.dumps(key, _PICKLE_PROTOCOL)


def key_to_bytes(key: Any) -> bytes:
    """Encode a key to bytes for hashing.

    Strings and bytes get a direct, canonical encoding; other objects
    fall back to a pinned-protocol pickle.  A leading type tag prevents
    collisions between, e.g., the string ``"1"`` and the integer ``1``
    having accidentally identical encodings.

    ``int`` *subclasses* (``enum.IntEnum`` and friends) are tagged with
    their qualified type name rather than routed through the plain-int
    branch: an ``IntEnum`` key must not silently collide with its
    integer value, because two processes of one job may disagree about
    which of the two types a key has (e.g. a slave that rebuilt the key
    from serialized data as a plain int) and placement decisions would
    then diverge.  ``bool`` keeps its own dedicated tag.

    This runs once per emitted record on the encode-once data plane,
    so the common key types take exact-``type`` fast paths; subclasses
    and everything else drop to the general isinstance chain, which
    preserves their distinct type tags.
    """
    tp = type(key)
    if tp is str:
        return b"s:" + key.encode("utf-8")
    if tp is bytes:
        return b"b:" + key
    if tp is int:
        return b"i:" + str(key).encode("ascii")
    if tp is bool:
        return b"B:" + (b"1" if key else b"0")
    return _key_to_bytes_general(key)


def stable_hash(key: Any) -> int:
    """Return a stable 64-bit unsigned hash of an arbitrary key."""
    return stable_hash_bytes(key_to_bytes(key))
