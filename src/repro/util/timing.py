"""Wall-clock measurement helpers used by the runtime and benchmarks."""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Optional, Tuple


class Stopwatch:
    """A restartable stopwatch accumulating elapsed wall-clock time.

    >>> sw = Stopwatch()
    >>> sw.start(); sw.stop()  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Stopwatch":
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None
        return self._accumulated

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        total = self._accumulated
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class PhaseTimer:
    """Accumulate wall-clock time attributed to named phases.

    Used by the runtimes to break a job into setup / map / shuffle /
    reduce phases the same way the paper's evaluation discusses
    "startup" vs "total" time.
    """

    def __init__(self) -> None:
        self._phases: Dict[str, float] = {}
        self._order: List[str] = []
        self._current: Optional[Tuple[str, float]] = None

    def begin(self, phase: str) -> None:
        """Start attributing time to ``phase``, ending any open phase."""
        now = time.perf_counter()
        self._close(now)
        if phase not in self._phases:
            self._phases[phase] = 0.0
            self._order.append(phase)
        self._current = (phase, now)

    def end(self) -> None:
        """Stop attributing time to the open phase, if any.

        Safe to call with no open phase (e.g. a second ``end`` or an
        ``end`` before any ``begin``): it is a no-op.
        """
        self._close(time.perf_counter())

    @property
    def current(self) -> Optional[str]:
        """Name of the open phase, or None."""
        return self._current[0] if self._current is not None else None

    @contextlib.contextmanager
    def measure(self, phase: str) -> Iterator["PhaseTimer"]:
        """Attribute the block's wall time to ``phase``.

        Unlike raw ``begin``/``end`` pairs, ``measure`` restores any
        phase that was open when the block was entered, so nested and
        re-entrant instrumentation (runtime code timing a sub-phase
        inside a larger phase, including the *same* phase name) never
        silently truncates the outer attribution.
        """
        previous = self.current
        self.begin(phase)
        try:
            yield self
        finally:
            self.end()
            if previous is not None:
                self.begin(previous)

    def _close(self, now: float) -> None:
        if self._current is not None:
            phase, started = self._current
            self._phases[phase] += now - started
            self._current = None

    def add(self, phase: str, seconds: float) -> None:
        """Directly add ``seconds`` to ``phase`` (e.g. modeled time)."""
        if phase not in self._phases:
            self._phases[phase] = 0.0
            self._order.append(phase)
        self._phases[phase] += seconds

    def get(self, phase: str) -> float:
        return self._phases.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self._phases.values())

    def breakdown(self) -> List[Tuple[str, float]]:
        """Return (phase, seconds) pairs in first-seen order."""
        return [(p, self._phases[p]) for p in self._order]

    def __repr__(self) -> str:
        parts = ", ".join(f"{p}={s:.3f}s" for p, s in self.breakdown())
        return f"PhaseTimer({parts})"
