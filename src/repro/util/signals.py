"""Graceful SIGTERM/SIGINT handling for coordinator processes.

A master (or job server) interrupted mid-job should not leave orphaned
slaves, truncated ``--mrs-event-log`` files, or half-open pooled
transfer connections behind.  :func:`install_graceful_exit` converts
the *first* SIGTERM/SIGINT into a :class:`GracefulExit` raised in the
main thread, so the normal ``finally`` path runs — flush observability
outputs, quit slaves, close servers — and the process exits 0.  The
handler restores the previous disposition before raising, so a second
signal kills the process immediately (an operator's escape hatch from
a stuck drain).

Slaves use a different shape (an event flag, see
``Slave.install_signal_handlers``) because their main loop must finish
the in-flight task rather than unwind through it.
"""

from __future__ import annotations

import signal
import threading
from typing import Dict, Iterable, Optional


class GracefulExit(BaseException):
    """Raised in the main thread by the first SIGTERM/SIGINT.

    Derives from ``BaseException`` so a user program's blanket
    ``except Exception`` cannot swallow the shutdown request.
    """

    def __init__(self, signum: int):
        super().__init__(f"signal {signum}")
        self.signum = signum


def install_graceful_exit(
    signums: Iterable[int] = (signal.SIGTERM, signal.SIGINT),
) -> Optional[Dict[int, object]]:
    """Install first-signal-graceful handlers; returns the previous
    dispositions, or None when not on the main thread (signal handlers
    can only be installed there — callers on other threads simply keep
    the default behaviour)."""
    if threading.current_thread() is not threading.main_thread():
        return None
    previous: Dict[int, object] = {}

    def handler(signum, frame):
        for restored, disposition in previous.items():
            try:
                signal.signal(restored, disposition)
            except (ValueError, OSError):  # pragma: no cover
                pass
        raise GracefulExit(signum)

    for signum in signums:
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            return None
    return previous


def restore(previous: Optional[Dict[int, object]]) -> None:
    """Undo :func:`install_graceful_exit` (tests / nested runs)."""
    if not previous:
        return
    for signum, disposition in previous.items():
        try:
            signal.signal(signum, disposition)
        except (ValueError, OSError):  # pragma: no cover
            pass
