"""Shared low-level utilities for the Mrs reproduction.

Everything in this package is dependency-free (stdlib only) so that the
framework core can honour the paper's "depends only on the standard
library" constraint (section IV).
"""

from repro.util.hashing import stable_hash, stable_hash_bytes
from repro.util.timing import Stopwatch, PhaseTimer

__all__ = [
    "stable_hash",
    "stable_hash_bytes",
    "Stopwatch",
    "PhaseTimer",
]
