"""Native (C) kernels for the framework's own hot loops.

The paper's thesis is "Python for the framework, C for the inner loop"
(section V-B, Fig 3b).  The Pi application demonstrated the mechanism
for *application* inner loops (``repro.apps.pi.halton_ctypes``); this
package applies the same pattern — C source compiled on demand with the
system compiler into a per-user cache and loaded with :mod:`ctypes`,
with a graceful pure-Python fallback — to the framework's shuffle
plane:

* :mod:`repro.native.compile` — shared compiler discovery (honouring
  ``CC``), per-user build cache, and atomic compile-and-load helpers.
* :mod:`repro.native.kernels` — the shuffle kernels (keybytes sort,
  record framing, CRC partitioning, k-way merge) behind the
  ``--mrs-native auto|on|off`` knob / ``MRS_NATIVE`` variable.

Every native code path is an *internal* optimization: outputs are
byte-identical whether kernels are available or not.
"""

from repro.native.compile import CompilerUnavailable  # noqa: F401
