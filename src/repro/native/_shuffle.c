/* Native shuffle kernels: the framework's hot inner loops in C.
 *
 * "Python for the framework, C for the inner loop" — applied to the
 * framework itself.  Each kernel operates on the encode-once data
 * plane's raw representation: a batch of canonical key bytes packed
 * into one contiguous buffer addressed by an offsets array (offs[i] ..
 * offs[i+1] is record i's key), plus plain int64 index/position
 * arrays.  No CPython API is used anywhere, so the library compiles
 * with any C compiler and loads with ctypes.
 *
 * Correctness contracts (each mirrors a pure-Python loop and must stay
 * byte/percall identical to it — see tests/io/test_native_kernels.py):
 *
 *  - mrs_crc32 matches zlib.crc32 (IEEE, reflected, init/xorout -1).
 *  - mrs_hash64(key) == repro.util.hashing.stable_hash_bytes(key):
 *    crc32 * 0x9E3779B97F4A7C15 mod 2^64.
 *  - mrs_partition/mrs_partition_scatter place keys exactly like
 *    hash_partition_bytes, and the scatter is a stable counting sort
 *    (records keep their emit order within a split).
 *  - mrs_sort_index is a stable mergesort by key bytes — the same
 *    permutation as sorted(range(n), key=keys.__getitem__).
 *  - mrs_group_scatter groups equal keys (values keep encounter
 *    order), in first-encounter order or sorted by key bytes.
 *  - mrs_frame/mrs_scan write/parse the BinWriter record framing
 *    (big-endian u32 key/value length prefixes) byte-identically.
 *  - mrs_merge_pick replays heapq.merge(key=record_key) pick order,
 *    ties broken by lowest stream index.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* CRC-32 (IEEE 802.3, reflected) — must match zlib.crc32.            */
/* ------------------------------------------------------------------ */

static uint32_t crc_table[256];
static int crc_table_ready = 0;

static void crc_table_init(void) {
    for (uint32_t i = 0; i < 256; i++) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; bit++)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        crc_table[i] = c;
    }
    crc_table_ready = 1;
}

uint32_t mrs_crc32(const uint8_t *data, int64_t len) {
    if (!crc_table_ready)
        crc_table_init();
    uint32_t c = 0xFFFFFFFFu;
    for (int64_t i = 0; i < len; i++)
        c = crc_table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/* Fibonacci multiplier — keep in sync with repro.util.hashing._MIX. */
#define MRS_MIX 0x9E3779B97F4A7C15ULL

uint64_t mrs_hash64(const uint8_t *data, int64_t len) {
    /* 64-bit wraparound == "& 0xFFFFFFFFFFFFFFFF" in Python. */
    return (uint64_t)mrs_crc32(data, len) * MRS_MIX;
}

/* ------------------------------------------------------------------ */
/* Partitioning: split ids and a stable scatter by split.             */
/* ------------------------------------------------------------------ */

void mrs_partition(const uint8_t *keys, const int64_t *offs, int64_t n,
                   uint32_t n_splits, uint32_t *out) {
    if (!crc_table_ready)
        crc_table_init();
    for (int64_t i = 0; i < n; i++) {
        uint64_t h =
            (uint64_t)mrs_crc32(keys + offs[i], offs[i + 1] - offs[i]) * MRS_MIX;
        out[i] = (uint32_t)(h % n_splits);
    }
}

/* Stable counting sort of record indices by split id.  order[] gets
 * the record indices grouped by split (emit order preserved within a
 * split); bounds[] (length n_splits+1) gets each split's range in
 * order[].  Returns 0, or -1 on allocation failure. */
int mrs_partition_scatter(const uint8_t *keys, const int64_t *offs, int64_t n,
                          uint32_t n_splits, int64_t *order, int64_t *bounds) {
    uint32_t *splits = (uint32_t *)malloc((size_t)(n ? n : 1) * 4);
    if (splits == NULL)
        return -1;
    mrs_partition(keys, offs, n, n_splits, splits);
    int64_t *cursor = (int64_t *)calloc((size_t)n_splits + 1, 8);
    if (cursor == NULL) {
        free(splits);
        return -1;
    }
    for (int64_t i = 0; i < n; i++)
        cursor[splits[i]]++;
    bounds[0] = 0;
    for (uint32_t s = 0; s < n_splits; s++)
        bounds[s + 1] = bounds[s] + cursor[s];
    for (uint32_t s = 0; s < n_splits; s++)
        cursor[s] = bounds[s];
    for (int64_t i = 0; i < n; i++)
        order[cursor[splits[i]]++] = i;
    free(cursor);
    free(splits);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Key comparison and stable index sort.                              */
/* ------------------------------------------------------------------ */

static inline int key_cmp(const uint8_t *buf, const int64_t *starts,
                          const int64_t *ends, int64_t a, int64_t b) {
    int64_t alen = ends[a] - starts[a];
    int64_t blen = ends[b] - starts[b];
    int64_t min = alen < blen ? alen : blen;
    int c = memcmp(buf + starts[a], buf + starts[b], (size_t)min);
    if (c != 0)
        return c;
    return alen < blen ? -1 : (alen > blen ? 1 : 0);
}

/* Bottom-up stable mergesort of order[] (preloaded with element ids),
 * comparing element e's bytes buf[starts[e]..ends[e]).  For a packed
 * record batch pass starts=offs, ends=offs+1.  Returns 0 / -1 (OOM). */
static int sort_index_by_key(const uint8_t *buf, const int64_t *starts,
                             const int64_t *ends, int64_t n, int64_t *order) {
    if (n < 2)
        return 0;
    int64_t *scratch = (int64_t *)malloc((size_t)n * 8);
    if (scratch == NULL)
        return -1;
    int64_t *src = order, *dst = scratch;
    for (int64_t width = 1; width < n; width *= 2) {
        for (int64_t lo = 0; lo < n; lo += 2 * width) {
            int64_t mid = lo + width < n ? lo + width : n;
            int64_t hi = lo + 2 * width < n ? lo + 2 * width : n;
            int64_t i = lo, j = mid, k = lo;
            while (i < mid && j < hi) {
                /* <= keeps the left run's elements first: stability. */
                if (key_cmp(buf, starts, ends, src[i], src[j]) <= 0)
                    dst[k++] = src[i++];
                else
                    dst[k++] = src[j++];
            }
            while (i < mid)
                dst[k++] = src[i++];
            while (j < hi)
                dst[k++] = src[j++];
        }
        int64_t *tmp = src;
        src = dst;
        dst = tmp;
    }
    if (src != order)
        memcpy(order, src, (size_t)n * 8);
    free(scratch);
    return 0;
}

/* order[] need not be initialized; it receives the stable permutation
 * that sorts the batch by key bytes. */
int mrs_sort_index(const uint8_t *keys, const int64_t *offs, int64_t n,
                   int64_t *order) {
    for (int64_t i = 0; i < n; i++)
        order[i] = i;
    return sort_index_by_key(keys, offs, offs + 1, n, order);
}

/* 1 when the packed keys are already in non-descending order. */
int mrs_is_sorted(const uint8_t *keys, const int64_t *offs, int64_t n) {
    for (int64_t i = 1; i < n; i++)
        if (key_cmp(keys, offs, offs + 1, i - 1, i) > 0)
            return 0;
    return 1;
}

/* ------------------------------------------------------------------ */
/* Grouping: equal keys brought together, values in encounter order.  */
/* ------------------------------------------------------------------ */

/* Hash-group the batch.  order[] (length n) receives record indices
 * grouped by key; bounds[] (length n+1 worst case) receives group
 * ranges.  With sort_groups the groups are ordered by key bytes,
 * otherwise by first encounter.  Within a group records keep their
 * input order (the stable-sort guarantee the combiner relies on).
 * Returns the number of groups, or -1 on allocation failure. */
int64_t mrs_group_scatter(const uint8_t *keys, const int64_t *offs, int64_t n,
                          int sort_groups, int64_t *order, int64_t *bounds) {
    if (n == 0) {
        bounds[0] = 0;
        return 0;
    }
    if (!crc_table_ready)
        crc_table_init();
    uint64_t size = 1;
    while (size < (uint64_t)n * 2)
        size <<= 1;
    int64_t *slots = (int64_t *)malloc(size * 8); /* group id or -1 */
    int64_t *gid = (int64_t *)malloc((size_t)n * 8);
    int64_t *rep = (int64_t *)malloc((size_t)n * 8); /* first record of group */
    int64_t *gcount = (int64_t *)calloc((size_t)n, 8);
    if (!slots || !gid || !rep || !gcount) {
        free(slots);
        free(gid);
        free(rep);
        free(gcount);
        return -1;
    }
    memset(slots, 0xFF, size * 8);
    int64_t ngroups = 0;
    for (int64_t i = 0; i < n; i++) {
        const uint8_t *kptr = keys + offs[i];
        int64_t klen = offs[i + 1] - offs[i];
        uint64_t h = (uint64_t)mrs_crc32(kptr, klen) * MRS_MIX;
        uint64_t slot = h & (size - 1);
        for (;;) {
            int64_t g = slots[slot];
            if (g < 0) {
                slots[slot] = ngroups;
                rep[ngroups] = i;
                gid[i] = ngroups;
                gcount[ngroups] = 1;
                ngroups++;
                break;
            }
            int64_t r = rep[g];
            if (offs[r + 1] - offs[r] == klen &&
                memcmp(keys + offs[r], kptr, (size_t)klen) == 0) {
                gid[i] = g;
                gcount[g]++;
                break;
            }
            slot = (slot + 1) & (size - 1);
        }
    }
    free(slots);

    /* Output order of the groups: encounter order, or key order. */
    int64_t *gorder = (int64_t *)malloc((size_t)ngroups * 8);
    int64_t *grank = (int64_t *)malloc((size_t)ngroups * 8);
    int64_t *gstart = NULL, *gend = NULL;
    if (!gorder || !grank)
        goto oom;
    for (int64_t g = 0; g < ngroups; g++)
        gorder[g] = g;
    if (sort_groups) {
        gstart = (int64_t *)malloc((size_t)ngroups * 8);
        gend = (int64_t *)malloc((size_t)ngroups * 8);
        if (!gstart || !gend)
            goto oom;
        for (int64_t g = 0; g < ngroups; g++) {
            gstart[g] = offs[rep[g]];
            gend[g] = offs[rep[g] + 1];
        }
        if (sort_index_by_key(keys, gstart, gend, ngroups, gorder) != 0)
            goto oom;
        free(gstart);
        free(gend);
        gstart = gend = NULL;
    }
    for (int64_t r = 0; r < ngroups; r++)
        grank[gorder[r]] = r;
    bounds[0] = 0;
    for (int64_t r = 0; r < ngroups; r++)
        bounds[r + 1] = bounds[r] + gcount[gorder[r]];
    /* Stable scatter: records land in their group's range in input
     * order. */
    int64_t *cursor = gcount; /* reuse as per-rank cursors */
    for (int64_t r = 0; r < ngroups; r++)
        cursor[r] = bounds[r];
    for (int64_t i = 0; i < n; i++)
        order[cursor[grank[gid[i]]]++] = i;
    free(gorder);
    free(grank);
    free(gid);
    free(rep);
    free(gcount);
    return ngroups;

oom:
    free(gorder);
    free(grank);
    free(gstart);
    free(gend);
    free(gid);
    free(rep);
    free(gcount);
    return -1;
}

/* ------------------------------------------------------------------ */
/* Record framing: BinWriter/BinReader's "!II" length-prefix layout.  */
/* ------------------------------------------------------------------ */

static inline void put_be32(uint8_t *p, uint32_t v) {
    p[0] = (uint8_t)(v >> 24);
    p[1] = (uint8_t)(v >> 16);
    p[2] = (uint8_t)(v >> 8);
    p[3] = (uint8_t)v;
}

/* Frame n records from packed key and value buffers into out (sized by
 * the caller to 8*n + len(kbuf slice) + len(vbuf slice)).  Returns the
 * number of bytes written. */
int64_t mrs_frame(const uint8_t *kbuf, const int64_t *koffs,
                  const uint8_t *vbuf, const int64_t *voffs, int64_t n,
                  uint8_t *out) {
    uint8_t *p = out;
    for (int64_t i = 0; i < n; i++) {
        int64_t klen = koffs[i + 1] - koffs[i];
        int64_t vlen = voffs[i + 1] - voffs[i];
        put_be32(p, (uint32_t)klen);
        put_be32(p + 4, (uint32_t)vlen);
        p += 8;
        memcpy(p, kbuf + koffs[i], (size_t)klen);
        p += klen;
        memcpy(p, vbuf + voffs[i], (size_t)vlen);
        p += vlen;
    }
    return (int64_t)(p - out);
}

/* Parse framed records out of buf[start:len).  triples[] receives
 * (key_start, value_start, value_end) per record — key bytes are
 * buf[key_start:value_start-?]... precisely: key is
 * [key_start, key_start+klen) where klen = value_start - key_start.
 * Stops at max_records or at a partial trailing record.  Returns the
 * record count; the caller resumes at triples[3*count-1]. */
int64_t mrs_scan(const uint8_t *buf, int64_t len, int64_t start,
                 int64_t max_records, int64_t *triples) {
    int64_t pos = start, count = 0;
    while (count < max_records && pos + 8 <= len) {
        int64_t klen = ((int64_t)buf[pos] << 24) | ((int64_t)buf[pos + 1] << 16) |
                       ((int64_t)buf[pos + 2] << 8) | (int64_t)buf[pos + 3];
        int64_t vlen = ((int64_t)buf[pos + 4] << 24) |
                       ((int64_t)buf[pos + 5] << 16) |
                       ((int64_t)buf[pos + 6] << 8) | (int64_t)buf[pos + 7];
        int64_t kstart = pos + 8;
        int64_t vstart = kstart + klen;
        int64_t vend = vstart + vlen;
        if (vend > len)
            break;
        triples[3 * count] = kstart;
        triples[3 * count + 1] = vstart;
        triples[3 * count + 2] = vend;
        count++;
        pos = vend;
    }
    return count;
}

/* ------------------------------------------------------------------ */
/* K-way merge over framed windows.                                   */
/* ------------------------------------------------------------------ */

/* Compare the current (wire) keys of streams a and b; ties break on
 * the lower stream index, replaying heapq.merge's stability. */
static inline int stream_lt(const uint8_t *const *bufs,
                            const int64_t *const *triples,
                            const int64_t *positions, int32_t a, int32_t b) {
    const int64_t *ta = triples[a] + 3 * positions[a];
    const int64_t *tb = triples[b] + 3 * positions[b];
    int64_t alen = ta[1] - ta[0];
    int64_t blen = tb[1] - tb[0];
    int64_t min = alen < blen ? alen : blen;
    int c = memcmp(bufs[a] + ta[0], bufs[b] + tb[0], (size_t)min);
    if (c != 0)
        return c < 0;
    if (alen != blen)
        return alen < blen;
    return a < b;
}

static void sift_down(int32_t *heap, int64_t size, int64_t at,
                      const uint8_t *const *bufs, const int64_t *const *triples,
                      const int64_t *positions) {
    for (;;) {
        int64_t left = 2 * at + 1, right = left + 1, small = at;
        if (left < size && stream_lt(bufs, triples, positions, heap[left],
                                     heap[small]))
            small = left;
        if (right < size && stream_lt(bufs, triples, positions, heap[right],
                                      heap[small]))
            small = right;
        if (small == at)
            return;
        int32_t tmp = heap[at];
        heap[at] = heap[small];
        heap[small] = tmp;
        at = small;
    }
}

/* Emit merge picks until max_out picks are made, every stream is
 * finished, or a stream's window runs dry (positions[s] == counts[s]
 * with done[s] == 0: the caller refills that window and calls again).
 *
 * out_src[i] is the stream picked for output record i; out_newgrp[i]
 * is 1 when its key differs from the previous emitted key (the
 * previous call's final key arrives as prev_key/prev_len; prev_len < 0
 * means "no previous record").  positions[] is advanced in place.
 * Returns the number of picks. */
int64_t mrs_merge_pick(int32_t k, const uint8_t *const *bufs,
                       const int64_t *const *triples, const int64_t *counts,
                       int64_t *positions, const uint8_t *done,
                       const uint8_t *prev_key, int64_t prev_len,
                       int32_t *out_src, uint8_t *out_newgrp,
                       int64_t max_out) {
    int32_t heap[1024];
    int64_t size = 0;
    if (k > 1024)
        return -1;
    for (int32_t s = 0; s < k; s++) {
        if (positions[s] < counts[s])
            heap[size++] = s;
        else if (!done[s])
            return 0; /* caller must refill before merging */
    }
    for (int64_t at = size / 2 - 1; at >= 0; at--)
        sift_down(heap, size, at, bufs, triples, positions);

    const uint8_t *pk = prev_key;
    int64_t pl = prev_len;
    int64_t npicks = 0;
    while (size > 0 && npicks < max_out) {
        int32_t s = heap[0];
        const int64_t *t = triples[s] + 3 * positions[s];
        const uint8_t *kptr = bufs[s] + t[0];
        int64_t klen = t[1] - t[0];
        out_src[npicks] = s;
        out_newgrp[npicks] =
            (pl < 0 || klen != pl || memcmp(kptr, pk, (size_t)klen) != 0);
        pk = kptr;
        pl = klen;
        npicks++;
        positions[s]++;
        if (positions[s] >= counts[s]) {
            if (!done[s])
                break; /* window dry: refill needed */
            heap[0] = heap[--size];
            if (size > 0)
                sift_down(heap, size, 0, bufs, triples, positions);
        } else {
            sift_down(heap, size, 0, bufs, triples, positions);
        }
    }
    return npicks;
}
