"""ctypes loader and wrappers for the native shuffle kernels.

The mode knob (``--mrs-native`` / ``MRS_NATIVE``) selects the path:

* ``auto`` (default) — use the C kernels when a compiler is available,
  silently fall back to the pure-Python loops otherwise.
* ``on`` — require the kernels; :func:`get` raises
  :class:`~repro.native.compile.CompilerUnavailable` loudly.
* ``off`` — never load the kernels; :func:`get` returns ``None``.

Call sites ask :func:`get` once per batch (or once per task) and branch
on ``None``; the pure path must remain byte-identical, so the native
branch is an internal detail.  The mode is mirrored into the
``MRS_NATIVE`` environment variable so spawned worker processes
(multiprocess backend, slaves) inherit it.

Data marshalling convention: a batch of byte strings is packed with
:func:`pack` into one contiguous ``bytes`` buffer plus an ``array('q')``
of offsets (``offs[i]:offs[i+1]`` is element ``i``).  Index and bounds
arrays cross the boundary as raw addresses (``array.buffer_info()``),
so a batch costs one ``b"".join`` and a handful of ctypes calls no
matter how many records it holds.
"""

from __future__ import annotations

import ctypes
import os
import threading
from array import array
from itertools import accumulate, chain
from typing import List, Optional, Sequence, Tuple

from repro.native.compile import CompilerUnavailable, load_shared_library

#: Below this many records the ctypes call overhead can outweigh the C
#: speedup; call sites keep the pure loop for tiny batches.
MIN_BATCH = 32

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_shuffle.c")
_CACHE_PREFIX = "repro_native"
_CFLAGS = ["-O2", "-shared", "-fPIC"]

_VALID_MODES = ("auto", "on", "off")

_lock = threading.Lock()
_mode: Optional[str] = None  # resolved lazily from MRS_NATIVE
_UNSET = object()
_kernels = _UNSET  # cached ShuffleKernels, or None after a failed load
_load_error: Optional[CompilerUnavailable] = None


def _addr(arr: array) -> int:
    return arr.buffer_info()[0]


def _buf_addr(buf: bytearray) -> int:
    return ctypes.addressof((ctypes.c_char * len(buf)).from_buffer(buf))


def _bytes_addr(data: bytes) -> int:
    return ctypes.cast(ctypes.c_char_p(data), ctypes.c_void_p).value or 0


def pack(chunks: Sequence[bytes]) -> Tuple[bytes, array]:
    """Pack byte strings into ``(buffer, offsets)`` for the C side."""
    buf = b"".join(chunks)
    offs = array("q", chain((0,), accumulate(map(len, chunks))))
    return buf, offs


def mode() -> str:
    """The active native-kernel mode (``auto``/``on``/``off``)."""
    global _mode
    if _mode is None:
        value = os.environ.get("MRS_NATIVE", "auto").strip().lower()
        _mode = value if value in _VALID_MODES else "auto"
    return _mode


def set_mode(value: str) -> None:
    """Set the mode and reset the cached kernels.

    Also mirrors the mode into ``MRS_NATIVE`` so spawned worker
    processes resolve the same path.
    """
    global _mode, _kernels, _load_error
    if value not in _VALID_MODES:
        raise ValueError(f"invalid native mode {value!r} (auto/on/off)")
    with _lock:
        _mode = value
        os.environ["MRS_NATIVE"] = value
        _kernels = _UNSET
        _load_error = None


def configure_from_opts(opts) -> None:
    """Apply the ``--mrs-native`` option (no-op when absent)."""
    value = getattr(opts, "native", None)
    if value:
        set_mode(value)


def get() -> Optional["ShuffleKernels"]:
    """The shared :class:`ShuffleKernels`, or ``None``.

    ``off`` always returns ``None``; ``auto`` returns ``None`` when the
    kernels cannot be built (the failure is cached — one compile attempt
    per process); ``on`` raises :class:`CompilerUnavailable` instead of
    falling back.
    """
    global _kernels, _load_error
    active = mode()
    if active == "off":
        return None
    cached = _kernels
    if cached is not _UNSET and not (cached is None and active == "on"):
        return cached
    with _lock:
        if _kernels is _UNSET:
            try:
                _kernels = ShuffleKernels(
                    load_shared_library(_SOURCE, _CACHE_PREFIX, _CFLAGS)
                )
            except CompilerUnavailable as exc:
                _kernels = None
                _load_error = exc
            except OSError as exc:  # dlopen failure
                _kernels = None
                _load_error = CompilerUnavailable(f"cannot load kernels: {exc}")
        if _kernels is None and active == "on":
            raise CompilerUnavailable(
                f"--mrs-native on but kernels unavailable: {_load_error}"
            )
        return _kernels


def available() -> bool:
    """Whether the native kernels load under the current mode."""
    try:
        return get() is not None
    except CompilerUnavailable:
        return False


class ShuffleKernels:
    """Typed wrappers around the ``_shuffle.c`` entry points."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        void_p = ctypes.c_void_p
        i64 = ctypes.c_int64
        lib.mrs_crc32.restype = ctypes.c_uint32
        lib.mrs_crc32.argtypes = [void_p, i64]
        lib.mrs_hash64.restype = ctypes.c_uint64
        lib.mrs_hash64.argtypes = [void_p, i64]
        lib.mrs_partition.restype = None
        lib.mrs_partition.argtypes = [void_p, void_p, i64, ctypes.c_uint32, void_p]
        lib.mrs_partition_scatter.restype = ctypes.c_int
        lib.mrs_partition_scatter.argtypes = [
            void_p, void_p, i64, ctypes.c_uint32, void_p, void_p,
        ]
        lib.mrs_sort_index.restype = ctypes.c_int
        lib.mrs_sort_index.argtypes = [void_p, void_p, i64, void_p]
        lib.mrs_is_sorted.restype = ctypes.c_int
        lib.mrs_is_sorted.argtypes = [void_p, void_p, i64]
        lib.mrs_group_scatter.restype = i64
        lib.mrs_group_scatter.argtypes = [
            void_p, void_p, i64, ctypes.c_int, void_p, void_p,
        ]
        lib.mrs_frame.restype = i64
        lib.mrs_frame.argtypes = [void_p, void_p, void_p, void_p, i64, void_p]
        lib.mrs_scan.restype = i64
        lib.mrs_scan.argtypes = [void_p, i64, i64, i64, void_p]
        lib.mrs_merge_pick.restype = i64
        lib.mrs_merge_pick.argtypes = [
            ctypes.c_int32,
            ctypes.POINTER(void_p),  # bufs
            ctypes.POINTER(void_p),  # triples
            void_p,                  # counts
            void_p,                  # positions
            void_p,                  # done flags
            void_p,                  # prev key
            i64,                     # prev len
            void_p,                  # out_src
            void_p,                  # out_newgrp
            i64,                     # max_out
        ]

    # -- hashing / partitioning ------------------------------------

    def crc32(self, data: bytes) -> int:
        return self._lib.mrs_crc32(data, len(data))

    def hash64(self, data: bytes) -> int:
        return self._lib.mrs_hash64(data, len(data))

    def splits_for(self, keys: Sequence[bytes], n_splits: int) -> array:
        """Split ids for a key batch — one ``hash_partition_bytes`` each."""
        buf, offs = pack(keys)
        n = len(keys)
        out = array("I", bytes(4 * n))
        self._lib.mrs_partition(buf, _addr(offs), n, n_splits, _addr(out))
        return out

    def partition_scatter(
        self, keys: Sequence[bytes], n_splits: int
    ) -> Tuple[array, array]:
        """Stable scatter of a key batch by split id.

        Returns ``(order, bounds)``: record indices grouped by split
        (emit order preserved within each split), and per-split ranges
        into ``order`` (``bounds[s]:bounds[s+1]``).
        """
        buf, offs = pack(keys)
        n = len(keys)
        order = array("q", bytes(8 * n))
        bounds = array("q", bytes(8 * (n_splits + 1)))
        rc = self._lib.mrs_partition_scatter(
            buf, _addr(offs), n, n_splits, _addr(order), _addr(bounds)
        )
        if rc != 0:
            raise MemoryError("mrs_partition_scatter allocation failed")
        return order, bounds

    # -- sorting / grouping ----------------------------------------

    def sort_index(self, keys: Sequence[bytes]) -> array:
        """The stable permutation sorting ``keys`` bytewise."""
        buf, offs = pack(keys)
        n = len(keys)
        order = array("q", bytes(8 * n))
        rc = self._lib.mrs_sort_index(buf, _addr(offs), n, _addr(order))
        if rc != 0:
            raise MemoryError("mrs_sort_index allocation failed")
        return order

    def is_sorted(self, keys: Sequence[bytes]) -> bool:
        buf, offs = pack(keys)
        return bool(self._lib.mrs_is_sorted(buf, _addr(offs), len(keys)))

    def group_scatter(
        self, keys: Sequence[bytes], sort_groups: bool = False
    ) -> Tuple[int, array, array]:
        """Group equal keys; values keep encounter order.

        Returns ``(ngroups, order, bounds)`` where ``order`` holds
        record indices grouped by key and ``bounds[g]:bounds[g+1]`` is
        group ``g``'s range.  Groups appear in first-encounter order,
        or sorted by key bytes when ``sort_groups``.
        """
        buf, offs = pack(keys)
        n = len(keys)
        order = array("q", bytes(8 * n))
        bounds = array("q", bytes(8 * (n + 1)))
        ngroups = self._lib.mrs_group_scatter(
            buf, _addr(offs), n, 1 if sort_groups else 0, _addr(order), _addr(bounds)
        )
        if ngroups < 0:
            raise MemoryError("mrs_group_scatter allocation failed")
        return ngroups, order, bounds

    # -- record framing --------------------------------------------

    def frame(self, keys: Sequence[bytes], values: Sequence[bytes]) -> bytearray:
        """Frame a record batch exactly like ``BinWriter`` does."""
        n = len(keys)
        if n == 0:
            return bytearray()
        kbuf, koffs = pack(keys)
        vbuf, voffs = pack(values)
        out = bytearray(8 * n + len(kbuf) + len(vbuf))
        self._lib.mrs_frame(
            kbuf, _addr(koffs), vbuf, _addr(voffs), n, _buf_addr(out)
        )
        return out

    def scan(self, buf: bytes, start: int = 0) -> Tuple[int, array]:
        """Parse framed records from ``buf[start:]``.

        Returns ``(count, triples)`` where ``triples[3i:3i+3]`` is
        ``(key_start, value_start, value_end)`` for record ``i`` —
        absolute offsets into ``buf``.  Parsing stops at a partial
        trailing record; the caller carries the tail forward.
        """
        cap = (len(buf) - start) // 8
        if cap <= 0:
            return 0, array("q")
        triples = array("q", bytes(8 * 3 * cap))
        count = self._lib.mrs_scan(buf, len(buf), start, cap, _addr(triples))
        return count, triples


class MergePicker:
    """Stateful k-way merge over framed windows.

    The driver (``io.bucket._native_merged_groups``) feeds each stream
    a window — a buffer of framed bytes plus its :meth:`ShuffleKernels.
    scan` triples — and repeatedly calls :meth:`pick`, refilling any
    stream whose window runs dry.  Pick order replays
    ``heapq.merge(key=record_key)``: bytewise key order, ties broken by
    the lowest stream index.
    """

    #: picks returned per C call; bounds the out arrays.
    MAX_OUT = 8192

    def __init__(self, kernels: ShuffleKernels, k: int):
        if k > 1024:
            raise ValueError("MergePicker supports at most 1024 streams")
        self._lib = kernels._lib
        self.k = k
        self._bufs = (ctypes.c_void_p * k)()
        self._tris = (ctypes.c_void_p * k)()
        self._counts = array("q", bytes(8 * k))
        self._positions = array("q", bytes(8 * k))
        self._done = bytearray(k)
        self._out_src = array("i", bytes(4 * self.MAX_OUT))
        self._out_new = bytearray(self.MAX_OUT)
        # Keep the per-stream buffers and triple arrays alive while the
        # C side holds raw pointers into them.
        self._window_buf: List[Optional[bytes]] = [None] * k
        self._window_tri: List[Optional[array]] = [None] * k

    def set_window(self, s: int, buf: bytes, triples: array, count: int) -> None:
        self._window_buf[s] = buf
        self._window_tri[s] = triples
        self._bufs[s] = _bytes_addr(buf)
        self._tris[s] = _addr(triples) if count else None
        self._counts[s] = count
        self._positions[s] = 0

    def mark_done(self, s: int) -> None:
        self._done[s] = 1

    def position(self, s: int) -> int:
        return self._positions[s]

    def exhausted(self, s: int) -> bool:
        return self._positions[s] >= self._counts[s]

    def pick(self, prev_key: Optional[bytes]):
        """Run the merge until MAX_OUT picks or a window runs dry.

        Returns ``(npicks, out_src, out_newgrp)``; the out arrays are
        reused across calls, so consume them before the next call.
        ``prev_key`` is the key of the last record emitted by the
        previous call (``None`` before the first record) and anchors
        the new-group flags across call boundaries.
        """
        npicks = self._lib.mrs_merge_pick(
            self.k,
            self._bufs,
            self._tris,
            _addr(self._counts),
            _addr(self._positions),
            _buf_addr(self._done),
            prev_key if prev_key is not None else None,
            len(prev_key) if prev_key is not None else -1,
            _addr(self._out_src),
            _buf_addr(self._out_new),
            self.MAX_OUT,
        )
        if npicks < 0:
            raise RuntimeError("mrs_merge_pick failed")
        return npicks, self._out_src, self._out_new
