"""On-demand C compilation shared by every native kernel.

Generalizes the pattern introduced by ``repro.apps.pi.halton_ctypes``:
compile a single-file C source with the system compiler into a per-user
cache directory, atomically, and load it with :mod:`ctypes`.  The
pieces every kernel needs are factored here so they behave identically:

* :func:`find_compiler` — honours the ``CC`` environment variable
  before probing ``cc``/``gcc``/``clang`` on ``PATH``.
* :func:`user_cache_tag` — a per-user discriminator for the cache
  directory that does not require :func:`os.getuid` (unavailable on
  some platforms); falls back to :func:`getpass.getuser`.
* :func:`build_shared_library` — hash-addressed compile with an atomic
  rename, safe against concurrent builders in other processes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import re
import shlex
import subprocess
import tempfile
from typing import List, Optional


class CompilerUnavailable(RuntimeError):
    """No working C compiler (or compilation failed)."""


def find_compiler() -> Optional[List[str]]:
    """Locate a C compiler command, or ``None``.

    The ``CC`` environment variable wins when set: it is split like a
    shell word list (so ``CC="gcc -m64"`` works) and its executable is
    resolved against ``PATH`` when not an absolute path.  A ``CC`` that
    names a missing executable makes the compiler *unavailable* rather
    than silently probing fallbacks — an explicit ``CC`` expresses
    intent, and quietly substituting another compiler would hide
    misconfiguration.  Without ``CC``, the first of ``cc``, ``gcc``,
    ``clang`` found on ``PATH`` is used.
    """
    cc = os.environ.get("CC")
    if cc is not None and cc.strip():
        words = shlex.split(cc)
        resolved = _which(words[0])
        if resolved is None:
            return None
        return [resolved, *words[1:]]
    for name in ("cc", "gcc", "clang"):
        resolved = _which(name)
        if resolved is not None:
            return [resolved]
    return None


def _which(name: str) -> Optional[str]:
    if os.path.sep in name:
        return name if os.access(name, os.X_OK) else None
    for directory in os.environ.get("PATH", "").split(os.pathsep):
        candidate = os.path.join(directory, name)
        if os.access(candidate, os.X_OK):
            return candidate
    return None


def user_cache_tag() -> str:
    """A per-user tag for shared-tmpdir cache directories.

    ``os.getuid`` does not exist everywhere (e.g. native Windows), so
    fall back to :func:`getpass.getuser`, sanitized to filename-safe
    characters; a last-resort constant keeps the cache usable even when
    the environment has no notion of a user at all.
    """
    getuid = getattr(os, "getuid", None)
    if getuid is not None:
        return str(getuid())
    try:
        import getpass

        return re.sub(r"[^A-Za-z0-9_.-]", "_", getpass.getuser()) or "user"
    except Exception:
        return "user"


def cache_dir(prefix: str) -> str:
    """The per-user build cache directory for ``prefix`` (created)."""
    path = os.path.join(tempfile.gettempdir(), f"{prefix}_{user_cache_tag()}")
    os.makedirs(path, exist_ok=True)
    return path


def build_shared_library(
    source_path: str,
    cache_prefix: str,
    cflags: List[str],
    name: Optional[str] = None,
) -> str:
    """Compile ``source_path`` into the cache; return the ``.so`` path.

    The output name is addressed by a hash of the source, the flags,
    and the compiler command, so a source or toolchain change builds a
    fresh object while older processes keep their loaded copy.  The
    build lands under a process-unique temporary name and is renamed
    into place, which makes concurrent builds race-free.

    Raises :class:`CompilerUnavailable` when no compiler can be found
    or the compile fails.
    """
    compiler = find_compiler()
    if compiler is None:
        if os.environ.get("CC"):
            raise CompilerUnavailable(
                f"CC={os.environ['CC']!r} does not name an executable"
            )
        raise CompilerUnavailable("no C compiler on PATH (cc/gcc/clang)")
    with open(source_path, "rb") as f:
        source = f.read()
    fingerprint = source + " ".join([*compiler, *cflags]).encode()
    tag = hashlib.sha256(fingerprint).hexdigest()[:16]
    stem = name or os.path.splitext(os.path.basename(source_path))[0].lstrip("_")
    so_path = os.path.join(cache_dir(cache_prefix), f"{stem}_{tag}.so")
    if not os.path.exists(so_path):
        build_path = so_path + f".build{os.getpid()}"
        command = [*compiler, *cflags, "-o", build_path, source_path]
        try:
            result = subprocess.run(command, capture_output=True, text=True)
        except OSError as exc:
            raise CompilerUnavailable(f"cannot run {compiler[0]}: {exc}") from exc
        if result.returncode != 0:
            raise CompilerUnavailable(
                f"compilation failed: {result.stderr.strip()}"
            )
        os.replace(build_path, so_path)  # atomic against racers
    return so_path


def load_shared_library(
    source_path: str, cache_prefix: str, cflags: List[str]
) -> ctypes.CDLL:
    """Compile (if needed) and load ``source_path`` as a CDLL."""
    return ctypes.CDLL(build_shared_library(source_path, cache_prefix, cflags))
