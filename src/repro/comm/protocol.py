"""Wire schema for master/slave messages.

Everything that crosses XML-RPC is a dict of scalars, strings, and
lists — no pickles on the control plane.  (Data travels separately, as
files or HTTP bucket fetches; see section IV-B.)

The protocol is deliberately tiny:

========================  =======================================
master method             meaning
========================  =======================================
``signin``                slave announces itself, gets a slave id
``done``                  slave finished a task, reports bucket URLs
                          (plus piggybacked per-task metrics)
``failed``                slave reports a task error
``ping``                  liveness check (both directions)
========================  =======================================

A ``done`` message optionally carries a *task metrics* payload — the
slave's measured phase durations for the task and a snapshot of its
metrics registry — so the master can aggregate a whole-job view without
any extra round trips.  The field is optional and ignored by old
masters, so the protocol version is unchanged.

========================  =======================================
slave method              meaning
========================  =======================================
``start_task``            master assigns a task descriptor
``remove_data``           master frees a dataset's local files
``quit``                  master ends the job
``ping``                  liveness check
========================  =======================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Bump when the wire format changes; signin rejects mismatches
#: ("version skew between master and slaves is a configuration error
#: worth failing loudly on").
PROTOCOL_VERSION = 1


class ProtocolError(Exception):
    """Malformed or version-skewed message."""


def make_task_descriptor(
    dataset_id: str,
    task_index: int,
    op_dict: Dict[str, Any],
    input_urls: Sequence[str],
    outdir: Optional[str],
    format_ext: str,
    user_output: bool = False,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
    input_key_serializer: Optional[str] = None,
    input_value_serializer: Optional[str] = None,
    input_sorted: Optional[Sequence[bool]] = None,
    program_spec: Optional[str] = None,
    program_args: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    return {
        # Multi-program slave pools (service mode): the slave resolves
        # ``module:Class`` + args into a cached program instance for
        # this task instead of using its boot-time program.  Absent or
        # None keeps the classic one-program-per-slave behaviour.
        "program_spec": program_spec,
        "program_args": (
            None if program_args is None else [str(a) for a in program_args]
        ),
        "dataset_id": dataset_id,
        "task_index": int(task_index),
        "op": dict(op_dict),
        "input_urls": list(input_urls),
        "outdir": outdir,
        "format_ext": format_ext,
        "user_output": bool(user_output),
        # Registered serializer names for this task's output buckets
        # and for decoding its input buckets (None = pickle).
        "key_serializer": key_serializer,
        "value_serializer": value_serializer,
        "input_key_serializer": input_key_serializer,
        "input_value_serializer": input_value_serializer,
        # Parallel to input_urls: whether each persisted bucket is
        # known to be in canonical key order (lets a reduce task's
        # merge stream it with O(1) memory).  Optional: absent or
        # short lists degrade to "unknown", never to wrong answers.
        "input_sorted": (
            None if input_sorted is None else [bool(flag) for flag in input_sorted]
        ),
    }


def check_task_descriptor(descriptor: Dict[str, Any]) -> Dict[str, Any]:
    required = {"dataset_id", "task_index", "op", "input_urls", "format_ext"}
    missing = required - set(descriptor)
    if missing:
        raise ProtocolError(f"task descriptor missing fields: {sorted(missing)}")
    if not isinstance(descriptor["op"], dict) or "kind" not in descriptor["op"]:
        raise ProtocolError("task descriptor op must be an operation dict")
    return descriptor


def make_done_message(
    slave_id: int,
    dataset_id: str,
    task_index: int,
    bucket_urls: Sequence[Sequence[Any]],
    seconds: float = 0.0,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    return {
        "slave_id": int(slave_id),
        "dataset_id": dataset_id,
        "task_index": int(task_index),
        "bucket_urls": [
            [int(entry[0]), entry[1], bool(entry[2]) if len(entry) > 2 else False]
            for entry in bucket_urls
        ],
        "seconds": float(seconds),
        "metrics": metrics,
    }


def make_task_metrics(
    durations: Optional[Dict[str, float]] = None,
    registry: Optional[Dict[str, Any]] = None,
    events: Optional[Sequence[Dict[str, Any]]] = None,
    health: Optional[Dict[str, float]] = None,
    buckets: Optional[Sequence[Sequence[Any]]] = None,
) -> Dict[str, Any]:
    """The per-task metrics payload piggybacked on ``done``.

    ``durations`` maps span event names to seconds measured on the
    slave; ``registry`` is a
    :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`;
    ``events`` is the slave's per-task event batch — dicts of scalars
    with an ``offset`` (seconds from the slave's task start) instead of
    an absolute timestamp, so the coordinator can re-anchor them on its
    own clock.  ``health`` is an optional throttled
    :func:`~repro.observability.telemetry.sample_health` snapshot;
    ``buckets`` an optional list of ``[split, records, bytes]`` triples
    for shuffle-skew accounting.  Everything rides the existing
    completion message: no extra round trips, and old coordinators
    ignore unknown fields.
    """
    payload: Dict[str, Any] = {
        "durations": {
            str(name): float(value)
            for name, value in (durations or {}).items()
        },
        "registry": dict(registry or {}),
    }
    if events:
        payload["events"] = [dict(event) for event in events]
    if health:
        payload["health"] = {
            str(name): float(value) for name, value in health.items()
        }
    if buckets:
        payload["buckets"] = [
            [int(entry[0]), float(entry[1]), float(entry[2])]
            for entry in buckets
        ]
    return payload


def parse_task_metrics(raw: Any) -> Dict[str, Any]:
    """Validate a piggybacked metrics payload; tolerates None/garbage
    (metrics must never fail a task completion)."""
    if not isinstance(raw, dict):
        return {
            "durations": {},
            "registry": {},
            "events": [],
            "health": None,
            "buckets": [],
        }
    durations: Dict[str, float] = {}
    raw_durations = raw.get("durations")
    if isinstance(raw_durations, dict):
        for name, value in raw_durations.items():
            try:
                durations[str(name)] = float(value)
            except (TypeError, ValueError):
                continue
    registry = raw.get("registry")
    events: List[Dict[str, Any]] = []
    raw_events = raw.get("events")
    if isinstance(raw_events, (list, tuple)):
        for entry in raw_events:
            if not isinstance(entry, dict) or "name" not in entry:
                continue
            try:
                float(entry.get("offset", 0.0))
            except (TypeError, ValueError):
                continue
            events.append(entry)
    health: Optional[Dict[str, float]] = None
    raw_health = raw.get("health")
    if isinstance(raw_health, dict):
        health = {}
        for name, value in raw_health.items():
            try:
                health[str(name)] = float(value)
            except (TypeError, ValueError):
                continue
        if not health:
            health = None
    buckets: List[List[float]] = []
    raw_buckets = raw.get("buckets")
    if isinstance(raw_buckets, (list, tuple)):
        for entry in raw_buckets:
            try:
                buckets.append(
                    [int(entry[0]), float(entry[1]), float(entry[2])]
                )
            except (TypeError, ValueError, IndexError):
                continue
    return {
        "durations": durations,
        "registry": registry if isinstance(registry, dict) else {},
        "events": events,
        "health": health,
        "buckets": buckets,
    }


def parse_bucket_urls(raw: Any) -> List[Tuple[int, str, bool]]:
    """Normalize a reported bucket-url list to (split, url, sorted).

    Accepts both the current ``[split, url, sorted]`` triples and the
    historical ``[split, url]`` pairs (sortedness then defaults to
    False — a safe "unknown", the consumer just re-sorts).
    """
    try:
        return [
            (
                int(entry[0]),
                str(entry[1]),
                bool(entry[2]) if len(entry) > 2 else False,
            )
            for entry in raw
        ]
    except (TypeError, ValueError, IndexError) as exc:
        raise ProtocolError(f"malformed bucket url list: {raw!r}") from exc
