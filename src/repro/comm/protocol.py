"""Wire schema for master/slave messages.

Everything that crosses XML-RPC is a dict of scalars, strings, and
lists — no pickles on the control plane.  (Data travels separately, as
files or HTTP bucket fetches; see section IV-B.)

The protocol is deliberately tiny:

========================  =======================================
master method             meaning
========================  =======================================
``signin``                slave announces itself, gets a slave id
``done``                  slave finished a task, reports bucket URLs
``failed``                slave reports a task error
``ping``                  liveness check (both directions)
========================  =======================================

========================  =======================================
slave method              meaning
========================  =======================================
``start_task``            master assigns a task descriptor
``remove_data``           master frees a dataset's local files
``quit``                  master ends the job
``ping``                  liveness check
========================  =======================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Bump when the wire format changes; signin rejects mismatches
#: ("version skew between master and slaves is a configuration error
#: worth failing loudly on").
PROTOCOL_VERSION = 1


class ProtocolError(Exception):
    """Malformed or version-skewed message."""


def make_task_descriptor(
    dataset_id: str,
    task_index: int,
    op_dict: Dict[str, Any],
    input_urls: Sequence[str],
    outdir: Optional[str],
    format_ext: str,
    user_output: bool = False,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
    input_key_serializer: Optional[str] = None,
    input_value_serializer: Optional[str] = None,
) -> Dict[str, Any]:
    return {
        "dataset_id": dataset_id,
        "task_index": int(task_index),
        "op": dict(op_dict),
        "input_urls": list(input_urls),
        "outdir": outdir,
        "format_ext": format_ext,
        "user_output": bool(user_output),
        # Registered serializer names for this task's output buckets
        # and for decoding its input buckets (None = pickle).
        "key_serializer": key_serializer,
        "value_serializer": value_serializer,
        "input_key_serializer": input_key_serializer,
        "input_value_serializer": input_value_serializer,
    }


def check_task_descriptor(descriptor: Dict[str, Any]) -> Dict[str, Any]:
    required = {"dataset_id", "task_index", "op", "input_urls", "format_ext"}
    missing = required - set(descriptor)
    if missing:
        raise ProtocolError(f"task descriptor missing fields: {sorted(missing)}")
    if not isinstance(descriptor["op"], dict) or "kind" not in descriptor["op"]:
        raise ProtocolError("task descriptor op must be an operation dict")
    return descriptor


def make_done_message(
    slave_id: int,
    dataset_id: str,
    task_index: int,
    bucket_urls: Sequence[Tuple[int, str]],
    seconds: float = 0.0,
) -> Dict[str, Any]:
    return {
        "slave_id": int(slave_id),
        "dataset_id": dataset_id,
        "task_index": int(task_index),
        "bucket_urls": [[int(split), url] for split, url in bucket_urls],
        "seconds": float(seconds),
    }


def parse_bucket_urls(raw: Any) -> List[Tuple[int, str]]:
    try:
        return [(int(split), str(url)) for split, url in raw]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed bucket url list: {raw!r}") from exc
