"""Built-in HTTP servers: the bucket data plane and the status plane.

Section IV-B: "For data communicated directly, the writer opens and
writes a file on a local filesystem, and requests from readers are
served by a built-in HTTP server."  Small short-lived files typically
never leave the kernel's page cache.

A :class:`DataServer` serves one directory read-only.  Bucket URLs are
``http://host:port/<path relative to root>``.

:class:`StatusServer` reuses the same threading-server machinery to
expose a *read-only JSON view of a running job* (``--mrs-status-http
PORT``): ``GET /status`` returns ``Job.status()``, ``GET /metrics`` the
aggregate metrics report, and ``GET /events?since=N`` the event ring
tail — enough for ``curl``/dashboards to watch a long fan-out job in
flight without touching the XML-RPC control plane.
"""

from __future__ import annotations

import http.server
import json
import os
import threading
import time
import urllib.parse
import zlib
from typing import Any, Callable, Dict, Optional

#: Streaming read/compress granularity for bucket responses.
_STREAM_CHUNK = 256 * 1024


class RawResponse:
    """A status view's escape hatch from JSON: a pre-rendered body with
    its own content type (Prometheus text exposition, dashboard HTML)."""

    def __init__(self, body: str, content_type: str, code: int = 200):
        self.body = body
        self.content_type = content_type
        self.code = code

#: Responses below this size skip compression even when the client
#: negotiated gzip: header overhead would eat the saving.
GZIP_MIN_BYTES = 1024


class _BucketRequestHandler(http.server.BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "MrsData/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _resolve(self) -> Optional[str]:
        """Map the request path to a served file; sends the error
        response (403 escape / 404 missing) and returns None on
        failure.  Quoting is undone *before* the realpath containment
        check, so encoded traversals (``%2e%2e``) cannot escape."""
        root = self.server.root_dir  # type: ignore[attr-defined]
        path = urllib.parse.unquote(urllib.parse.urlparse(self.path).path)
        full = os.path.realpath(os.path.join(root, path.lstrip("/")))
        # Never serve anything outside the export root.
        if not (full == root or full.startswith(root + os.sep)):
            self.send_error(403, "path escapes export root")
            return None
        if not os.path.isfile(full):
            self.send_error(404, "no such bucket file")
            return None
        return full

    def _client_accepts_gzip(self) -> bool:
        accept = self.headers.get("Accept-Encoding", "")
        return any(
            token.split(";")[0].strip().lower() == "gzip"
            for token in accept.split(",")
        )

    def do_GET(self) -> None:
        full = self._resolve()
        if full is None:
            return
        latency = getattr(self.server, "latency_seconds", 0.0)
        if latency:
            time.sleep(latency)
        try:
            size = os.stat(full).st_size
            f = open(full, "rb")
        except OSError as exc:
            self.send_error(500, f"read failed: {exc}")
            return
        with f:
            compress = (
                getattr(self.server, "compression", True)
                and size >= GZIP_MIN_BYTES
                and self._client_accepts_gzip()
            )
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            if compress:
                # Compressed length is unknowable up front without
                # buffering the whole body, so stream chunked instead
                # (HTTP/1.1 keep-alive survives either framing).
                self.send_header("Content-Encoding", "gzip")
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()
                compressor = zlib.compressobj(wbits=16 + zlib.MAX_WBITS)
                while True:
                    chunk = f.read(_STREAM_CHUNK)
                    if not chunk:
                        break
                    data = compressor.compress(chunk)
                    if data:
                        self._write_chunk(data)
                tail = compressor.flush()
                if tail:
                    self._write_chunk(tail)
                self.wfile.write(b"0\r\n\r\n")
            else:
                # Identity: stream with the length from stat — the
                # file never lands in memory whole.  When the platform
                # and knob allow, the body goes kernel-to-kernel with
                # ``os.sendfile`` (no userspace copy at all); otherwise
                # fall back to bounded read/write chunks.
                self.send_header("Content-Length", str(size))
                self.end_headers()
                remaining = size
                if self._try_sendfile(f, size):
                    return
                while remaining > 0:
                    chunk = f.read(min(_STREAM_CHUNK, remaining))
                    if not chunk:
                        break
                    self.wfile.write(chunk)
                    remaining -= len(chunk)

    def _try_sendfile(self, f: Any, size: int) -> bool:
        """Send the whole identity body via ``os.sendfile``; returns
        False (having sent nothing) when the fast path is unavailable,
        so the caller's chunk loop can run instead."""
        from repro.io.serializers import zero_copy_enabled

        if not hasattr(os, "sendfile") or not zero_copy_enabled():
            return False
        try:
            self.wfile.flush()
            out_fd = self.connection.fileno()
            in_fd = f.fileno()
        except (OSError, ValueError, AttributeError):
            return False
        offset = 0
        try:
            while offset < size:
                sent = os.sendfile(out_fd, in_fd, offset, size - offset)
                if sent == 0:
                    break
                offset += sent
        except OSError:
            if offset == 0:
                # Nothing went out (e.g. filesystem without sendfile
                # support): the plain loop can still serve the request.
                return False
            raise  # mid-body failure: connection is unusable anyway
        return True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    def do_HEAD(self) -> None:
        # Reports real existence and identity length for the concrete
        # path, so readers can probe a bucket before fetching it.
        full = self._resolve()
        if full is None:
            return
        try:
            size = os.stat(full).st_size
        except OSError as exc:
            self.send_error(500, f"stat failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(size))
        self.end_headers()


class _ThreadingHTTPServer(http.server.ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True
    # The stdlib default backlog (5) drops connections under submitter
    # bursts — the control surface must absorb dozens of simultaneous
    # connects without resets.
    request_queue_size = 128


class DataServer:
    """Serve bucket files under ``root_dir`` over HTTP.

    Responses stream in bounded chunks (identity with ``Content-Length``
    from ``stat``, or chunked gzip when the client negotiates it via
    ``Accept-Encoding`` and ``compression`` is enabled).
    ``latency_seconds`` injects a per-request delay before the body —
    an emulation knob for benchmarks/tests exercising cross-node RTT
    on a loopback server; production servers leave it at 0.
    """

    def __init__(
        self,
        root_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        compression: bool = True,
        latency_seconds: float = 0.0,
    ):
        self.root_dir = os.path.realpath(root_dir)
        self._server = _ThreadingHTTPServer((host, port), _BucketRequestHandler)
        self._server.root_dir = self.root_dir  # type: ignore[attr-defined]
        self._server.compression = compression  # type: ignore[attr-defined]
        self._server.latency_seconds = latency_seconds  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"data-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def url_for(self, path: str) -> str:
        """Return the URL that serves ``path`` (absolute or root-relative)."""
        if os.path.isabs(path):
            rel = os.path.relpath(os.path.realpath(path), self.root_dir)
            if rel.startswith(".."):
                raise ValueError(f"{path} is outside export root {self.root_dir}")
        else:
            rel = path
        quoted = urllib.parse.quote(rel.replace(os.sep, "/"))
        return f"http://{self.host}:{self.port}/{quoted}"

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "DataServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class _StatusRequestHandler(http.server.BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "MrsStatus/1.0"

    #: Mutating control methods require the bearer token (when set).
    _MUTATING = frozenset({"POST", "DELETE", "PUT", "PATCH"})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _authorized(self) -> bool:
        token = getattr(self.server, "auth_token", None)
        if not token:
            return True
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer ") and header[7:].strip() == token:
            return True
        return self.headers.get("X-Mrs-Token", "") == token

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except (TypeError, ValueError):
            length = 0
        return self.rfile.read(length) if length > 0 else b""

    def _dispatch(self, method: str) -> None:
        parsed = urllib.parse.urlparse(self.path)
        route = parsed.path.rstrip("/") or "/status"
        query = urllib.parse.parse_qs(parsed.query)
        body = self._read_body()
        control = getattr(self.server, "control", None)
        if control is not None and (
            route == "/jobs" or route.startswith("/jobs/")
        ):
            if method in self._MUTATING and not self._authorized():
                self._send_json(401, {"error": "missing or bad auth token"})
                return
            try:
                code, payload = control.handle(method, route, body, query)
            except Exception as exc:
                self._send_json(500, {"error": repr(exc)})
                return
            self._send_json(code, payload)
            return
        if method != "GET":
            self._send_json(
                405, {"error": f"{method} not allowed on {route!r}"}
            )
            return
        views = self.server.views  # type: ignore[attr-defined]
        view = views.get(route)
        if view is None:
            self._send_json(
                404, {"error": f"no such view {route!r}",
                      "views": sorted(views)}
            )
            return
        try:
            payload = view(query)
        except Exception as exc:
            self._send_json(500, {"error": repr(exc)})
            return
        if isinstance(payload, RawResponse):
            self._send_raw(payload)
            return
        self._send_json(200, payload)

    def _send_raw(self, response: RawResponse) -> None:
        body = response.body.encode("utf-8")
        self.send_response(response.code)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _send_json(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class StatusServer:
    """JSON status endpoint over a running backend — and, with a
    ``control`` object attached, the job-server control surface.

    Read-only routes (always):

    * ``/status``    — the backend's live :meth:`status` snapshot
    * ``/metrics``   — Prometheus text exposition of the live job
      (``?format=json`` returns the aggregate ``Job.metrics()`` report)
    * ``/events``    — event ring tail; ``?since=N`` skips seq <= N
    * ``/dashboard`` — self-refreshing HTML overview (slaves, datasets,
      shuffle skew, stragglers; no external assets)

    Control routes (``control`` given — a
    :class:`repro.service.server.JobServer`):

    * ``POST /jobs``         — submit a registered program + args
    * ``GET /jobs``          — list jobs
    * ``GET /jobs/<id>``     — one job's state/progress/metrics
    * ``GET /jobs/<id>/events`` — the job's slice of the event ring
    * ``DELETE /jobs/<id>``  — cancel

    Mutating control requests require ``auth_token`` (when set) via
    ``Authorization: Bearer <token>`` or ``X-Mrs-Token``.
    """

    def __init__(
        self,
        backend: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        control: Any = None,
        auth_token: Optional[str] = None,
    ):
        self.backend = backend
        self.control = control
        views: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "/status": lambda query: backend.status(),
            "/metrics": self._metrics_view,
            "/events": self._events_view,
            "/dashboard": self._dashboard_view,
        }
        self._server = _ThreadingHTTPServer((host, port), _StatusRequestHandler)
        self._server.views = views  # type: ignore[attr-defined]
        self._server.control = control  # type: ignore[attr-defined]
        self._server.auth_token = auth_token  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"status-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def _metrics_view(self, query: Dict[str, Any]) -> Any:
        # Default is the Prometheus text exposition; ``?format=json``
        # keeps the original aggregate metrics report for existing
        # JSON consumers.
        fmt = (query.get("format") or ["prometheus"])[0].lower()
        if fmt == "json":
            return self.backend.metrics()
        from repro.observability import telemetry as telemetry_mod

        return RawResponse(
            telemetry_mod.render_prometheus(self.backend),
            telemetry_mod.PROMETHEUS_CONTENT_TYPE,
        )

    def _dashboard_view(self, query: Dict[str, Any]) -> RawResponse:
        from repro.observability import telemetry as telemetry_mod

        try:
            refresh = int((query.get("refresh") or ["2"])[0])
        except (TypeError, ValueError):
            refresh = 2
        return RawResponse(
            telemetry_mod.render_dashboard(
                self.backend, control=self.control,
                refresh_seconds=max(1, refresh),
            ),
            "text/html; charset=utf-8",
        )

    def _events_view(self, query: Dict[str, Any]) -> Dict[str, Any]:
        observability = getattr(self.backend, "observability", None)
        events = getattr(observability, "events", None)
        if events is None:
            return {"enabled": False, "events": []}
        try:
            since = int(query.get("since", ["0"])[0])
        except (TypeError, ValueError):
            since = 0
        return {
            "enabled": True,
            "last_seq": events.last_seq,
            "events": events.snapshot(since_seq=since),
        }

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "StatusServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
