"""Built-in HTTP servers: the bucket data plane and the status plane.

Section IV-B: "For data communicated directly, the writer opens and
writes a file on a local filesystem, and requests from readers are
served by a built-in HTTP server."  Small short-lived files typically
never leave the kernel's page cache.

A :class:`DataServer` serves one directory read-only.  Bucket URLs are
``http://host:port/<path relative to root>``.

:class:`StatusServer` reuses the same threading-server machinery to
expose a *read-only JSON view of a running job* (``--mrs-status-http
PORT``): ``GET /status`` returns ``Job.status()``, ``GET /metrics`` the
aggregate metrics report, and ``GET /events?since=N`` the event ring
tail — enough for ``curl``/dashboards to watch a long fan-out job in
flight without touching the XML-RPC control plane.
"""

from __future__ import annotations

import http.server
import json
import os
import threading
import urllib.parse
from typing import Any, Callable, Dict, Optional


class _BucketRequestHandler(http.server.BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "MrsData/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:
        root = self.server.root_dir  # type: ignore[attr-defined]
        path = urllib.parse.unquote(urllib.parse.urlparse(self.path).path)
        full = os.path.realpath(os.path.join(root, path.lstrip("/")))
        # Never serve anything outside the export root.
        if not (full == root or full.startswith(root + os.sep)):
            self.send_error(403, "path escapes export root")
            return
        if not os.path.isfile(full):
            self.send_error(404, "no such bucket file")
            return
        try:
            with open(full, "rb") as f:
                payload = f.read()
        except OSError as exc:
            self.send_error(500, f"read failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_HEAD(self) -> None:
        # Used by health checks.
        self.send_response(200)
        self.send_header("Content-Length", "0")
        self.end_headers()


class _ThreadingHTTPServer(http.server.ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True


class DataServer:
    """Serve bucket files under ``root_dir`` over HTTP."""

    def __init__(self, root_dir: str, host: str = "127.0.0.1", port: int = 0):
        self.root_dir = os.path.realpath(root_dir)
        self._server = _ThreadingHTTPServer((host, port), _BucketRequestHandler)
        self._server.root_dir = self.root_dir  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"data-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def url_for(self, path: str) -> str:
        """Return the URL that serves ``path`` (absolute or root-relative)."""
        if os.path.isabs(path):
            rel = os.path.relpath(os.path.realpath(path), self.root_dir)
            if rel.startswith(".."):
                raise ValueError(f"{path} is outside export root {self.root_dir}")
        else:
            rel = path
        quoted = urllib.parse.quote(rel.replace(os.sep, "/"))
        return f"http://{self.host}:{self.port}/{quoted}"

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "DataServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class _StatusRequestHandler(http.server.BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "MrsStatus/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:
        parsed = urllib.parse.urlparse(self.path)
        route = parsed.path.rstrip("/") or "/status"
        views = self.server.views  # type: ignore[attr-defined]
        view = views.get(route)
        if view is None:
            self._send_json(
                404, {"error": f"no such view {route!r}",
                      "views": sorted(views)}
            )
            return
        query = urllib.parse.parse_qs(parsed.query)
        try:
            payload = view(query)
        except Exception as exc:
            self._send_json(500, {"error": repr(exc)})
            return
        self._send_json(200, payload)

    def _send_json(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class StatusServer:
    """Read-only JSON status endpoint over a running backend.

    Routes:

    * ``/status``  — the backend's live :meth:`status` snapshot
    * ``/metrics`` — the aggregate metrics report (``Job.metrics()``)
    * ``/events``  — event ring tail; ``?since=N`` skips seq <= N
    """

    def __init__(self, backend: Any, host: str = "127.0.0.1", port: int = 0):
        self.backend = backend
        views: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "/status": lambda query: backend.status(),
            "/metrics": lambda query: backend.metrics(),
            "/events": self._events_view,
        }
        self._server = _ThreadingHTTPServer((host, port), _StatusRequestHandler)
        self._server.views = views  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"status-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def _events_view(self, query: Dict[str, Any]) -> Dict[str, Any]:
        observability = getattr(self.backend, "observability", None)
        events = getattr(observability, "events", None)
        if events is None:
            return {"enabled": False, "events": []}
        try:
            since = int(query.get("since", ["0"])[0])
        except (TypeError, ValueError):
            since = 0
        return {
            "enabled": True,
            "last_seq": events.last_seq,
            "events": events.snapshot(since_seq=since),
        }

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "StatusServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
