"""Pipe-based wakeup primitive.

Section IV-B: "Main threads do not wait on locks for extended periods
of time because wait is not generally interruptible by signals ...
Writing a single byte to a pipe wakes up poll in a remote process or
thread and causes it to continue through its event loop."

A :class:`Wakeup` wraps a pipe pair: any thread (or a signal handler)
calls :meth:`set`; a poll/select-based event loop includes
:attr:`fileno` in its read set and calls :meth:`clear` when it fires.
"""

from __future__ import annotations

import os
import select
from typing import Optional


class Wakeup:
    """A selectable event backed by a pipe."""

    def __init__(self) -> None:
        self._read_fd, self._write_fd = os.pipe()
        os.set_blocking(self._read_fd, False)
        os.set_blocking(self._write_fd, False)
        self._closed = False

    def fileno(self) -> int:
        """File descriptor to include in a poll/select read set."""
        return self._read_fd

    def set(self) -> None:
        """Wake any waiter.  Safe to call from any thread; idempotent
        enough in practice (the pipe buffer absorbs repeats)."""
        if self._closed:
            return
        try:
            os.write(self._write_fd, b"x")
        except BlockingIOError:
            # Pipe full: a wakeup is already pending, which is all we
            # need.
            pass
        except OSError:
            pass

    def clear(self) -> None:
        """Drain pending wakeup bytes."""
        if self._closed:
            return
        try:
            while os.read(self._read_fd, 4096):
                pass
        except BlockingIOError:
            pass
        except OSError:
            pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until woken or ``timeout`` elapses; returns True if woken."""
        if self._closed:
            return False
        ready, _, _ = select.select([self._read_fd], [], [], timeout)
        if ready:
            self.clear()
            return True
        return False

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for fd in (self._read_fd, self._write_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()
