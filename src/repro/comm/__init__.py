"""Communication substrate (section IV-B).

Control plane: XML-RPC over HTTP (:mod:`repro.comm.rpc`), chosen by the
paper "because it is included in the Python standard library even
though other protocols are more efficient".  Data plane: either a
shared filesystem (``file:`` URLs) or direct slave-to-slave transfer
served by a built-in HTTP server (:mod:`repro.comm.dataserver`).
Event wakeups use pipes (:mod:`repro.comm.wakeup`), mirroring the
paper's "writing a single byte to a pipe wakes up poll".

Bucket *fetches* ride the transfer plane (:mod:`repro.comm.transfer`):
pooled keep-alive connections, parallel prefetch, and streaming,
optionally compressed responses.
"""

from repro.comm.rpc import RpcServer, rpc_client, parse_address, format_address
from repro.comm.dataserver import DataServer
from repro.comm.transfer import (
    ConnectionPool,
    FetchError,
    FetchPolicy,
    Prefetcher,
    TransferConfig,
)
from repro.comm.wakeup import Wakeup

__all__ = [
    "RpcServer",
    "rpc_client",
    "parse_address",
    "format_address",
    "DataServer",
    "ConnectionPool",
    "FetchError",
    "FetchPolicy",
    "Prefetcher",
    "TransferConfig",
    "Wakeup",
]
