"""The shuffle transfer plane: pooled, pipelined, streaming bucket fetches.

Section IV-B's direct peer transfer — "requests from readers are served
by a built-in HTTP server" — is what makes iterative shuffles cheap, so
the cross-node fetch path deserves the same care the in-node data plane
got.  This module owns everything between a bucket URL and the decoded
record stream a reduce task merges:

* :class:`FetchPolicy` — one configurable timeout/retries/backoff
  policy shared by every HTTP fetch in the process (previously a
  hard-coded 30 s timeout and a duplicated retry loop).
* :class:`ConnectionPool` — persistent keep-alive
  :class:`http.client.HTTPConnection` objects keyed by ``host:port``
  with a per-host concurrency cap, so an R-bucket shuffle pays one TCP
  handshake per peer instead of one per bucket.
* streaming fetches — the response body feeds the format reader
  straight off the socket (``BinReader.iter_records`` slices canonical
  key bytes from the wire), with transparent gzip when negotiated and
  skip-ahead resume when a transfer dies mid-stream.
* :class:`Prefetcher` — a small thread pool that fetches a reduce
  task's remote input buckets in parallel, bounded by a byte budget,
  handing each bucket's key-sorted record stream to the merge as blocks
  land — network transfer overlaps sort/merge compute instead of
  serializing ahead of it.
* :class:`TransferStats` — bytes moved, connections created/reused,
  retries, and prefetch stall time, mirrored into the process's metrics
  registry and piggybacked per task to the coordinator.

The plane is configured once per process from the ``--mrs-fetch-*``
options (:func:`configure`); library callers get sane env-overridable
defaults without any setup.
"""

from __future__ import annotations

import http.client
import io
import os
import threading
import time
import urllib.parse
import zlib
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.io import formats

KeyValue = Tuple[Any, Any]
Record = Tuple[bytes, KeyValue]

__all__ = [
    "FetchError",
    "FetchPolicy",
    "TransferConfig",
    "ConnectionPool",
    "TransferStats",
    "STATS",
    "configure",
    "get_config",
    "get_pool",
    "install_registry",
    "fetch_record_stream",
    "fetch_pair_stream",
    "fetch_pairs_parallel",
    "Prefetcher",
    "bucket_record_streams",
]


class FetchError(Exception):
    """A bucket URL could not be fetched after retries."""


# ----------------------------------------------------------------------
# Policy and configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FetchPolicy:
    """Retry/timeout policy for one HTTP fetch.

    ``retry_delay`` grows linearly per attempt (0.2 s, 0.4 s, ...), the
    same transient-failure model the seed used: a slave may momentarily
    be unable to serve (restarting its data server, file still being
    renamed into place); total failure is escalated to the master,
    which reruns the producing task.
    """

    timeout: float = 30.0
    retries: int = 3
    retry_delay: float = 0.2

    @classmethod
    def from_env(cls) -> "FetchPolicy":
        return cls(
            timeout=float(os.environ.get("MRS_FETCH_TIMEOUT", 30.0)),
            retries=int(os.environ.get("MRS_FETCH_RETRIES", 3)),
            retry_delay=float(os.environ.get("MRS_FETCH_RETRY_DELAY", 0.2)),
        )

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        return self.retry_delay * (attempt + 1)


@dataclass
class TransferConfig:
    """Per-process transfer-plane configuration (``--mrs-fetch-*``)."""

    policy: FetchPolicy
    #: Parallel prefetch threads per reduce task (0 disables prefetch).
    fetch_threads: int = 4
    #: Byte budget for records buffered ahead of the merge.
    fetch_buffer_bytes: int = 32 * 1024 * 1024
    #: ``auto`` requests gzip from non-loopback peers only; ``gzip``
    #: always; ``off`` never.
    compression: str = "auto"

    @classmethod
    def from_env(cls) -> "TransferConfig":
        return cls(
            policy=FetchPolicy.from_env(),
            fetch_threads=int(os.environ.get("MRS_FETCH_THREADS", 4)),
            fetch_buffer_bytes=int(
                float(os.environ.get("MRS_FETCH_BUFFER_MB", 32)) * 1024 * 1024
            ),
            compression=os.environ.get("MRS_FETCH_COMPRESSION", "auto"),
        )


_config_lock = threading.Lock()
_config: Optional[TransferConfig] = None


def get_config() -> TransferConfig:
    global _config
    with _config_lock:
        if _config is None:
            _config = TransferConfig.from_env()
        return _config


def configure(opts: Any) -> TransferConfig:
    """Wire the ``--mrs-fetch-*`` options into the process-wide config.

    Called by backend constructors; missing attributes (programmatic
    opts, older namespaces) keep their env/default values.
    """
    global _config
    config = TransferConfig.from_env()
    if opts is not None:
        timeout = getattr(opts, "fetch_timeout", None)
        retries = getattr(opts, "fetch_retries", None)
        policy = config.policy
        if timeout is not None or retries is not None:
            policy = FetchPolicy(
                timeout=policy.timeout if timeout is None else float(timeout),
                retries=policy.retries if retries is None else int(retries),
                retry_delay=policy.retry_delay,
            )
        threads = getattr(opts, "fetch_threads", None)
        buffer_mb = getattr(opts, "fetch_buffer_mb", None)
        compression = getattr(opts, "fetch_compression", None)
        config = TransferConfig(
            policy=policy,
            fetch_threads=(
                config.fetch_threads if threads is None else int(threads)
            ),
            fetch_buffer_bytes=(
                config.fetch_buffer_bytes
                if buffer_mb is None
                else int(float(buffer_mb) * 1024 * 1024)
            ),
            compression=compression or config.compression,
        )
    with _config_lock:
        _config = config
    return config


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------


class TransferStats:
    """Process-wide fetch counters, mirrored into a metrics registry.

    Coordinators install their registry (:func:`install_registry`) so
    ``job.metrics()`` reports the plane's activity; slaves/workers
    snapshot :meth:`totals` around each task and piggyback the delta on
    the task-completion message.
    """

    _NAMES = (
        "fetch.requests",
        "fetch.bytes",
        "fetch.wire_bytes",
        "fetch.retries",
        "fetch.connections.created",
        "fetch.connections.reused",
        "fetch.stall.seconds",
        "fetch.seconds",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, float] = {name: 0.0 for name in self._NAMES}
        self._registry: Any = None

    def add(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0.0) + amount
            registry = self._registry
        if registry is not None:
            registry.counter(name).inc(amount)

    def totals(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._values)

    def delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """Non-zero counter movement since a :meth:`totals` snapshot."""
        now = self.totals()
        return {
            name: value - before.get(name, 0.0)
            for name, value in now.items()
            if value - before.get(name, 0.0) > 0.0
        }

    def set_registry(self, registry: Any) -> None:
        with self._lock:
            self._registry = registry


STATS = TransferStats()


def install_registry(registry: Any) -> None:
    """Mirror transfer counters into ``registry`` from now on."""
    STATS.set_registry(registry)


# ----------------------------------------------------------------------
# Connection pool
# ----------------------------------------------------------------------


class ConnectionPool:
    """Keep-alive HTTP connections keyed by ``(host, port)``.

    ``acquire`` hands out an idle pooled connection when one exists
    (counted as reused) or opens a fresh one, blocking while the host
    already has ``max_per_host`` connections checked out — the per-host
    concurrency cap that stops a wide shuffle from stampeding one peer.
    ``release`` returns a healthy connection to the idle stack (at most
    ``max_idle_per_host`` kept) or closes it.
    """

    def __init__(
        self,
        max_per_host: int = 8,
        max_idle_per_host: int = 4,
        stats: Optional[TransferStats] = None,
    ):
        self.max_per_host = max_per_host
        self.max_idle_per_host = max_idle_per_host
        self.stats = stats if stats is not None else STATS
        self._cond = threading.Condition()
        self._idle: Dict[Tuple[str, int], deque] = {}
        self._active: Dict[Tuple[str, int], int] = {}

    def acquire(
        self, host: str, port: int, timeout: float
    ) -> Tuple[http.client.HTTPConnection, bool]:
        """Return ``(connection, reused)`` for ``host:port``."""
        key = (host, port)
        with self._cond:
            while self._active.get(key, 0) >= self.max_per_host:
                self._cond.wait()
            self._active[key] = self._active.get(key, 0) + 1
            idle = self._idle.get(key)
            conn = idle.popleft() if idle else None
        if conn is not None:
            conn.timeout = timeout
            # HTTPConnection only applies .timeout when creating the
            # socket; a live pooled socket must be retimed directly.
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
            self.stats.add("fetch.connections.reused")
            return conn, True
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        self.stats.add("fetch.connections.created")
        return conn, False

    def release(
        self,
        host: str,
        port: int,
        conn: Optional[http.client.HTTPConnection],
        reusable: bool,
    ) -> None:
        key = (host, port)
        with self._cond:
            self._active[key] = max(0, self._active.get(key, 0) - 1)
            if reusable and conn is not None:
                idle = self._idle.setdefault(key, deque())
                if len(idle) < self.max_idle_per_host:
                    idle.append(conn)
                    conn = None
            self._cond.notify_all()
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass

    def idle_count(self, host: str, port: int) -> int:
        with self._cond:
            return len(self._idle.get((host, port), ()))

    def close(self) -> None:
        with self._cond:
            idles = list(self._idle.values())
            self._idle.clear()
        for idle in idles:
            for conn in idle:
                try:
                    conn.close()
                except Exception:
                    pass


_pool_lock = threading.Lock()
_pool: Optional[ConnectionPool] = None


def get_pool() -> ConnectionPool:
    """The per-process connection pool (created on first use)."""
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ConnectionPool()
        return _pool


# ----------------------------------------------------------------------
# Streaming fetch
# ----------------------------------------------------------------------

_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "localhost", "::1"})


def _want_gzip(host: str, compression: str) -> bool:
    if compression == "gzip":
        return True
    if compression == "off":
        return False
    # "auto": compression trades CPU for bandwidth, a clear win across
    # a real network and a clear loss over loopback.
    return host not in _LOOPBACK_HOSTS


class _CountingStream:
    """File-like over an HTTPResponse counting wire bytes into STATS."""

    def __init__(self, response: Any, stats: TransferStats):
        self._response = response
        self._stats = stats

    def read(self, n: int = -1) -> bytes:
        data = self._response.read(n)
        if data:
            self._stats.add("fetch.wire_bytes", len(data))
        return data


class _GunzipStream:
    """Streaming gzip decoder over a wire-byte stream."""

    _CHUNK = 1 << 16

    def __init__(self, raw: Any):
        self._raw = raw
        self._decoder = zlib.decompressobj(16 + zlib.MAX_WBITS)
        self._buffer = b""
        self._eof = False

    def read(self, n: int = -1) -> bytes:
        if n is None or n < 0:
            chunks = [self._buffer]
            self._buffer = b""
            while not self._eof:
                chunks.append(self._read_more())
            return b"".join(chunks)
        while len(self._buffer) < n and not self._eof:
            self._buffer += self._read_more()
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def _read_more(self) -> bytes:
        compressed = self._raw.read(self._CHUNK)
        if not compressed:
            self._eof = True
            return self._decoder.flush()
        return self._decoder.decompress(compressed)


class _ByteCounter:
    """Counts decoded payload bytes as the reader consumes them."""

    def __init__(self, raw: Any, stats: TransferStats):
        self._raw = raw
        self._stats = stats

    def read(self, n: int = -1) -> bytes:
        data = self._raw.read(n)
        if data:
            self._stats.add("fetch.bytes", len(data))
        return data


class _RawAdapter(io.RawIOBase):
    """Adapt a bare ``read(n)`` object into a real raw stream, so
    :class:`io.BufferedReader` can add readline/iteration on top (text
    readers iterate their file object line by line)."""

    def __init__(self, stream: Any):
        self._stream = stream

    def readable(self) -> bool:
        return True

    def readinto(self, buffer: Any) -> int:
        data = self._stream.read(len(buffer))
        buffer[: len(data)] = data
        return len(data)


def _open_response(
    url: str,
    parsed: urllib.parse.ParseResult,
    pool: ConnectionPool,
    policy: FetchPolicy,
    gzip_ok: bool,
) -> Tuple[http.client.HTTPConnection, bool, Any]:
    """One GET attempt on a pooled connection.

    Returns ``(conn, reused, response)``; raises on connect/HTTP
    failure after returning the connection to the pool.  A *reused*
    connection that fails before producing a status line gets one free
    replay on a fresh connection — the server legitimately closes idle
    keep-alive sockets, and that must not burn a retry.
    """
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    path = parsed.path or "/"
    if parsed.query:
        path += "?" + parsed.query
    headers = {"Accept-Encoding": "gzip" if gzip_ok else "identity"}
    for replay in (True, False):
        conn, reused = pool.acquire(host, port, policy.timeout)
        try:
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
        except Exception:
            pool.release(host, port, conn, reusable=False)
            if reused and replay:
                continue
            raise
        if response.status != 200:
            # Drain the error body so the connection stays reusable.
            try:
                response.read()
                pool.release(host, port, conn, reusable=True)
            except Exception:
                pool.release(host, port, conn, reusable=False)
            raise FetchError(f"HTTP {response.status} fetching {url}")
        return conn, reused, response
    raise FetchError(f"failed to fetch {url}")  # pragma: no cover


def _stream_items(
    url: str,
    make_iter: Callable[[Any], Iterator[Any]],
    policy: Optional[FetchPolicy] = None,
    pool: Optional[ConnectionPool] = None,
    compression: Optional[str] = None,
) -> Iterator[Any]:
    """Stream items decoded off the wire, with mid-transfer resume.

    ``make_iter`` turns a readable byte stream into an item iterator.
    On a mid-stream failure the whole fetch is retried against the
    (immutable) bucket file and the items already delivered are skipped
    on the fresh stream, so consumers see each item exactly once; a
    server that stays dead escalates to :exc:`FetchError` after the
    policy's retries.
    """
    config = get_config()
    if policy is None:
        policy = config.policy
    if pool is None:
        pool = get_pool()
    parsed = urllib.parse.urlparse(url)
    gzip_ok = _want_gzip(parsed.hostname or "127.0.0.1", compression or config.compression)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    delivered = 0
    last_error: Exception = FetchError(url)
    for attempt in range(policy.retries):
        if attempt:
            STATS.add("fetch.retries")
            time.sleep(policy.backoff(attempt - 1))
        started = time.perf_counter()
        try:
            conn, _, response = _open_response(url, parsed, pool, policy, gzip_ok)
        except Exception as exc:
            last_error = exc
            continue
        STATS.add("fetch.requests")
        reusable = False
        try:
            stream: Any = _CountingStream(response, STATS)
            if (response.getheader("Content-Encoding") or "").lower() == "gzip":
                stream = _GunzipStream(stream)
            stream = io.BufferedReader(
                _RawAdapter(_ByteCounter(stream, STATS)), 1 << 16
            )
            skip = delivered
            for item in make_iter(stream):
                if skip:
                    skip -= 1
                    continue
                delivered += 1
                yield item
            # The reader consumed the payload to EOF, so the socket has
            # no unread body and can go straight back into the pool.
            reusable = response.isclosed()
            STATS.add("fetch.seconds", time.perf_counter() - started)
            return
        except GeneratorExit:
            # Consumer abandoned the stream mid-body: the connection
            # has unread data and cannot be reused.
            raise
        except Exception as exc:
            last_error = exc
        finally:
            pool.release(host, port, conn, reusable=reusable)
    raise FetchError(f"failed to fetch {url}: {last_error}") from last_error


def _make_reader(reader_cls, fileobj, key_serializer, value_serializer):
    if issubclass(reader_cls, formats.BinReader) and (
        key_serializer or value_serializer
    ):
        from repro.io.serializers import get_serializer

        return reader_cls(
            fileobj,
            key_serializer=get_serializer(key_serializer),
            value_serializer=get_serializer(value_serializer),
        )
    return reader_cls(fileobj)


def fetch_record_stream(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
    policy: Optional[FetchPolicy] = None,
    pool: Optional[ConnectionPool] = None,
    compression: Optional[str] = None,
) -> Iterator[Record]:
    """Decorated ``(keybytes, pair)`` records streamed off the socket.

    Binary buckets ride the reader's ``iter_records`` fast path, so
    canonical key bytes are sliced from the wire encoding — remote and
    local buckets share the same encode-once pipeline.
    """
    reader_cls = formats.reader_for(urllib.parse.urlparse(url).path)

    def make_iter(stream: Any) -> Iterator[Record]:
        reader = _make_reader(reader_cls, stream, key_serializer, value_serializer)
        records = getattr(reader, "iter_records", None)
        if records is not None:
            return records()
        from repro.util.hashing import key_to_bytes

        return ((key_to_bytes(pair[0]), pair) for pair in reader)

    return _stream_items(url, make_iter, policy, pool, compression)


def fetch_pair_stream(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
    policy: Optional[FetchPolicy] = None,
    pool: Optional[ConnectionPool] = None,
    compression: Optional[str] = None,
) -> Iterator[KeyValue]:
    """Plain pairs streamed off the socket (no key-byte decoration)."""
    reader_cls = formats.reader_for(urllib.parse.urlparse(url).path)

    def make_iter(stream: Any) -> Iterator[KeyValue]:
        return iter(_make_reader(reader_cls, stream, key_serializer, value_serializer))

    return _stream_items(url, make_iter, policy, pool, compression)


def fetch_pairs_parallel(
    jobs: Sequence[Tuple[str, Optional[str], Optional[str]]],
    threads: Optional[int] = None,
) -> List[List[KeyValue]]:
    """Fetch several ``(url, key_serializer, value_serializer)`` jobs in
    parallel, returning pair lists in job order.

    The map-side analogue of the reduce prefetcher: a map task whose
    inputs are N remote buckets pays ~one round trip instead of N.
    """
    if threads is None:
        threads = get_config().fetch_threads
    if len(jobs) <= 1 or threads <= 1:
        return [
            list(fetch_pair_stream(url, ks, vs)) for url, ks, vs in jobs
        ]
    results: List[Any] = [None] * len(jobs)
    errors: List[Exception] = []
    index_lock = threading.Lock()
    next_index = [0]

    def worker() -> None:
        while True:
            with index_lock:
                i = next_index[0]
                if i >= len(jobs) or errors:
                    return
                next_index[0] = i + 1
            url, ks, vs = jobs[i]
            try:
                results[i] = list(fetch_pair_stream(url, ks, vs))
            except Exception as exc:
                errors.append(exc)
                return

    workers = [
        threading.Thread(target=worker, name=f"mrs-fetch-{i}", daemon=True)
        for i in range(min(threads, len(jobs)))
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    if errors:
        raise errors[0]
    return results


# ----------------------------------------------------------------------
# Prefetch pipeline
# ----------------------------------------------------------------------


class _ByteBudget:
    """Bounded byte accounting shared by a prefetcher's streams.

    A producer blocks while the budget is exhausted *and* something is
    in flight — a single block larger than the whole budget still
    proceeds when nothing else holds bytes, so no workload deadlocks.

    ``acquire`` additionally takes a ``bypass`` predicate re-checked on
    every wakeup: a producer whose target stream has nothing queued must
    always be admitted, because the merge may be blocked waiting on
    exactly that stream while the whole budget is held by blocks queued
    for streams the merge is *not* consuming (skewed key ranges).
    Bypassed admissions bound memory at the budget plus one in-flight
    block per stream instead of deadlocking.
    """

    def __init__(self, limit: int):
        self.limit = max(1, limit)
        self._cond = threading.Condition()
        self._used = 0
        self._cancelled = False

    def acquire(
        self, n: int, bypass: Optional[Callable[[], bool]] = None
    ) -> bool:
        with self._cond:
            while (
                not self._cancelled
                and self._used > 0
                and self._used + n > self.limit
                and not (bypass is not None and bypass())
            ):
                self._cond.wait(0.05)
            if self._cancelled:
                return False
            self._used += n
            return True

    def charge(self, n: int) -> None:
        """Account ``n`` bytes unconditionally (never blocks).

        Used for memory the plane holds regardless of the budget — a
        materialized unsorted bucket — so that budgeted producers back
        off while it is resident.
        """
        with self._cond:
            self._used += n

    @property
    def cancelled(self) -> bool:
        with self._cond:
            return self._cancelled

    def release(self, n: int) -> None:
        with self._cond:
            self._used = max(0, self._used - n)
            self._cond.notify_all()

    def cancel(self) -> None:
        with self._cond:
            self._cancelled = True
            self._cond.notify_all()


_END = object()


class _PrefetchStream:
    """One bucket's record stream, fed in blocks by a fetch thread."""

    def __init__(self, budget: _ByteBudget, stats: TransferStats):
        import queue

        self._queue: "Any" = queue.Queue()
        self._budget = budget
        self._stats = stats

    # -- producer side --------------------------------------------------

    def put_block(
        self, block: List[Record], nbytes: int, precharged: bool = False
    ) -> bool:
        # The empty-queue bypass guarantees per-stream progress: if the
        # merge is blocked on this stream, its queue is (or is about to
        # be) empty, so the producer is admitted even when blocks queued
        # for other streams hold the whole budget.
        if precharged:
            if self._budget.cancelled:
                return False
        elif not self._budget.acquire(nbytes, bypass=self._queue.empty):
            return False
        self._queue.put((block, nbytes))
        return True

    def finish(self, error: Optional[Exception] = None) -> None:
        self._queue.put((_END, error))

    # -- consumer side --------------------------------------------------

    def __iter__(self) -> Iterator[Record]:
        import queue as queue_mod

        while True:
            try:
                block, nbytes = self._queue.get_nowait()
            except queue_mod.Empty:
                # The merge outran the network: stall time is the
                # pipeline's headline health number.
                waited = time.perf_counter()
                block, nbytes = self._queue.get()
                self._stats.add(
                    "fetch.stall.seconds", time.perf_counter() - waited
                )
            if block is _END:
                if nbytes is not None:
                    raise nbytes  # the producer's exception
                return
            # Release at dequeue, not after consumption: the merge
            # holds one current block per stream while waiting on the
            # *other* streams' first blocks, so accounting consumed-but-
            # unfinished blocks against the budget would deadlock it.
            self._budget.release(nbytes)
            yield from block


#: Records per prefetch block; bounds latency between a block landing
#: and the merge seeing it.
_BLOCK_RECORDS = 2048
#: Per-record overhead estimate (tuple + pair + small value) for the
#: budget.  Values exposing their real size (bytes, numpy blocks) are
#: charged for it on top — a handful of multi-megabyte array blocks
#: must not be budgeted as if they were 64-byte counters.
_RECORD_OVERHEAD = 64


def _record_cost(record: "Record") -> int:
    value = record[1][1]
    size = getattr(value, "nbytes", None)  # numpy arrays, memoryviews
    if size is None and isinstance(value, (bytes, bytearray)):
        size = len(value)
    return len(record[0]) + _RECORD_OVERHEAD + (size or 0)


class Prefetcher:
    """Fetch remote buckets in parallel and stream them to a merge.

    ``add(bucket)`` registers a URL-only bucket and returns the record
    stream the merge should consume for it; :meth:`start` launches the
    fetch threads.  Buckets whose persisted copy is key-sorted stream
    block by block; unsorted buckets are materialized and sorted inside
    the fetch thread (still off the merge's critical path), one bucket
    at a time with the resident bytes charged to the budget.  Each
    bucket's fetch window is recorded on ``span`` (when given) so the
    timeline can draw fetch spans overlapping merge compute.
    """

    def __init__(
        self,
        threads: int,
        buffer_bytes: int,
        span: Any = None,
        stats: Optional[TransferStats] = None,
    ):
        self.threads = max(1, threads)
        self.span = span
        self.stats = stats if stats is not None else STATS
        self._budget = _ByteBudget(buffer_bytes)
        self._work: List[Tuple[Any, _PrefetchStream]] = []
        self._threads: List[threading.Thread] = []
        self._next = 0
        self._lock = threading.Lock()
        #: Serializes unsorted-bucket materialization: at most one full
        #: bucket is resident per prefetcher (matching the sequential
        #: path's peak), instead of one per fetch thread.
        self._sort_gate = threading.Lock()

    def add(self, bucket: Any) -> _PrefetchStream:
        stream = _PrefetchStream(self._budget, self.stats)
        self._work.append((bucket, stream))
        return stream

    def start(self) -> None:
        count = min(self.threads, len(self._work))
        for i in range(count):
            thread = threading.Thread(
                target=self._run, args=(i,), name=f"mrs-prefetch-{i}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def close(self) -> None:
        """Cancel outstanding work and unblock every producer."""
        with self._lock:
            self._next = len(self._work)
        self._budget.cancel()

    def _claim(self) -> Optional[Tuple[int, Any, _PrefetchStream]]:
        with self._lock:
            if self._next >= len(self._work):
                return None
            index = self._next
            self._next += 1
        bucket, stream = self._work[index]
        return index, bucket, stream

    def _run(self, thread_index: int) -> None:
        while True:
            claimed = self._claim()
            if claimed is None:
                return
            index, bucket, stream = claimed
            started = time.perf_counter()
            try:
                self._fetch_bucket(bucket, stream)
            except Exception as exc:
                stream.finish(exc)
            else:
                stream.finish()
            if self.span is not None:
                add_fetch = getattr(self.span, "add_fetch_span", None)
                if add_fetch is not None:
                    add_fetch(
                        started,
                        time.perf_counter(),
                        thread=thread_index,
                        source=getattr(bucket, "source", index),
                        url=getattr(bucket, "url", None),
                    )

    def _fetch_bucket(self, bucket: Any, stream: _PrefetchStream) -> None:
        # Known-sorted files stream block by block; unknown order
        # materializes and sorts in this thread, keeping the sort itself
        # off the merge's critical path.
        if not getattr(bucket, "url_sorted", False):
            # One materialized bucket at a time, its bytes charged to
            # the budget while resident — without the gate and charge,
            # ``fetch_threads`` full buckets could be in memory at once,
            # all invisible to the budget.
            with self._sort_gate:
                self._fetch_unsorted(bucket, stream)
            return
        from repro.io.bucket import sorted_records_from_url

        records = sorted_records_from_url(
            bucket.url,
            True,
            bucket.key_serializer,
            bucket.value_serializer,
        )
        block: List[Record] = []
        nbytes = 0
        for record in records:
            block.append(record)
            nbytes += _record_cost(record)
            if len(block) >= _BLOCK_RECORDS:
                if not stream.put_block(block, nbytes):
                    return
                block, nbytes = [], 0
        if block and not stream.put_block(block, nbytes):
            return

    def _fetch_unsorted(self, bucket: Any, stream: _PrefetchStream) -> None:
        """Materialize, sort, and hand over an unsorted remote bucket.

        Every materialized byte is charged to the budget as it arrives
        (non-blocking — blocking here could deadlock the merge against
        the sort gate), so budgeted producers pause while the bucket is
        resident.  The charge is transferred to the queued blocks, which
        release it as the merge consumes them.
        """
        from repro.io import urls as url_io
        from repro.io.bucket import record_key

        records: List[Record] = []
        charged = 0
        budget = self._budget
        try:
            for record in url_io.iter_records(
                bucket.url, bucket.key_serializer, bucket.value_serializer
            ):
                records.append(record)
                n = _record_cost(record)
                budget.charge(n)
                charged += n
            records.sort(key=record_key)
        except BaseException:
            budget.release(charged)
            raise
        for start in range(0, len(records), _BLOCK_RECORDS):
            block = records[start : start + _BLOCK_RECORDS]
            nbytes = sum(_record_cost(record) for record in block)
            if not stream.put_block(block, nbytes, precharged=True):
                return


def bucket_record_streams(
    input_buckets: Sequence[Any], span: Any = None
) -> Tuple[List[Iterator[Record]], Optional[Prefetcher]]:
    """Key-sorted record streams for a reduce merge, prefetching remote
    buckets in parallel.

    Buckets backed by HTTP URLs are routed through a
    :class:`Prefetcher` (when ``--mrs-fetch-threads`` > 0 and there is
    more than one of them); everything else streams through
    :func:`repro.io.bucket.bucket_sorted_records` unchanged.  Stream
    order matches bucket order, so the merge's output — and therefore
    the reduce output — is byte-identical to a sequential fetch.
    """
    from repro.io.bucket import bucket_sorted_records

    config = get_config()
    remote = [
        bucket
        for bucket in input_buckets
        if len(bucket) == 0
        and bucket.url
        and bucket.url.startswith(("http://", "https://"))
    ]
    if config.fetch_threads <= 0 or len(remote) <= 1:
        return [bucket_sorted_records(b) for b in input_buckets], None
    prefetcher = Prefetcher(
        threads=config.fetch_threads,
        buffer_bytes=config.fetch_buffer_bytes,
        span=span,
    )
    remote_ids = {id(bucket) for bucket in remote}
    streams: List[Iterator[Record]] = []
    for bucket in input_buckets:
        if id(bucket) in remote_ids:
            streams.append(iter(prefetcher.add(bucket)))
        else:
            streams.append(bucket_sorted_records(bucket))
    prefetcher.start()
    return streams, prefetcher
