"""XML-RPC control plane.

"Communication between the master and a slave occurs over a simple
HTTP-based remote procedure call API using XML-RPC" (section IV-B).
We use the standard library's :mod:`xmlrpc` exactly as the paper did,
wrapped with two conveniences: a threaded server that exposes an
object's ``rpc_``-prefixed methods, and address parsing/formatting for
the ``HOST:PORT`` strings that are the framework's entire configuration
surface.
"""

from __future__ import annotations

import functools
import socket
import threading
import time
from typing import Any, Optional, Tuple
from xmlrpc.client import ServerProxy
from xmlrpc.server import SimpleXMLRPCRequestHandler, SimpleXMLRPCServer

RPC_PREFIX = "rpc_"


class _QuietHandler(SimpleXMLRPCRequestHandler):
    """Request handler that suppresses per-request stderr logging."""

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass


class _ThreadedXMLRPCServer(SimpleXMLRPCServer):
    """Handle each RPC in its own thread and reuse the listen address."""

    allow_reuse_address = True
    daemon_threads = True

    def process_request(self, request, client_address):
        thread = threading.Thread(
            target=self._handle_in_thread, args=(request, client_address)
        )
        thread.daemon = True
        thread.start()

    def _handle_in_thread(self, request, client_address):
        try:
            self.finish_request(request, client_address)
        except Exception:
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    def handle_error(self, request, client_address):  # pragma: no cover
        # Connection resets from dying slaves are routine; stay quiet.
        pass


class RpcServer:
    """Serve an object's ``rpc_*`` methods over XML-RPC.

    The server thread is a daemon ("all child threads are configured as
    daemon threads ... a straggling thread does not prevent the program
    from terminating", section IV-B).
    """

    def __init__(
        self,
        handler: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Any = None,
    ):
        self.handler = handler
        self.registry = registry
        self._server = _ThreadedXMLRPCServer(
            (host, port),
            requestHandler=_QuietHandler,
            allow_none=True,
            logRequests=False,
        )
        self.host, self.port = self._server.server_address[:2]
        for name in dir(handler):
            if name.startswith(RPC_PREFIX):
                public = name[len(RPC_PREFIX):]
                method = getattr(handler, name)
                if registry is not None:
                    method = _metered_handler(method, public, registry)
                self._server.register_function(method, public)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"rpc-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> str:
        return format_address(self.host, self.port)

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "RpcServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def rpc_client(
    address: str,
    timeout: Optional[float] = None,
    registry: Any = None,
) -> Any:
    """Connect to an RPC server at ``HOST:PORT``.

    Each client proxy is cheap; callers create one per thread because
    :class:`ServerProxy` is not thread-safe.  With a ``registry``
    (a :class:`~repro.observability.metrics.MetricsRegistry`), every
    call is timed into ``rpc.client.<method>.seconds`` and failures
    counted in ``rpc.client.errors`` — the control-plane latency the
    paper's per-iteration overhead numbers are made of.
    """
    host, port = parse_address(address)
    uri = f"http://{host}:{port}/"
    if timeout is not None:
        proxy = ServerProxy(
            uri, allow_none=True, transport=_TimeoutTransport(timeout)
        )
    else:
        proxy = ServerProxy(uri, allow_none=True)
    if registry is not None:
        return MeteredProxy(proxy, registry)
    return proxy


class MeteredProxy:
    """Wrap a ServerProxy so each method call records latency metrics."""

    def __init__(self, proxy: Any, registry: Any, prefix: str = "rpc.client"):
        self._proxy = proxy
        self._registry = registry
        self._prefix = prefix

    def __getattr__(self, name: str) -> Any:
        method = getattr(self._proxy, name)
        registry = self._registry
        prefix = self._prefix

        def call(*args: Any) -> Any:
            started = time.perf_counter()
            try:
                result = method(*args)
            except Exception:
                registry.counter(f"{prefix}.errors").inc()
                raise
            registry.histogram(f"{prefix}.{name}.seconds").observe(
                time.perf_counter() - started
            )
            registry.counter(f"{prefix}.calls").inc()
            return result

        return call


def _metered_handler(method: Any, public: str, registry: Any) -> Any:
    """Wrap a server-side handler to time and count its invocations."""

    @functools.wraps(method)
    def handle(*args: Any, **kwargs: Any) -> Any:
        started = time.perf_counter()
        try:
            return method(*args, **kwargs)
        finally:
            registry.histogram(f"rpc.server.{public}.seconds").observe(
                time.perf_counter() - started
            )
            registry.counter("rpc.server.calls").inc()

    return handle


def parse_address(address: str) -> Tuple[str, int]:
    if ":" not in address:
        raise ValueError(f"address must be HOST:PORT, got {address!r}")
    host, port_text = address.rsplit(":", 1)
    return host or "127.0.0.1", int(port_text)


def format_address(host: str, port: int) -> str:
    return f"{host}:{port}"


def local_hostname() -> str:
    """Best-effort externally visible hostname (Program 3, step 1)."""
    try:
        return socket.gethostbyname(socket.gethostname())
    except OSError:
        return "127.0.0.1"


from xmlrpc.client import Transport


class _TimeoutTransport(Transport):
    """An xmlrpc transport with a per-connection socket timeout."""

    def __init__(self, timeout: float):
        super().__init__()
        self._timeout = timeout

    def make_connection(self, host):
        connection = super().make_connection(host)
        connection.timeout = self._timeout
        return connection
