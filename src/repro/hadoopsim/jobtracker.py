"""Discrete-event JobTracker: heartbeat-driven task assignment.

The JobTracker of Hadoop 0.20 assigns at most one task to a TaskTracker
per heartbeat (3 s apart).  For a job with M map tasks on T trackers
that alone costs about ``ceil(M/T) * 3`` seconds of assignment latency
before any work happens — the structural reason "Hadoop takes at least
30 seconds per MapReduce operation" even for empty jobs, which is the
number the paper's iterative-algorithm argument turns on.

The simulation models one job at a time (matching the paper's
dedicated-job benchmarks): a setup task, a map wave, a reduce wave
(shuffle folded into each reduce's duration), a cleanup task, and the
JobClient's completion poll.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hadoopsim.clock import VirtualClock
from repro.hadoopsim.costmodel import HadoopCostModel, PhaseBreakdown
from repro.hadoopsim.tasktracker import SimTaskTracker

#: Job phases in lifecycle order.
PHASES = ("setup", "maps", "reduces", "cleanup")


class JobTrackerSim:
    """Simulate one job's lifecycle on a virtual cluster."""

    def __init__(
        self,
        trackers: List[SimTaskTracker],
        model: HadoopCostModel,
        clock: Optional[VirtualClock] = None,
    ):
        if not trackers:
            raise ValueError("need at least one tasktracker")
        self.trackers = trackers
        self.model = model
        self.clock = clock or VirtualClock()
        self.breakdown = PhaseBreakdown()
        self._timeline: Dict[str, float] = {}
        # Per-run state, initialized in run_job.
        self._phase = "idle"
        self._pending: Dict[str, List[float]] = {}
        self._running: Dict[str, int] = {}
        self._job_arrival = 0.0

    # ------------------------------------------------------------------

    def run_job(
        self,
        map_durations: List[float],
        reduce_durations: List[float],
        submit_seconds: Optional[float] = None,
        enumeration_seconds: float = 0.0,
    ) -> PhaseBreakdown:
        """Simulate a full job; returns the phase breakdown.

        ``map_durations``/``reduce_durations`` are seconds of *work*
        per task (I/O + compute); JVM spawn, launch overhead, heartbeat
        waits, and client polling are added by the simulation.
        """
        model = self.model
        clock = self.clock
        start = clock.now

        submit = model.client_submit if submit_seconds is None else submit_seconds
        self.breakdown.add("submit", submit)
        self.breakdown.add("input_enumeration", enumeration_seconds)
        self._job_arrival = start + submit + enumeration_seconds

        self._pending = {
            "setup": [model.setup_task_work],
            "maps": list(map_durations),
            "reduces": list(reduce_durations),
            "cleanup": [model.cleanup_task_work],
        }
        self._running = {phase: 0 for phase in PHASES}
        self._phase = "setup"
        self._timeline = {"job_arrival": self._job_arrival}

        # Stagger heartbeats deterministically across trackers.
        for i, tracker in enumerate(self.trackers):
            offset = (i / len(self.trackers)) * model.heartbeat_interval
            clock.schedule_at(
                start + offset, lambda t=tracker: self._heartbeat(t)
            )

        clock.run_until_idle()

        job_done = self._timeline.get("cleanup_done", clock.now)
        # The JobClient polls for completion on a fixed period measured
        # from submission.
        polls = max(1, -int(-(job_done - start) // model.client_poll))
        client_notice = max(job_done, start + polls * model.client_poll)
        self.breakdown.add("completion_poll", client_notice - job_done)
        self._timeline["client_notice"] = client_notice

        # Wall-clock attribution per phase.
        arrival = self._job_arrival
        setup_done = self._timeline.get("setup_done", arrival)
        maps_done = self._timeline.get("maps_done", setup_done)
        reduces_done = self._timeline.get("reduces_done", maps_done)
        cleanup_done = self._timeline.get("cleanup_done", reduces_done)
        self.breakdown.add("setup_task", setup_done - arrival)
        self.breakdown.add("map_phase", maps_done - setup_done)
        self.breakdown.add("reduce_phase", reduces_done - maps_done)
        self.breakdown.add("cleanup_task", cleanup_done - reduces_done)
        return self.breakdown

    @property
    def total_seconds(self) -> float:
        return self.breakdown.total

    @property
    def timeline(self) -> Dict[str, float]:
        return dict(self._timeline)

    # ------------------------------------------------------------------

    def _heartbeat(self, tracker: SimTaskTracker) -> None:
        if self._phase == "done":
            return  # stop rescheduling; the event queue drains
        if self.clock.now >= self._job_arrival:
            self._skip_empty_phases()
            for _ in range(max(1, self.model.tasks_per_heartbeat)):
                before = len(self._pending.get(self._phase, ()))
                self._assign_one(tracker)
                after = len(self._pending.get(self._phase, ()))
                if after == before:
                    break  # no slot free or nothing pending
        self.clock.schedule(
            self.model.heartbeat_interval, lambda: self._heartbeat(tracker)
        )

    def _skip_empty_phases(self) -> None:
        """Advance past phases with no tasks at all (e.g. map-only jobs)."""
        while (
            self._phase != "done"
            and not self._pending[self._phase]
            and self._running[self._phase] == 0
        ):
            self._finish_phase(self._phase)

    def _assign_one(self, tracker: SimTaskTracker) -> None:
        """Assign at most one task of the current phase to ``tracker``."""
        phase = self._phase
        if phase == "done" or not self._pending[phase]:
            return
        # Setup/cleanup/map run in map slots; reduces in reduce slots.
        is_map_slot = phase != "reduces"
        if not tracker.acquire(is_map_slot):
            return
        work = self._pending[phase].pop(0)
        self._running[phase] += 1
        # A completed task is only *reported* at the tracker's next
        # heartbeat; until then the JobTracker neither frees the slot
        # nor advances the phase.  This reporting latency is a full
        # heartbeat in the worst case and is the second structural
        # source of Hadoop's fixed per-job cost (after assignment).
        duration = (
            self.model.jvm_startup
            + self.model.task_launch_overhead
            + work
            + self.model.heartbeat_interval
        )
        self.clock.schedule(
            duration, lambda: self._task_done(tracker, phase, is_map_slot)
        )

    def _task_done(
        self, tracker: SimTaskTracker, phase: str, is_map_slot: bool
    ) -> None:
        tracker.release(is_map_slot)
        self._running[phase] -= 1
        if not self._pending[phase] and self._running[phase] == 0:
            self._finish_phase(phase)

    def _finish_phase(self, phase: str) -> None:
        self._timeline[f"{phase}_done"] = self.clock.now
        index = PHASES.index(phase)
        if index + 1 < len(PHASES):
            self._phase = PHASES[index + 1]
        else:
            self._phase = "done"
