"""Public facade of the Hadoop simulator.

Two run modes:

* :meth:`HadoopJob.run_modeled` — pure cost-model run: the caller
  supplies per-task work seconds (e.g. pi samples / java rate) and the
  simulator returns modeled wall-clock with a phase breakdown.  Used
  for Fig 3 and the PSO-on-Hadoop estimate (E7).
* :meth:`HadoopJob.run_program` — *executes the user's real map and
  reduce functions* on local input files for output parity, measures
  Python compute seconds per task, converts them to modeled Java time
  via ``java_speedup_vs_python``, and runs the same cost model on top.
  Used for the WordCount comparison (E3) and parity tests.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.hadoopsim.costmodel import HadoopCostModel, PhaseBreakdown
from repro.hadoopsim.clock import VirtualClock
from repro.hadoopsim.hdfs import MiniHDFS
from repro.hadoopsim.jobtracker import JobTrackerSim
from repro.hadoopsim.shuffle import (
    estimate_record_bytes,
    map_side_sort_seconds,
    reduce_side_shuffle_seconds,
)
from repro.hadoopsim.tasktracker import (
    ParityResult,
    SimTaskTracker,
    execute_job_for_parity,
)

KeyValue = Tuple[Any, Any]


class HadoopCluster:
    """A virtual cluster: N nodes, each with map/reduce slots and HDFS.

    Defaults mirror the paper's private cluster: 21 machines with 6
    cores each (we give each node 4 map + 2 reduce slots).
    """

    def __init__(
        self,
        n_nodes: int = 21,
        map_slots_per_node: int = 4,
        reduce_slots_per_node: int = 2,
        model: Optional[HadoopCostModel] = None,
    ):
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.n_nodes = n_nodes
        self.map_slots_per_node = map_slots_per_node
        self.reduce_slots_per_node = reduce_slots_per_node
        self.model = model or HadoopCostModel()
        self.hdfs = MiniHDFS(n_datanodes=n_nodes, model=self.model)

    def make_trackers(self) -> List[SimTaskTracker]:
        return [
            SimTaskTracker(
                node_id=i,
                map_slots=self.map_slots_per_node,
                reduce_slots=self.reduce_slots_per_node,
            )
            for i in range(self.n_nodes)
        ]

    @property
    def total_map_slots(self) -> int:
        return self.n_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.n_nodes * self.reduce_slots_per_node


class HadoopJobResult:
    """Everything a benchmark needs from one simulated job."""

    def __init__(
        self,
        breakdown: PhaseBreakdown,
        timeline: Dict[str, float],
        n_map_tasks: int,
        n_reduce_tasks: int,
        pairs: Optional[List[KeyValue]] = None,
        parity: Optional[ParityResult] = None,
    ):
        self.breakdown = breakdown
        self.timeline = timeline
        self.n_map_tasks = n_map_tasks
        self.n_reduce_tasks = n_reduce_tasks
        #: Real output pairs (run_program mode only).
        self.pairs = pairs
        self.parity = parity

    @property
    def modeled_seconds(self) -> float:
        return self.breakdown.total

    @property
    def startup_seconds(self) -> float:
        """Time before the first map task can run (submit + enumeration
        + setup task) — the paper's 'start up time' for WordCount."""
        return (
            self.breakdown.get("submit")
            + self.breakdown.get("input_enumeration")
            + self.breakdown.get("setup_task")
        )

    def __repr__(self) -> str:
        return (
            f"HadoopJobResult(total={self.modeled_seconds:.1f}s, "
            f"maps={self.n_map_tasks}, reduces={self.n_reduce_tasks}, "
            f"{self.breakdown!r})"
        )


class HadoopJob:
    """One MapReduce job against a :class:`HadoopCluster`."""

    def __init__(self, cluster: Optional[HadoopCluster] = None):
        self.cluster = cluster or HadoopCluster()

    # -- pure cost-model mode -------------------------------------------

    def run_modeled(
        self,
        map_seconds: Union[float, Sequence[float]],
        n_map_tasks: Optional[int] = None,
        reduce_seconds: Union[float, Sequence[float]] = 0.0,
        n_reduce_tasks: int = 1,
        enumeration_seconds: float = 0.0,
    ) -> HadoopJobResult:
        """Simulate a job from per-task work durations."""
        if isinstance(map_seconds, (int, float)):
            if n_map_tasks is None:
                raise ValueError(
                    "n_map_tasks required when map_seconds is scalar"
                )
            map_durations = [float(map_seconds)] * n_map_tasks
        else:
            map_durations = [float(s) for s in map_seconds]
        if isinstance(reduce_seconds, (int, float)):
            reduce_durations = [float(reduce_seconds)] * n_reduce_tasks
        else:
            reduce_durations = [float(s) for s in reduce_seconds]

        sim = JobTrackerSim(
            self.cluster.make_trackers(), self.cluster.model, VirtualClock()
        )
        breakdown = sim.run_job(
            map_durations,
            reduce_durations,
            enumeration_seconds=enumeration_seconds,
        )
        return HadoopJobResult(
            breakdown,
            sim.timeline,
            n_map_tasks=len(map_durations),
            n_reduce_tasks=len(reduce_durations),
        )

    # -- real-execution mode --------------------------------------------------

    def run_program(
        self,
        program: Any,
        input_paths: Sequence[str],
        n_reduce_tasks: int = 1,
        combiner: Optional[Any] = None,
        hdfs_prefix: str = "/input",
        avg_intermediate_record_bytes: float = 20.0,
    ) -> HadoopJobResult:
        """Execute real user code; model Hadoop's wall-clock around it.

        Input files are staged into the mini-HDFS (mirroring their
        local sizes and directory structure) so the enumeration cost
        reflects the real tree shape — the effect that dominates the
        paper's full-Gutenberg result.
        """
        model = self.cluster.model
        hdfs = self.cluster.hdfs

        # Stage the corpus into HDFS, preserving directory structure.
        common = os.path.commonpath([os.path.abspath(p) for p in input_paths])
        if os.path.isfile(common):
            common = os.path.dirname(common)
        hdfs_paths = []
        for path in input_paths:
            rel = os.path.relpath(os.path.abspath(path), common)
            hdfs_path = os.path.join(hdfs_prefix, rel).replace(os.sep, "/")
            hdfs.put(hdfs_path, os.path.getsize(path))
            hdfs_paths.append(hdfs_path)
        _, enumeration_seconds = hdfs.enumerate_splits([hdfs_prefix])

        # Run the real computation with Hadoop's decomposition.
        parity = execute_job_for_parity(
            program, input_paths, n_reduce_tasks=n_reduce_tasks,
            combiner=combiner,
        )

        # Convert measured Python compute to modeled Java compute and
        # add per-task I/O terms.
        intermediate_bytes = estimate_record_bytes(
            parity.map_output_records, avg_intermediate_record_bytes
        )
        map_durations = []
        for task_index, py_seconds in enumerate(parity.map_seconds):
            java_compute = py_seconds / model.java_speedup_vs_python
            input_bytes = os.path.getsize(input_paths[task_index])
            io = model.hdfs_open + input_bytes / model.read_rate
            sort = map_side_sort_seconds(
                model, intermediate_bytes / max(1, len(parity.map_seconds))
            )
            map_durations.append(java_compute + io + sort)
        reduce_durations = []
        for py_seconds in parity.reduce_seconds:
            java_compute = py_seconds / model.java_speedup_vs_python
            shuffle = reduce_side_shuffle_seconds(
                model, intermediate_bytes, len(parity.reduce_seconds)
            )
            reduce_durations.append(java_compute + shuffle)

        sim = JobTrackerSim(
            self.cluster.make_trackers(), model, VirtualClock()
        )
        breakdown = sim.run_job(
            map_durations,
            reduce_durations,
            enumeration_seconds=enumeration_seconds,
        )
        return HadoopJobResult(
            breakdown,
            sim.timeline,
            n_map_tasks=len(map_durations),
            n_reduce_tasks=len(reduce_durations),
            pairs=parity.pairs,
            parity=parity,
        )

    def per_job_overhead(self) -> float:
        """Modeled cost of an *empty* job — the per-iteration price an
        iterative algorithm pays on Hadoop (E7)."""
        result = self.run_modeled(
            map_seconds=0.0, n_map_tasks=1, reduce_seconds=0.0, n_reduce_tasks=1
        )
        return result.modeled_seconds
