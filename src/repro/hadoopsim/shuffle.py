"""Sort/shuffle cost model.

Map output is sorted and spilled on the map side, then fetched and
merged by each reduce.  We model both as throughput terms so that the
data-heavy WordCount workload pays a realistic shuffle cost while the
tiny iterative workloads (PSO) are dominated by control-plane latency,
matching the paper's observation that overhead — not bandwidth — is
what kills Hadoop on iterative scientific programs.
"""

from __future__ import annotations

from typing import List

from repro.hadoopsim.costmodel import HadoopCostModel


def map_side_sort_seconds(model: HadoopCostModel, output_bytes: float) -> float:
    """Sort + spill time charged to one map task."""
    if output_bytes <= 0:
        return 0.0
    return output_bytes / model.sort_rate


def reduce_side_shuffle_seconds(
    model: HadoopCostModel,
    total_map_output_bytes: float,
    n_reduce_tasks: int,
) -> float:
    """Fetch + merge time charged to one reduce task.

    Each reduce pulls roughly ``total / n_reduce_tasks`` bytes from all
    the map hosts.
    """
    if total_map_output_bytes <= 0 or n_reduce_tasks <= 0:
        return 0.0
    share = total_map_output_bytes / n_reduce_tasks
    return share / model.shuffle_rate


def estimate_record_bytes(n_records: int, avg_record_bytes: float = 20.0) -> float:
    """Approximate serialized size of intermediate records.

    WordCount-style records (short word + int) are ~20 bytes each in
    Hadoop's intermediate format.
    """
    return n_records * avg_record_bytes


def spread_evenly(total_seconds: float, n_tasks: int) -> List[float]:
    """Split a phase cost evenly across tasks (model convenience)."""
    if n_tasks <= 0:
        return []
    return [total_seconds / n_tasks] * n_tasks
