"""CLI: explore the Hadoop cost model.

    python -m repro.hadoopsim overhead
    python -m repro.hadoopsim job --maps 126 --map-seconds 10 --reduces 21
    python -m repro.hadoopsim enumerate --files 31173
"""

from __future__ import annotations

import argparse
import sys

from repro.hadoopsim import HadoopCluster, HadoopJob
from repro.hadoopsim.costmodel import HadoopCostModel


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Query the calibrated Hadoop discrete-event cost model."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("overhead", help="modeled cost of an empty job")

    job = sub.add_parser("job", help="simulate one job")
    job.add_argument("--nodes", type=int, default=21)
    job.add_argument("--map-slots", type=int, default=4)
    job.add_argument("--reduce-slots", type=int, default=2)
    job.add_argument("--maps", type=int, default=1)
    job.add_argument("--map-seconds", type=float, default=0.0)
    job.add_argument("--reduces", type=int, default=1)
    job.add_argument("--reduce-seconds", type=float, default=0.0)
    job.add_argument("--enumeration-seconds", type=float, default=0.0)

    enum = sub.add_parser("enumerate", help="input enumeration cost")
    enum.add_argument("--files", type=int, required=True)
    enum.add_argument("--dirs", type=int, default=None,
                      help="directory count (defaults to one per file, "
                      "the Gutenberg layout)")

    args = parser.parse_args(argv)
    model = HadoopCostModel()

    if args.command == "overhead":
        seconds = HadoopJob(HadoopCluster(model=model)).per_job_overhead()
        print(f"empty-job overhead: {seconds:.1f} s "
              "(paper: 'at least 30 seconds per MapReduce operation')")
        return 0

    if args.command == "job":
        cluster = HadoopCluster(
            n_nodes=args.nodes,
            map_slots_per_node=args.map_slots,
            reduce_slots_per_node=args.reduce_slots,
            model=model,
        )
        result = HadoopJob(cluster).run_modeled(
            map_seconds=args.map_seconds,
            n_map_tasks=args.maps,
            reduce_seconds=args.reduce_seconds,
            n_reduce_tasks=args.reduces,
            enumeration_seconds=args.enumeration_seconds,
        )
        print(f"total: {result.modeled_seconds:.1f} s "
              f"(startup {result.startup_seconds:.1f} s)")
        for phase, seconds in sorted(result.breakdown.phases.items()):
            print(f"  {phase:<20s} {seconds:8.2f} s")
        return 0

    if args.command == "enumerate":
        dirs = args.files if args.dirs is None else args.dirs
        seconds = model.listing_seconds(args.files, dirs)
        print(f"enumerating {args.files} files in {dirs} directories: "
              f"{seconds:.1f} s ({seconds / 60:.1f} min)")
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
