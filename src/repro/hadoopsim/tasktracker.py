"""TaskTracker slots and real-execution helpers.

:class:`SimTaskTracker` is the slot-accounting half used by the
discrete-event simulation.  :func:`execute_job_for_parity` is the
correctness half: it runs the user's *actual* map/reduce functions
through the shared :mod:`~repro.runtime.taskrunner` with Hadoop's task
decomposition (one map task per input split, N reduce tasks), measuring
real Python compute seconds per task so the simulation can charge
modeled Java time (``python_seconds / java_speedup_vs_python``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import FileData, make_map_data, make_reduce_data
from repro.io.bucket import Bucket
from repro.runtime import taskrunner

KeyValue = Tuple[Any, Any]


class SimTaskTracker:
    """Slot bookkeeping for one simulated node."""

    def __init__(self, node_id: int, map_slots: int = 2, reduce_slots: int = 2):
        if map_slots < 1 or reduce_slots < 1:
            raise ValueError("trackers need at least one slot of each kind")
        self.node_id = node_id
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.free_map = map_slots
        self.free_reduce = reduce_slots

    def acquire(self, is_map_slot: bool) -> bool:
        if is_map_slot:
            if self.free_map > 0:
                self.free_map -= 1
                return True
            return False
        if self.free_reduce > 0:
            self.free_reduce -= 1
            return True
        return False

    def release(self, is_map_slot: bool) -> None:
        if is_map_slot:
            self.free_map += 1
            if self.free_map > self.map_slots:
                raise RuntimeError("map slot released twice")
        else:
            self.free_reduce += 1
            if self.free_reduce > self.reduce_slots:
                raise RuntimeError("reduce slot released twice")

    def __repr__(self) -> str:
        return (
            f"SimTaskTracker(node={self.node_id}, "
            f"map={self.free_map}/{self.map_slots}, "
            f"reduce={self.free_reduce}/{self.reduce_slots})"
        )


class ParityResult:
    """Output of a real in-process execution with per-task timings."""

    def __init__(
        self,
        pairs: List[KeyValue],
        map_seconds: List[float],
        reduce_seconds: List[float],
        map_output_records: int,
    ):
        self.pairs = pairs
        self.map_seconds = map_seconds
        self.reduce_seconds = reduce_seconds
        self.map_output_records = map_output_records


def execute_job_for_parity(
    program: Any,
    input_paths: Sequence[str],
    n_reduce_tasks: int = 1,
    combiner: Optional[Any] = None,
) -> ParityResult:
    """Run map+reduce for real, with Hadoop's task decomposition.

    One map task per input file (standing in for one per split — our
    benchmark corpora use files smaller than a block), then
    ``n_reduce_tasks`` reduce tasks over hash partitions.  Returns all
    output pairs and the measured per-task Python compute seconds.
    """
    input_data = FileData(list(input_paths))
    map_ds = make_map_data(
        input_data, program.map, splits=n_reduce_tasks, combiner=combiner
    )
    map_seconds: List[float] = []
    map_outputs: Dict[int, List[Bucket]] = {}
    total_map_records = 0
    for task_index in map_ds.task_indices():
        input_buckets = taskrunner.materialize_input_buckets(
            input_data, task_index
        )
        started = time.perf_counter()
        out = taskrunner.execute_task(
            program,
            map_ds,
            task_index,
            input_buckets,
            taskrunner.memory_bucket_factory(task_index),
        )
        map_seconds.append(time.perf_counter() - started)
        map_outputs[task_index] = out
        total_map_records += sum(len(b) for b in out)
        for bucket in out:
            map_ds.add_bucket(bucket)
    map_ds.complete = True

    reduce_ds = make_reduce_data(map_ds, program.reduce, splits=1)
    reduce_seconds: List[float] = []
    pairs: List[KeyValue] = []
    for task_index in reduce_ds.task_indices():
        input_buckets = taskrunner.materialize_input_buckets(map_ds, task_index)
        started = time.perf_counter()
        out = taskrunner.execute_task(
            program,
            reduce_ds,
            task_index,
            input_buckets,
            taskrunner.memory_bucket_factory(task_index),
        )
        reduce_seconds.append(time.perf_counter() - started)
        for bucket in out:
            pairs.extend(bucket)
    return ParityResult(pairs, map_seconds, reduce_seconds, total_map_records)
