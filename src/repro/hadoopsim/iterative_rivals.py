"""Cost models for the related-work iterative frameworks (section II).

The paper positions Mrs against two Hadoop-era responses to iterative
overhead:

* **HaLoop** [6] "improve[s] the performance of Hadoop for iterative
  programs": the job stays resident across iterations (no per-iteration
  submission, setup or cleanup task, no completion-poll), loop-invariant
  input is cached on the tasktrackers, and the scheduler is loop-aware.
  What remains per iteration is heartbeat-mediated task dispatch and
  completion reporting plus the task work itself.
* **Twister** [7] is "designed to improve performance of iterative
  programs with some sacrifice of fault tolerance": long-running worker
  daemons hold state in memory and communicate through a pub/sub
  broker, so a bare iteration costs only messaging latency — but a
  failed worker loses its in-memory state and restarts the whole loop
  from a (coarse) checkpoint.

These models quantify the *per-iteration overhead* each design pays so
the E7 bench can place Mrs on the same axis.  As with the Hadoop model,
the absolute constants are documented estimates; the reproduced claim
is the ordering and orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hadoopsim.clock import VirtualClock
from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.jobtracker import JobTrackerSim
from repro.hadoopsim.tasktracker import SimTaskTracker


@dataclass(frozen=True)
class HaLoopModel:
    """What HaLoop strips from a per-iteration cycle, and what it keeps."""

    base: HadoopCostModel = HadoopCostModel()
    #: Loop-aware scheduling still rides the tasktracker heartbeat.
    keep_heartbeat: bool = True
    #: Fixed per-iteration master bookkeeping (loop control, fixpoint
    #: evaluation) — small but not free.
    loop_control: float = 0.5

    def per_iteration_overhead(
        self, n_tasks: int = 1, n_trackers: int = 21, slots: int = 4
    ) -> float:
        """Modeled seconds of pure overhead for one (empty) iteration."""
        model = self.base
        # One dispatch wave + one completion report, heartbeat-paced;
        # task JVMs are reused (that is HaLoop's headline fix), so no
        # jvm_startup term.
        if self.keep_heartbeat:
            per_beat = max(1, model.tasks_per_heartbeat)
            waves = -(-n_tasks // (n_trackers * per_beat))
            dispatch = waves * model.heartbeat_interval
            report = model.heartbeat_interval
        else:  # pragma: no cover - configuration escape hatch
            dispatch = report = 0.0
        return self.loop_control + dispatch + report


@dataclass(frozen=True)
class TwisterModel:
    """Long-running daemons + pub/sub broker: messaging-only iterations."""

    #: Broker publish->deliver latency per barrier (two barriers per
    #: map/reduce cycle: task fan-out and result fan-in).
    broker_latency: float = 0.05
    #: Driver-side combine/fixpoint check.
    combine_cost: float = 0.05
    #: The fault-tolerance price: on worker failure the loop restarts
    #: from the last coarse checkpoint (the paper: "with some sacrifice
    #: of fault tolerance").
    checkpoint_interval_iterations: int = 50

    def per_iteration_overhead(self, n_tasks: int = 1) -> float:
        return 2 * self.broker_latency + self.combine_cost

    def expected_rework_on_failure(self, iteration: int) -> int:
        """Iterations lost if a worker dies at ``iteration``."""
        return iteration % self.checkpoint_interval_iterations


def hadoop_per_iteration_overhead(
    model: Optional[HadoopCostModel] = None,
    n_trackers: int = 21,
    slots: int = 4,
) -> float:
    """Full resubmission cost: what stock Hadoop pays per iteration."""
    model = model or HadoopCostModel()
    trackers = [
        SimTaskTracker(i, map_slots=slots, reduce_slots=slots)
        for i in range(n_trackers)
    ]
    sim = JobTrackerSim(trackers, model, VirtualClock())
    breakdown = sim.run_job([0.0], [0.0])
    return breakdown.total


def overhead_ladder() -> List[tuple]:
    """(system, modeled per-iteration overhead seconds) — the related-
    work ladder the E7 bench prints next to Mrs's measured number."""
    return [
        ("Hadoop (resubmit per iteration)", hadoop_per_iteration_overhead()),
        ("HaLoop (resident job)", HaLoopModel().per_iteration_overhead()),
        ("Twister (daemons + broker)", TwisterModel().per_iteration_overhead()),
    ]
