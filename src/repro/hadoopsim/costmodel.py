"""Calibrated cost constants for the Hadoop simulator.

Every number here is either a documented Hadoop 0.20/1.x default or a
constant calibrated against an observation in the paper.  Calibration
provenance:

* ``heartbeat_interval`` = 3 s — the classic TaskTracker heartbeat
  (``mapreduce.jobtracker.heartbeat.interval.min``); the JobTracker
  assigns at most one task per tracker per heartbeat, which is the
  dominant scheduling latency for short jobs.
* ``jvm_startup`` = 1.5 s per task attempt — Hadoop 0.20 spawned a fresh
  JVM per attempt unless JVM reuse was configured (the paper's runs
  predate common use of reuse).
* ``client_submit``/``client_poll`` — jar staging, split serialization
  and the JobClient's completion-poll period.
* ``per_file_base``/``per_file_quad`` — input enumeration cost per
  input file.  Calibrated to the paper's WordCount observations:
  31,173 files (one directory per ebook in the Gutenberg layout) take
  "nearly nine minutes" to enumerate; the 8,316-file subset takes
  about one minute.  With cost(n) = n*(base + quad*n):
  31,173*(0.005 + 4e-7*31,173) ≈ 545 s ≈ 9.1 min and
  8,316*(0.005 + 4e-7*8,316) ≈ 69 s ≈ 1.2 min.  The superlinear term
  models namenode pressure from listing many directories.
* ``java_pi_rate`` — Halton-sequence samples/second for the paper's
  optimized Java inner loop; an absolute fallback when no measured
  Python rate is available.  Benchmarks prefer the relative form:
  ``measured_python_rate * java_speedup_vs_python``.

The defaults sum to roughly 30 s of fixed overhead for a small job —
matching "Hadoop takes at least 30 seconds for each MapReduce
operation" — distributed over submission, the setup task, map and
reduce waves, the cleanup task, and completion polling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class HadoopCostModel:
    # --- control-plane latencies (seconds) ---
    heartbeat_interval: float = 3.0
    #: Tasks the JobTracker may hand one tracker per heartbeat.  Stock
    #: 0.20 assigned one map per heartbeat; clusters of the paper's era
    #: commonly carried multiple-assignment patches (MAPREDUCE-318),
    #: and the paper's observed ~30 s floor even for 126-map jobs
    #: implies more than one.  Set to 1 for strict classic behaviour
    #: (the heartbeat-scaling ablation does exactly that).
    tasks_per_heartbeat: int = 4
    jvm_startup: float = 1.5
    task_launch_overhead: float = 0.4  # localization, child setup
    setup_task_work: float = 1.0      # job setup task body
    cleanup_task_work: float = 1.0    # job cleanup task body
    client_submit: float = 4.0        # jar staging + job.xml + split file
    client_poll: float = 5.0          # JobClient completion poll period

    # --- HDFS / input enumeration ---
    per_file_base: float = 0.005      # seconds per input file (listing)
    per_file_quad: float = 4.0e-7     # superlinear namenode pressure
    per_dir_cost: float = 0.002       # seconds per directory listed
    hdfs_open: float = 0.02           # per-split open at task start
    read_rate: float = 80e6           # bytes/s per map task (local read)
    write_rate: float = 40e6          # bytes/s effective (3x replication)

    # --- shuffle / sort ---
    sort_rate: float = 25e6           # bytes/s map-side sort+spill
    shuffle_rate: float = 50e6        # bytes/s reduce-side fetch+merge

    # --- compute-speed modeling ---
    #: Java-over-CPython speed ratio for tight numeric loops.
    #: Calibrated so that (a) Java decisively beats pure CPython at
    #: large sample counts (Fig 3a, right side) and (b) the compiled
    #: inner-loop kernel (our NumPy stand-in for the paper's C module,
    #: measured ~6-8x CPython here) beats Java (Fig 3b) — both
    #: qualitative orderings the paper reports.
    java_speedup_vs_python: float = 5.0
    #: Samples/second/core of the optimized Java Halton pi loop.
    java_pi_rate: float = 10e6

    def listing_seconds(self, n_files: int, n_dirs: int = 0) -> float:
        """Modeled input-split enumeration time (the 9-minute startup)."""
        return n_files * (
            self.per_file_base + self.per_file_quad * n_files
        ) + n_dirs * self.per_dir_cost

    def with_overrides(self, **kw) -> "HadoopCostModel":
        return replace(self, **kw)


@dataclass
class PhaseBreakdown:
    """Accumulated modeled seconds per job phase."""

    phases: Dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.2f}s" for k, v in self.phases.items())
        return f"PhaseBreakdown({inner})"
