"""Mini-HDFS: a namenode namespace with block placement and RPC costs.

The paper's WordCount result hinges on HDFS/input-format behaviour:
"the input file loader for the Hadoop system expects all of the files
to be located in a single directory ... With the full dataset, Hadoop
struggles to load the data from so many locations, making the start up
time alone take nearly nine minutes."

This model keeps a real directory tree (so tests can exercise
namespace semantics: nested creation, listing, recursive walks) and
charges per-RPC costs from the :class:`HadoopCostModel` so a job's
input-enumeration time scales with files *and* directory count.
"""

from __future__ import annotations

import posixpath
from typing import Dict, Iterator, List, Optional, Tuple

from repro.hadoopsim.costmodel import HadoopCostModel

DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024  # the 0.20-era default


class HDFSError(Exception):
    pass


class FileNode:
    __slots__ = ("size", "blocks")

    def __init__(self, size: int, blocks: List[int]):
        self.size = size
        self.blocks = blocks


class MiniHDFS:
    """A namenode namespace tree with round-robin block placement."""

    def __init__(
        self,
        n_datanodes: int = 20,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
        model: Optional[HadoopCostModel] = None,
    ):
        if n_datanodes < 1:
            raise ValueError("need at least one datanode")
        self.n_datanodes = n_datanodes
        self.block_size = block_size
        self.replication = min(replication, n_datanodes)
        self.model = model or HadoopCostModel()
        #: directory path -> set of child names
        self._dirs: Dict[str, set] = {"/": set()}
        #: file path -> FileNode
        self._files: Dict[str, FileNode] = {}
        self._next_block = 0
        #: Accumulated modeled namenode time (callers may reset).
        self.modeled_seconds = 0.0

    # -- namespace -------------------------------------------------------

    @staticmethod
    def _norm(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        norm = posixpath.normpath(path)
        return norm

    def mkdirs(self, path: str) -> None:
        path = self._norm(path)
        parts = [p for p in path.split("/") if p]
        current = "/"
        for part in parts:
            child = posixpath.join(current, part)
            if child in self._files:
                raise HDFSError(f"{child} is a file, not a directory")
            if child not in self._dirs:
                self._dirs[child] = set()
                self._dirs[current].add(part)
            current = child

    def put(self, path: str, size: int) -> float:
        """Create a file of ``size`` bytes; returns modeled write seconds."""
        path = self._norm(path)
        if path in self._dirs:
            raise HDFSError(f"{path} is a directory")
        parent = posixpath.dirname(path)
        self.mkdirs(parent)
        n_blocks = max(1, -(-size // self.block_size))
        blocks = list(range(self._next_block, self._next_block + n_blocks))
        self._next_block += n_blocks
        self._files[path] = FileNode(size, blocks)
        self._dirs[parent].add(posixpath.basename(path))
        write_seconds = size / self.model.write_rate if size else 0.0
        self.modeled_seconds += write_seconds
        return write_seconds

    def exists(self, path: str) -> bool:
        path = self._norm(path)
        return path in self._files or path in self._dirs

    def is_dir(self, path: str) -> bool:
        return self._norm(path) in self._dirs

    def size_of(self, path: str) -> int:
        node = self._files.get(self._norm(path))
        if node is None:
            raise HDFSError(f"no such file {path}")
        return node.size

    def listdir(self, path: str) -> List[str]:
        path = self._norm(path)
        if path not in self._dirs:
            raise HDFSError(f"no such directory {path}")
        return sorted(self._dirs[path])

    def walk_files(self, path: str) -> Iterator[str]:
        """Yield every file under ``path`` (depth-first, sorted)."""
        path = self._norm(path)
        if path in self._files:
            yield path
            return
        if path not in self._dirs:
            raise HDFSError(f"no such path {path}")
        for name in self.listdir(path):
            yield from self.walk_files(posixpath.join(path, name))

    def block_locations(self, path: str) -> List[List[int]]:
        """Datanode ids per block (round-robin placement + replication)."""
        node = self._files.get(self._norm(path))
        if node is None:
            raise HDFSError(f"no such file {path}")
        out = []
        for block in node.blocks:
            start = block % self.n_datanodes
            out.append(
                [(start + r) % self.n_datanodes for r in range(self.replication)]
            )
        return out

    # -- input enumeration ---------------------------------------------------

    def count_tree(self, path: str) -> Tuple[int, int]:
        """(n_files, n_dirs) under ``path``."""
        path = self._norm(path)
        if path in self._files:
            return 1, 0
        n_files = 0
        n_dirs = 1
        for name in self.listdir(path):
            child = posixpath.join(path, name)
            f, d = self.count_tree(child)
            n_files += f
            n_dirs += d
        return n_files, n_dirs

    def enumerate_splits(
        self, input_paths: List[str]
    ) -> Tuple[List[Tuple[str, int]], float]:
        """Enumerate input splits for a job.

        Returns ``(splits, modeled_seconds)`` where each split is
        ``(file_path, length)`` — one split per block, so large files
        produce several map tasks, matching FileInputFormat.  The
        modeled time reproduces the paper's nine-minute startup on the
        full Gutenberg tree.
        """
        splits: List[Tuple[str, int]] = []
        total_files = 0
        total_dirs = 0
        for path in input_paths:
            if self.is_dir(path):
                files = list(self.walk_files(path))
                _, n_dirs = self.count_tree(path)
                total_dirs += n_dirs
            else:
                files = [self._norm(path)]
            total_files += len(files)
            for file_path in files:
                node = self._files.get(file_path)
                if node is None:
                    raise HDFSError(f"no such file {file_path}")
                remaining = node.size
                while remaining > self.block_size:
                    splits.append((file_path, self.block_size))
                    remaining -= self.block_size
                splits.append((file_path, max(0, remaining)))
        seconds = self.model.listing_seconds(total_files, total_dirs)
        self.modeled_seconds += seconds
        return splits, seconds
