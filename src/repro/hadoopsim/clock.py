"""Virtual clock and event queue for the discrete-event simulation."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Event = Callable[[], None]


class VirtualClock:
    """A deterministic event-driven clock.

    Events fire in (time, insertion order).  ``run_until_idle`` drives
    the simulation; event callbacks may schedule further events.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, event: Event) -> None:
        """Schedule ``event`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def schedule_at(self, when: float, event: Event) -> None:
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        heapq.heappush(self._heap, (when, next(self._seq), event))

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, event = heapq.heappop(self._heap)
        self.now = when
        event()
        return True

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Drain the event queue; returns the final virtual time."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a "
                    "recurring event was not cancelled"
                )
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)
