"""Hadoop baseline simulator.

The paper compares Mrs against Hadoop 0.20-era deployments on a 21-node
cluster.  Real Hadoop cannot run in this offline reproduction, so this
package models the parts of Hadoop that produce the paper's observed
behaviour — *framework overhead*, not Java micro-performance:

* :mod:`repro.hadoopsim.hdfs` — a mini namenode/datanode model whose
  input-split enumeration cost reproduces the "nearly nine minutes" of
  startup on the 31,173-file Gutenberg tree.
* :mod:`repro.hadoopsim.jobtracker` — a discrete-event simulation of
  heartbeat-driven task assignment (the dominant per-job latency:
  3-second tasktracker heartbeats, one task assigned per heartbeat).
* :mod:`repro.hadoopsim.tasktracker` — per-attempt JVM spawn and slot
  occupancy; *executes the user's real map/reduce functions* so output
  parity with Mrs is testable.
* :mod:`repro.hadoopsim.costmodel` — every calibrated constant, with
  provenance notes, in one place.

The simulator reports modeled wall-clock from a virtual clock; it never
claims to predict absolute Hadoop performance, only the overhead shape
the paper's evaluation turns on (>= ~30 s per MapReduce job).
"""

from repro.hadoopsim.api import HadoopCluster, HadoopJob, HadoopJobResult
from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.hdfs import MiniHDFS

__all__ = [
    "HadoopCluster",
    "HadoopJob",
    "HadoopJobResult",
    "HadoopCostModel",
    "MiniHDFS",
]
