"""JobClient: the client-side job submission lifecycle.

Program 4 of the paper shows what a Hadoop job costs *before* any task
runs on a shared cluster: format HDFS, start daemons, copy data in,
submit, poll, copy data out, stop daemons.  This module models those
steps so the startup-script comparison (experiment E2) and the
WordCount table (E3) can charge them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.hdfs import MiniHDFS


@dataclass
class StartupStep:
    name: str
    seconds: float


@dataclass
class StartupReport:
    steps: List[StartupStep] = field(default_factory=list)

    def add(self, name: str, seconds: float) -> None:
        self.steps.append(StartupStep(name, seconds))

    @property
    def total(self) -> float:
        return sum(step.seconds for step in self.steps)

    @property
    def step_count(self) -> int:
        return len(self.steps)


#: Fixed latencies for per-job infrastructure steps on a shared
#: cluster (Program 4).  Values are representative daemon start/stop
#: and format times for a ~20 node cluster; they matter for *step
#: count* and order-of-magnitude, not precision.
INFRA_STEP_SECONDS = {
    "find_network_address": 0.1,
    "write_configuration": 0.5,
    "format_namenode": 5.0,
    "start_namenode": 5.0,
    "start_jobtracker": 5.0,
    "start_datanodes_tasktrackers": 15.0,
    "stop_daemons": 10.0,
}

#: Mrs's equivalent steps (Program 3): find the address, start the
#: master, wait for the port file, start slaves.  The ~2 s figure is
#: the paper's reported Mrs startup time.
MRS_STEP_SECONDS = {
    "find_network_address": 0.1,
    "start_master": 0.5,
    "wait_for_port_file": 1.0,
    "start_slaves": 0.5,
}


def hadoop_shared_cluster_startup(
    hdfs: MiniHDFS,
    input_files: Sequence[Tuple[str, int]],
    model: Optional[HadoopCostModel] = None,
) -> StartupReport:
    """Model Program 4's steps, including copying the corpus into HDFS."""
    model = model or hdfs.model
    report = StartupReport()
    for name in (
        "find_network_address",
        "write_configuration",
        "format_namenode",
        "start_namenode",
        "start_jobtracker",
        "start_datanodes_tasktrackers",
    ):
        report.add(name, INFRA_STEP_SECONDS[name])
    copy_seconds = 0.0
    for path, size in input_files:
        copy_seconds += hdfs.put(path, size)
    report.add("copy_data_into_hdfs", copy_seconds)
    return report


def hadoop_shared_cluster_teardown(
    output_bytes: float, model: Optional[HadoopCostModel] = None
) -> StartupReport:
    """Copy results out of HDFS and stop the per-job daemons."""
    model = model or HadoopCostModel()
    report = StartupReport()
    report.add("copy_data_out_of_hdfs", output_bytes / model.read_rate)
    report.add("stop_daemons", INFRA_STEP_SECONDS["stop_daemons"])
    return report


def mrs_shared_cluster_startup() -> StartupReport:
    """Model Program 3's four steps."""
    report = StartupReport()
    for name, seconds in MRS_STEP_SECONDS.items():
        report.add(name, seconds)
    return report


def compare_startup_scripts(
    n_input_files: int = 0,
    avg_file_bytes: int = 50_000,
    model: Optional[HadoopCostModel] = None,
) -> Dict[str, StartupReport]:
    """Build both startup reports for experiment E2."""
    model = model or HadoopCostModel()
    hdfs = MiniHDFS(model=model)
    files = [
        (f"/corpus/doc{i:05d}/doc{i:05d}.txt", avg_file_bytes)
        for i in range(n_input_files)
    ]
    return {
        "mrs": mrs_shared_cluster_startup(),
        "hadoop": hadoop_shared_cluster_startup(hdfs, files, model),
    }
