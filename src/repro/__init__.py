"""repro — a reproduction of *Mrs: MapReduce for Scientific Computing
in Python* (McNabb, Lund, Seppi; SC 2012).

The public API mirrors the paper's: a program subclasses
:class:`MapReduce` (or :class:`IterativeMR`), implements ``map`` and
``reduce``, and hands itself to :func:`main`::

    import repro as mrs

    class WordCount(mrs.MapReduce):
        def map(self, key, value):
            for word in value.split():
                yield (word, 1)

        def reduce(self, key, values):
            yield sum(values)

    if __name__ == '__main__':
        mrs.main(WordCount)

Run with ``--mrs serial`` (default), ``--mrs mockparallel``,
``--mrs bypass``, or distributed with ``--mrs master`` /
``--mrs slave --mrs-master HOST:PORT``.
"""

from repro.core import (
    MapReduce,
    IterativeMR,
    Job,
    JobError,
    main,
    exit_main,
    run_program,
    random_stream,
    numpy_stream,
    stream_seed,
)

__version__ = "1.0.0"

__all__ = [
    "MapReduce",
    "IterativeMR",
    "Job",
    "JobError",
    "main",
    "exit_main",
    "run_program",
    "random_stream",
    "numpy_stream",
    "stream_seed",
    "__version__",
]
