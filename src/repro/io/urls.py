"""URL-addressed bucket data.

Persisted buckets are named by URL (section IV-B): ``file:`` URLs point
at any mounted filesystem (NFS, Lustre, local disk); ``http://`` URLs
point at a slave's built-in data server for direct peer transfer.  A
reduce task resolves each input URL with :func:`fetch_pairs` without
caring which transport backs it.
"""

from __future__ import annotations

import io
import time
import urllib.parse
import urllib.request
from typing import Any, Iterator, List, Optional, Tuple

from repro.io import formats

KeyValue = Tuple[Any, Any]

# Transient-fetch retry policy.  A slave may momentarily be unable to
# serve (restarting its data server, file still being renamed into
# place); total failure is escalated to the master, which reruns the
# producing task.
FETCH_RETRIES = 3
FETCH_RETRY_DELAY = 0.2


class FetchError(Exception):
    """A bucket URL could not be fetched after retries."""


def parse(url: str) -> urllib.parse.ParseResult:
    return urllib.parse.urlparse(url)


def path_of_file_url(url: str) -> str:
    parsed = parse(url)
    if parsed.scheme not in ("", "file"):
        raise ValueError(f"not a file url: {url}")
    # 'file:/abs/path' and 'file:///abs/path' both resolve to the path.
    return parsed.path or parsed.netloc


def _make_reader(reader_cls, fileobj, key_serializer, value_serializer):
    """Instantiate a reader, passing serializers where supported.

    Only the binary format has pluggable serializers; text and hex
    readers have fixed encodings.
    """
    if issubclass(reader_cls, formats.BinReader) and (
        key_serializer or value_serializer
    ):
        from repro.io.serializers import get_serializer

        return reader_cls(
            fileobj,
            key_serializer=get_serializer(key_serializer),
            value_serializer=get_serializer(value_serializer),
        )
    return reader_cls(fileobj)


def fetch_pairs(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> List[KeyValue]:
    """Fetch and decode all key-value pairs behind ``url``.

    ``key_serializer``/``value_serializer`` name registered serializers
    for binary-format data written with non-default codecs.
    """
    parsed = parse(url)
    if parsed.scheme in ("", "file"):
        path = path_of_file_url(url)
        reader_cls = formats.reader_for(path)
        with open(path, "rb") as f:
            return list(_make_reader(reader_cls, f, key_serializer, value_serializer))
    if parsed.scheme in ("http", "https"):
        return _fetch_http(url, key_serializer, value_serializer)
    raise ValueError(f"unsupported url scheme {parsed.scheme!r} in {url}")


def iter_pairs(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[KeyValue]:
    """Iterate the pairs behind ``url`` without materializing a list.

    ``file:`` URLs stream record by record straight off the reader, so
    a consumer that merges or filters never holds the whole bucket in
    memory.  HTTP fetches are materialized first (the retry policy
    needs the whole payload before any record is surfaced).
    """
    parsed = parse(url)
    if parsed.scheme in ("", "file"):
        path = path_of_file_url(url)
        reader_cls = formats.reader_for(path)
        with open(path, "rb") as f:
            yield from _make_reader(reader_cls, f, key_serializer, value_serializer)
        return
    if parsed.scheme in ("http", "https"):
        yield from _fetch_http(url, key_serializer, value_serializer)
        return
    raise ValueError(f"unsupported url scheme {parsed.scheme!r} in {url}")


def iter_records(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[Tuple[bytes, KeyValue]]:
    """Iterate decorated ``(keybytes, pair)`` records behind ``url``.

    Like :func:`iter_pairs`, but each pair arrives with its canonical
    key bytes.  Binary readers rebuild the bytes straight from the wire
    encoding when the key serializer is canonical (see
    ``Serializer.canonical_key_tag``); every other source re-encodes
    each key exactly once here.
    """
    parsed = parse(url)
    if parsed.scheme in ("", "file"):
        path = path_of_file_url(url)
        reader_cls = formats.reader_for(path)
        with open(path, "rb") as f:
            reader = _make_reader(reader_cls, f, key_serializer, value_serializer)
            records = getattr(reader, "iter_records", None)
            if records is not None:
                yield from records()
                return
            from repro.util.hashing import key_to_bytes

            for pair in reader:
                yield key_to_bytes(pair[0]), pair
        return
    from repro.util.hashing import key_to_bytes

    for pair in iter_pairs(url, key_serializer, value_serializer):
        yield key_to_bytes(pair[0]), pair


def _fetch_http(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> List[KeyValue]:
    last_error: Exception = FetchError(url)
    for attempt in range(FETCH_RETRIES):
        try:
            with urllib.request.urlopen(url, timeout=30) as response:
                payload = response.read()
            reader_cls = formats.reader_for(parse(url).path)
            return list(
                _make_reader(
                    reader_cls, io.BytesIO(payload),
                    key_serializer, value_serializer,
                )
            )
        except Exception as exc:  # urllib raises a zoo of error types
            last_error = exc
            if attempt + 1 < FETCH_RETRIES:
                time.sleep(FETCH_RETRY_DELAY * (attempt + 1))
    raise FetchError(f"failed to fetch {url}: {last_error}") from last_error


