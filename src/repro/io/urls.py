"""URL-addressed bucket data.

Persisted buckets are named by URL (section IV-B): ``file:`` URLs point
at any mounted filesystem (NFS, Lustre, local disk); ``http://`` URLs
point at a slave's built-in data server for direct peer transfer.  A
reduce task resolves each input URL with :func:`fetch_pairs` without
caring which transport backs it.

HTTP fetches ride the transfer plane (:mod:`repro.comm.transfer`):
pooled keep-alive connections, one configurable retry/timeout policy,
negotiated compression, and response bodies streamed straight into the
format readers — so remote buckets take the same canonical-key-bytes
fast path as local files instead of being materialized and re-encoded.
"""

from __future__ import annotations

import urllib.parse
import urllib.request
from typing import Any, Iterator, List, Optional, Tuple

from repro.comm.transfer import (  # noqa: F401  (FetchError re-exported)
    FetchError,
    FetchPolicy,
    fetch_pair_stream,
    fetch_record_stream,
    get_config as _get_transfer_config,
)
from repro.io import formats

KeyValue = Tuple[Any, Any]


def __getattr__(name: str) -> Any:
    # Legacy aliases for the live fetch policy.  Resolved per access so
    # they track MRS_FETCH_* env vars and --mrs-fetch-* options instead
    # of freezing the class defaults at import time; new code should
    # read ``repro.comm.transfer.get_config().policy`` directly.
    if name == "FETCH_RETRIES":
        return _get_transfer_config().policy.retries
    if name == "FETCH_RETRY_DELAY":
        return _get_transfer_config().policy.retry_delay
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def parse(url: str) -> urllib.parse.ParseResult:
    return urllib.parse.urlparse(url)


def path_of_file_url(url: str) -> str:
    parsed = parse(url)
    if parsed.scheme not in ("", "file"):
        raise ValueError(f"not a file url: {url}")
    # 'file:/abs/path' and 'file:///abs/path' both resolve to the path.
    return parsed.path or parsed.netloc


def _make_reader(reader_cls, fileobj, key_serializer, value_serializer):
    """Instantiate a reader, passing serializers where supported.

    Only the binary format has pluggable serializers; text and hex
    readers have fixed encodings.  When the value serializer supports
    zero-copy decoding (``loads_view``) and the zero-copy knob is on,
    local binary files open in mmap mode: values decode as views over
    the page cache instead of copies.
    """
    if issubclass(reader_cls, formats.BinReader) and (
        key_serializer or value_serializer
    ):
        from repro.io.serializers import get_serializer, loads_view_for

        value_s = get_serializer(value_serializer)
        return reader_cls(
            fileobj,
            key_serializer=get_serializer(key_serializer),
            value_serializer=value_s,
            use_mmap=loads_view_for(value_s) is not None,
        )
    return reader_cls(fileobj)


def fetch_pairs(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> List[KeyValue]:
    """Fetch and decode all key-value pairs behind ``url``.

    ``key_serializer``/``value_serializer`` name registered serializers
    for binary-format data written with non-default codecs.
    """
    parsed = parse(url)
    if parsed.scheme in ("", "file"):
        path = path_of_file_url(url)
        reader_cls = formats.reader_for(path)
        with open(path, "rb") as f:
            return list(_make_reader(reader_cls, f, key_serializer, value_serializer))
    if parsed.scheme in ("http", "https"):
        return list(fetch_pair_stream(url, key_serializer, value_serializer))
    raise ValueError(f"unsupported url scheme {parsed.scheme!r} in {url}")


def iter_pairs(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[KeyValue]:
    """Iterate the pairs behind ``url`` without materializing a list.

    ``file:`` URLs stream record by record straight off the reader;
    HTTP URLs stream straight off the socket through the transfer
    plane, which resumes a mid-stream failure by refetching and
    skipping already-delivered records — so a consumer that merges or
    filters never holds the whole bucket in memory on either transport.
    """
    parsed = parse(url)
    if parsed.scheme in ("", "file"):
        path = path_of_file_url(url)
        reader_cls = formats.reader_for(path)
        with open(path, "rb") as f:
            yield from _make_reader(reader_cls, f, key_serializer, value_serializer)
        return
    if parsed.scheme in ("http", "https"):
        yield from fetch_pair_stream(url, key_serializer, value_serializer)
        return
    raise ValueError(f"unsupported url scheme {parsed.scheme!r} in {url}")


def iter_records(
    url: str,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[Tuple[bytes, KeyValue]]:
    """Iterate decorated ``(keybytes, pair)`` records behind ``url``.

    Like :func:`iter_pairs`, but each pair arrives with its canonical
    key bytes.  Binary readers rebuild the bytes straight from the wire
    encoding when the key serializer is canonical (see
    ``Serializer.canonical_key_tag``) — over *both* transports: remote
    buckets feed ``BinReader.iter_records`` directly off the socket, so
    canonical bytes are sliced from the wire without a detour through a
    materialized pair list.  Every other source re-encodes each key
    exactly once here.
    """
    parsed = parse(url)
    if parsed.scheme in ("", "file"):
        path = path_of_file_url(url)
        reader_cls = formats.reader_for(path)
        with open(path, "rb") as f:
            reader = _make_reader(reader_cls, f, key_serializer, value_serializer)
            records = getattr(reader, "iter_records", None)
            if records is not None:
                yield from records()
                return
            from repro.util.hashing import key_to_bytes

            for pair in reader:
                yield key_to_bytes(pair[0]), pair
        return
    if parsed.scheme in ("http", "https"):
        yield from fetch_record_stream(url, key_serializer, value_serializer)
        return
    raise ValueError(f"unsupported url scheme {parsed.scheme!r} in {url}")
