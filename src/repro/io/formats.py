"""Record file formats.

Three formats, mirroring Mrs:

* **Text** (``.txt``, ``.mtxt``): one record per line.  Reading yields
  ``(line_number, line)`` pairs — the WordCount input convention where
  "the input key is ignored but generally arbitrarily set to be the
  line number".  Writing renders ``key<TAB>value`` lines.
* **Bin** (``.mrsb``): length-prefixed binary records with pluggable
  key/value serializers; the default intermediate format because it
  round-trips arbitrary Python objects.
* **Hex** (``.mrsx``): hex-encoded binary, one record per line; slower
  but grep-able, kept for debuggability of mock-parallel runs.

``reader_for``/``writer_for`` select a format class from a path's
extension, defaulting to text for unknown extensions (so arbitrary
corpus files are readable as lines).
"""

from __future__ import annotations

import binascii
import io
import os
import struct
from typing import Any, BinaryIO, Iterable, Iterator, List, Optional, Tuple

from repro.io.serializers import (
    Serializer,
    dumps_parts_for,
    get_serializer,
    loads_view_for,
)
from repro.native import kernels as _nk

KeyValue = Tuple[Any, Any]


def _native_kernels():
    """The shared native kernels, or ``None`` (mode-aware, cached)."""
    return _nk.get()


class Writer:
    """Base class for record writers over a binary file object."""

    def __init__(self, fileobj: BinaryIO):
        self.fileobj = fileobj

    def writepair(self, pair: KeyValue) -> None:
        raise NotImplementedError

    def writepairs(self, pairs: Iterable[KeyValue]) -> None:
        """Write a batch of pairs.

        The base implementation loops :meth:`writepair`; formats with a
        cheap batch encoding override this to serialize the whole batch
        into one buffer and pay a single file write.
        """
        for pair in pairs:
            self.writepair(pair)

    def finish(self) -> None:
        """Flush buffered data without closing the underlying file."""
        self.fileobj.flush()

    def close(self) -> None:
        self.finish()
        self.fileobj.close()

    def __enter__(self) -> "Writer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Reader:
    """Base class for record readers: iterate to get key-value pairs."""

    def __init__(self, fileobj: BinaryIO):
        self.fileobj = fileobj

    def __iter__(self) -> Iterator[KeyValue]:
        raise NotImplementedError

    def close(self) -> None:
        self.fileobj.close()

    def __enter__(self) -> "Reader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TextWriter(Writer):
    """``key<TAB>value`` lines; the standard human-readable output."""

    ext = "txt"

    def writepair(self, pair: KeyValue) -> None:
        key, value = pair
        line = f"{key}\t{value}\n"
        self.fileobj.write(line.encode("utf-8"))

    def writepairs(self, pairs: Iterable[KeyValue]) -> None:
        self.fileobj.write(
            "".join(f"{key}\t{value}\n" for key, value in pairs).encode("utf-8")
        )


class TextReader(Reader):
    """Yield ``(line_number, line_without_newline)`` for each line."""

    ext = "txt"

    def __iter__(self) -> Iterator[KeyValue]:
        for lineno, raw in enumerate(self.fileobj):
            yield lineno, raw.decode("utf-8", errors="replace").rstrip("\r\n")


_LEN_STRUCT = struct.Struct("!II")
_BIN_MAGIC = b"MRSB\x01"
#: Read granularity for streaming record iteration: large enough that
#: per-record costs are slicing, small enough to keep merges O(1)-ish
#: in memory.
_READ_CHUNK = 1 << 20
#: The ``!II`` framing caps each encoded key and value at 2^32 - 1
#: bytes.  Writers check explicitly and raise a ValueError naming the
#: record, instead of letting ``struct.error: argument out of range``
#: escape with no hint of which record overflowed.
FRAME_LIMIT = 0xFFFFFFFF
#: Value parts at least this large are written directly (scatter) on
#: the zero-copy path; smaller parts coalesce into the batch buffer.
_SCATTER_MIN = 1 << 16


def _frame_limit_error(key: Any, klen: int, vlen: int) -> ValueError:
    side, size = ("key", klen) if klen > FRAME_LIMIT else ("value", vlen)
    return ValueError(
        f"record {side} for key {key!r} is {size} bytes, which exceeds "
        f"the .mrsb frame limit of {FRAME_LIMIT} bytes ({size - FRAME_LIMIT} "
        f"over); split the value into smaller blocks"
    )


def _part_nbytes(part: Any) -> int:
    # memoryview length is in *items*, not bytes, unless cast to 'B'.
    return part.nbytes if isinstance(part, memoryview) else len(part)


class BinWriter(Writer):
    """Length-prefixed binary records with named serializers.

    Layout: magic, then per record ``!II`` (key length, value length)
    followed by the encoded key and value bytes.
    """

    ext = "mrsb"

    def __init__(
        self,
        fileobj: BinaryIO,
        key_serializer: Optional[Serializer] = None,
        value_serializer: Optional[Serializer] = None,
    ):
        super().__init__(fileobj)
        self.key_s = key_serializer or get_serializer(None)
        self.value_s = value_serializer or get_serializer(None)
        #: Zero-copy value encoder, or None for the plain dumps path.
        #: Resolved once per writer: the knob is process-wide and
        #: writers are short-lived.
        self._value_parts = dumps_parts_for(self.value_s)
        self.fileobj.write(_BIN_MAGIC)

    def writepair(self, pair: KeyValue) -> None:
        key, value = pair
        kb = self.key_s.dumps(key)
        if self._value_parts is not None:
            self._scatter([(key, kb, self._value_parts(value))])
            return
        vb = self.value_s.dumps(value)
        if len(kb) > FRAME_LIMIT or len(vb) > FRAME_LIMIT:
            raise _frame_limit_error(key, len(kb), len(vb))
        self.fileobj.write(_LEN_STRUCT.pack(len(kb), len(vb)))
        self.fileobj.write(kb)
        self.fileobj.write(vb)

    def _scatter(
        self, items: Iterable[Tuple[Any, bytes, Tuple[Any, ...]]]
    ) -> None:
        """Write ``(key, keybytes, value_parts)`` items without joining.

        Small parts (headers, framing) coalesce into a batch buffer;
        large parts go straight to the file object, which hands buffers
        above its own block size to the OS untouched — a multi-megabyte
        array block reaches the page cache without ever being copied
        into an intermediate ``bytes``.  Output is byte-for-byte
        identical to the ``dumps`` path.
        """
        pack = _LEN_STRUCT.pack
        write = self.fileobj.write
        chunks: List[Any] = []
        append = chunks.append
        pending = 0
        for key, kb, parts in items:
            vlen = sum(_part_nbytes(part) for part in parts)
            klen = len(kb)
            if klen > FRAME_LIMIT or vlen > FRAME_LIMIT:
                raise _frame_limit_error(key, klen, vlen)
            append(pack(klen, vlen))
            append(kb)
            pending += _LEN_STRUCT.size + klen
            for part in parts:
                nbytes = _part_nbytes(part)
                if nbytes >= _SCATTER_MIN:
                    if chunks:
                        write(b"".join(chunks))
                        chunks.clear()
                        pending = 0
                    write(part)
                else:
                    append(part)
                    pending += nbytes
            if pending >= _READ_CHUNK:
                write(b"".join(chunks))
                chunks.clear()
                pending = 0
        if chunks:
            write(b"".join(chunks))

    def writepairs(self, pairs: Iterable[KeyValue]) -> None:
        """Serialize a whole batch into one buffer and write it once.

        Byte-for-byte identical to looping :meth:`writepair`; only the
        number of file-object calls changes (3 per pair → 1 per batch).
        """
        key_dumps = self.key_s.dumps
        if self._value_parts is not None:
            value_parts = self._value_parts
            self._scatter(
                (key, key_dumps(key), value_parts(value))
                for key, value in pairs
            )
            return
        value_dumps = self.value_s.dumps
        pack = _LEN_STRUCT.pack
        chunks: List[bytes] = []
        append = chunks.append
        key = None
        kb = vb = b""
        try:
            for key, value in pairs:
                kb = key_dumps(key)
                vb = value_dumps(value)
                append(pack(len(kb), len(vb)))
                append(kb)
                append(vb)
        except struct.error:
            # ``pack`` overflowed the !II framing — unless the error
            # came from inside a serializer, in which case let it out.
            if len(kb) > FRAME_LIMIT or len(vb) > FRAME_LIMIT:
                raise _frame_limit_error(key, len(kb), len(vb)) from None
            raise
        self.fileobj.write(b"".join(chunks))

    def writerecords(self, records: Iterable[Tuple[bytes, KeyValue]]) -> None:
        """Batch-write decorated ``(keybytes, (key, value))`` records.

        When the key serializer is canonical (its wire bytes are the
        canonical key encoding minus the type tag), the serialized key
        is sliced straight out of the cached key bytes — the pipeline's
        one encode per key also covers serialization.  Non-matching
        keys (or non-canonical serializers) go through ``dumps``, which
        preserves the serializer's type errors.  Output is byte-for-byte
        identical to looping :meth:`writepair`.

        Values whose serializer implements ``dumps_parts`` (and the
        zero-copy knob is on) take the scatter-write path instead of
        being joined into the batch buffer.
        """
        tag = getattr(self.key_s, "canonical_key_tag", None)
        key_dumps = self.key_s.dumps
        if self._value_parts is not None:
            value_parts = self._value_parts
            taglen = len(tag) if tag is not None else 0

            def items():
                for keybytes, pair in records:
                    if tag is not None and keybytes.startswith(tag):
                        kb = keybytes[taglen:]
                    else:
                        kb = key_dumps(pair[0])
                    yield pair[0], kb, value_parts(pair[1])

            self._scatter(items())
            return
        if tag is None:
            self.writepairs([record[1] for record in records])
            return
        taglen = len(tag)
        value_dumps = self.value_s.dumps
        native = _native_kernels()
        if native is not None:
            # Batch framing in C: serialize keys/values into two column
            # lists, then one kernel call lays out every length prefix
            # and body (identical bytes to the pure loop below).
            kbs: List[bytes] = []
            vbs: List[bytes] = []
            kappend = kbs.append
            vappend = vbs.append
            for keybytes, pair in records:
                if keybytes.startswith(tag):
                    kappend(keybytes[taglen:])
                else:
                    kappend(key_dumps(pair[0]))
                vappend(value_dumps(pair[1]))
            if kbs and (
                max(map(len, kbs)) > FRAME_LIMIT
                or max(map(len, vbs)) > FRAME_LIMIT
            ):
                for kb, vb in zip(kbs, vbs):
                    if len(kb) > FRAME_LIMIT or len(vb) > FRAME_LIMIT:
                        raise _frame_limit_error(kb, len(kb), len(vb))
            self.fileobj.write(native.frame(kbs, vbs))
            return
        pack = _LEN_STRUCT.pack
        chunks: List[bytes] = []
        append = chunks.append
        pair = (None, None)
        kb = vb = b""
        try:
            for keybytes, pair in records:
                if keybytes.startswith(tag):
                    kb = keybytes[taglen:]
                else:
                    kb = key_dumps(pair[0])
                vb = value_dumps(pair[1])
                append(pack(len(kb), len(vb)))
                append(kb)
                append(vb)
        except struct.error:
            if len(kb) > FRAME_LIMIT or len(vb) > FRAME_LIMIT:
                raise _frame_limit_error(pair[0], len(kb), len(vb)) from None
            raise
        self.fileobj.write(b"".join(chunks))


class BinReader(Reader):
    ext = "mrsb"

    def __init__(
        self,
        fileobj: BinaryIO,
        key_serializer: Optional[Serializer] = None,
        value_serializer: Optional[Serializer] = None,
        use_mmap: bool = False,
    ):
        super().__init__(fileobj)
        self.key_s = key_serializer or get_serializer(None)
        self.value_s = value_serializer or get_serializer(None)
        #: Zero-copy value decoder, or None for the plain loads path.
        self._value_view = loads_view_for(self.value_s)
        magic = self.fileobj.read(len(_BIN_MAGIC))
        if magic != _BIN_MAGIC:
            raise ValueError(f"not a BinWriter file (magic={magic!r})")
        self._mmap = None
        self._mview: Optional[memoryview] = None
        if use_mmap:
            self._try_mmap()

    def _try_mmap(self) -> None:
        """Map the file read-only; silently stay on the streaming path
        for non-file objects (sockets, BytesIO) or empty files."""
        import mmap

        try:
            fileno = self.fileobj.fileno()
            if os.fstat(fileno).st_size <= len(_BIN_MAGIC):
                return
            self._mmap = mmap.mmap(fileno, 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError, io.UnsupportedOperation):
            self._mmap = None
            return
        self._mview = memoryview(self._mmap)

    def close(self) -> None:
        mview, self._mview = self._mview, None
        mapped, self._mmap = self._mmap, None
        if mview is not None:
            try:
                mview.release()
            except ValueError:
                pass
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:
                # Zero-copy value views handed to the consumer still
                # reference the map; the OS unmaps when the last view
                # is garbage-collected.
                pass
        super().close()

    def _iter_view(
        self, decorate: bool
    ) -> Iterator[Any]:
        """Walk the mmap'd file; values decode as zero-copy views when
        the serializer supports it (``loads_view``)."""
        from repro.util.hashing import key_to_bytes

        mv = self._mview
        assert mv is not None
        header_size = _LEN_STRUCT.size
        unpack_from = _LEN_STRUCT.unpack_from
        key_loads = self.key_s.loads
        value_view = self._value_view
        value_loads = self.value_s.loads
        tag = getattr(self.key_s, "canonical_key_tag", None)
        pos = len(_BIN_MAGIC)
        end = len(mv)
        while pos < end:
            body = pos + header_size
            if body > end:
                raise ValueError("truncated record header")
            klen, vlen = unpack_from(mv, pos)
            vstart = body + klen
            rec_end = vstart + vlen
            if rec_end > end:
                raise ValueError("truncated record body")
            kb = bytes(mv[body:vstart])
            if value_view is not None:
                value = value_view(mv[vstart:rec_end])
            else:
                value = value_loads(bytes(mv[vstart:rec_end]))
            pos = rec_end
            key = key_loads(kb)
            if decorate:
                yield (
                    tag + kb if tag is not None else key_to_bytes(key),
                    (key, value),
                )
            else:
                yield key, value

    def __iter__(self) -> Iterator[KeyValue]:
        if self._mview is not None:
            return self._iter_view(decorate=False)
        return self._iter_stream()

    def _iter_stream(self) -> Iterator[KeyValue]:
        read = self.fileobj.read
        header_size = _LEN_STRUCT.size
        unpack = _LEN_STRUCT.unpack
        key_loads = self.key_s.loads
        value_loads = self.value_s.loads
        while True:
            header = read(header_size)
            if not header:
                return
            if len(header) != header_size:
                raise ValueError("truncated record header")
            klen, vlen = unpack(header)
            kb = read(klen)
            vb = read(vlen)
            if len(kb) != klen or len(vb) != vlen:
                raise ValueError("truncated record body")
            yield key_loads(kb), value_loads(vb)

    def iter_records(self) -> Iterator[Tuple[bytes, KeyValue]]:
        """Iterate decorated ``(keybytes, (key, value))`` records.

        When the key serializer's wire bytes coincide with the
        canonical key encoding (``canonical_key_tag``), the cached key
        bytes are rebuilt by concatenation — the encode-once pipeline's
        key bytes survive the round-trip through the file.  Otherwise
        each key is re-encoded once here (the minimum possible).

        Records are parsed out of large read chunks rather than with
        three ``read`` calls each, so per-record cost is a pair of
        slices; memory stays bounded by the chunk size (plus one
        in-flight record), preserving the streaming-merge property.
        In mmap mode no chunking happens at all: records are walked in
        place and values decode as zero-copy views when the serializer
        supports ``loads_view``.
        """
        if self._mview is not None:
            yield from self._iter_view(decorate=True)
            return
        from repro.util.hashing import key_to_bytes

        read = self.fileobj.read
        header_size = _LEN_STRUCT.size
        unpack_from = _LEN_STRUCT.unpack_from
        key_loads = self.key_s.loads
        value_loads = self.value_s.loads
        tag = getattr(self.key_s, "canonical_key_tag", None)
        native = _native_kernels()
        buf = b""
        pos = 0
        while True:
            chunk = read(_READ_CHUNK)
            if not chunk:
                if pos != len(buf):
                    raise ValueError("truncated record")
                return
            if pos or buf:
                tail = buf[pos:]
                # Peek at the pending record's header: a record larger
                # than the chunk is completed with ONE sized read and
                # ONE join, instead of re-growing the buffer chunk by
                # chunk (quadratic in the record size).
                parts = [tail, chunk]
                avail = len(tail) + len(chunk)
                if avail >= header_size:
                    if len(tail) >= header_size:
                        klen, vlen = unpack_from(tail, 0)
                    else:
                        klen, vlen = _LEN_STRUCT.unpack(
                            (tail + chunk[: header_size - len(tail)])
                        )
                    rec_len = header_size + klen + vlen
                    if rec_len > avail:
                        more = read(rec_len - avail)
                        if more:
                            parts.append(more)
                buf = b"".join(parts)
            else:
                buf = chunk
            pos = 0
            end = len(buf)
            if native is not None:
                # One C call finds every complete record's offsets in
                # the chunk; Python only slices and decodes.
                count, triples = native.scan(buf)
                if count:
                    offsets = iter(triples[: 3 * count])
                    for kstart, vstart, vend in zip(offsets, offsets, offsets):
                        kb = buf[kstart:vstart]
                        key = key_loads(kb)
                        yield (
                            tag + kb if tag is not None else key_to_bytes(key),
                            (key, value_loads(buf[vstart:vend])),
                        )
                    pos = triples[3 * count - 1]
                continue
            while True:
                body = pos + header_size
                if body > end:
                    break
                klen, vlen = unpack_from(buf, pos)
                vstart = body + klen
                rec_end = vstart + vlen
                if rec_end > end:
                    break
                kb = buf[body:vstart]
                vb = buf[vstart:rec_end]
                pos = rec_end
                key = key_loads(kb)
                yield (
                    tag + kb if tag is not None else key_to_bytes(key),
                    (key, value_loads(vb)),
                )


class HexWriter(Writer):
    """Hex-encoded pickled records, one per line — grep-able binary."""

    ext = "mrsx"

    def __init__(self, fileobj: BinaryIO):
        super().__init__(fileobj)
        self.serializer = get_serializer(None)

    def writepair(self, pair: KeyValue) -> None:
        key, value = pair
        kb = binascii.hexlify(self.serializer.dumps(key))
        vb = binascii.hexlify(self.serializer.dumps(value))
        self.fileobj.write(kb + b" " + vb + b"\n")


class HexReader(Reader):
    ext = "mrsx"

    def __init__(self, fileobj: BinaryIO):
        super().__init__(fileobj)
        self.serializer = get_serializer(None)

    def __iter__(self) -> Iterator[KeyValue]:
        for lineno, line in enumerate(self.fileobj):
            line = line.strip()
            if not line:
                continue
            try:
                khex, vhex = line.split(b" ", 1)
            except ValueError:
                raise ValueError(f"malformed hex record on line {lineno}") from None
            yield (
                self.serializer.loads(binascii.unhexlify(khex)),
                self.serializer.loads(binascii.unhexlify(vhex)),
            )


class ZipReader(Reader):
    """Read every text member of a zip archive as line records.

    Project Gutenberg distributes books as individual zip files; Mrs
    "can read and write to any filesystem" and any format with a
    registered reader.  Keys are ``(member_name, line_number)`` so the
    member provenance survives into the map function.
    """

    ext = "zip"

    def __iter__(self) -> Iterator[KeyValue]:
        import zipfile

        with zipfile.ZipFile(self.fileobj) as archive:
            for name in sorted(archive.namelist()):
                if name.endswith("/"):
                    continue  # directory entry
                with archive.open(name) as member:
                    for lineno, raw in enumerate(member):
                        yield (
                            (name, lineno),
                            raw.decode("utf-8", errors="replace").rstrip("\r\n"),
                        )


_WRITERS = {
    "txt": TextWriter,
    "mtxt": TextWriter,
    "mrsb": BinWriter,
    "mrsx": HexWriter,
}

_READERS = {
    "txt": TextReader,
    "mtxt": TextReader,
    "mrsb": BinReader,
    "mrsx": HexReader,
    "zip": ZipReader,
}


def _extension(path: str) -> str:
    name = path.rsplit("/", 1)[-1]
    if "." not in name:
        return ""
    return name.rsplit(".", 1)[1].lower()


def writer_for(path: str) -> type:
    """Return the writer class for ``path`` based on its extension."""
    return _WRITERS.get(_extension(path), TextWriter)


def reader_for(path: str) -> type:
    """Return the reader class for ``path`` based on its extension.

    Unknown extensions read as text, which lets a job consume arbitrary
    corpus files (``.html``, bare names, etc.) as line records.
    """
    return _READERS.get(_extension(path), TextReader)


def default_read_pairs(path: str) -> Iterator[KeyValue]:
    """Convenience: open ``path`` and yield its records."""
    with open(path, "rb") as f:
        yield from reader_for(path)(f)
