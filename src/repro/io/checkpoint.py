"""Dataset checkpointing: persist and restore a dataset's contents.

Long iterative programs (the paper's target workload, with iteration
counts "in the tens or hundreds of thousands") need to survive job
resubmission on a batch scheduler whose walltime expires.  A checkpoint
is a directory holding every bucket as a binary file plus a JSON
manifest; :func:`load_checkpoint` reconstructs a complete dataset that
any operation can consume, so a program can resume mid-loop::

    if checkpoint_exists(path):
        state = load_checkpoint(path, job)
    ...
    write_checkpoint(path, state_dataset)   # every K iterations
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Any, Optional

from repro.core.dataset import BaseDataset
from repro.io.bucket import Bucket, FileBucket

MANIFEST = "manifest.json"
#: Version 2 adds a per-bucket ``"sorted"`` flag recording whether the
#: spilled file is in canonical key order; version-1 checkpoints are
#: still readable (the flag defaults to unsorted, which is always safe —
#: the merge materializes and sorts instead of streaming).
FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


class CheckpointError(Exception):
    pass


def checkpoint_exists(path: str) -> bool:
    return os.path.isfile(os.path.join(path, MANIFEST))


def write_checkpoint(path: str, dataset: BaseDataset) -> str:
    """Persist ``dataset`` (must be complete) atomically under ``path``.

    The checkpoint is written to a staging directory and renamed into
    place, so a walltime kill mid-write never leaves a half checkpoint
    where the next run would look for one.
    """
    if not dataset.complete:
        raise CheckpointError(
            f"cannot checkpoint incomplete dataset {dataset.id}"
        )
    dataset.fetchall()
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(prefix=".ckpt_", dir=parent)
    buckets = []
    try:
        for bucket in dataset.existing_buckets():
            name = f"bucket_{bucket.source}_{bucket.split}.mrsb"
            # Spill-only batch write: no duplicate in-memory copy, one
            # serialized buffer per flush instead of a write per pair.
            spill = FileBucket(
                os.path.join(staging, name),
                source=bucket.source,
                split=bucket.split,
                key_serializer=dataset.key_serializer,
                value_serializer=dataset.value_serializer,
                retain=False,
            )
            spill.absorb(bucket)
            spill.open_writer()
            spill.close_writer()
            buckets.append(
                {
                    "source": bucket.source,
                    "split": bucket.split,
                    "file": name,
                    # Whether the spill stream landed in canonical key
                    # order; restored as ``url_sorted`` so post-resume
                    # merges stream the file instead of materializing.
                    "sorted": spill.url_sorted,
                }
            )
        manifest = {
            "version": FORMAT_VERSION,
            "dataset_id": dataset.id,
            "splits": dataset.splits,
            "affinity_group": dataset.affinity_group,
            "key_serializer": dataset.key_serializer,
            "value_serializer": dataset.value_serializer,
            "buckets": buckets,
        }
        with open(os.path.join(staging, MANIFEST), "w") as f:
            json.dump(manifest, f, indent=2)
        # Atomic-enough swap: retire any previous checkpoint, then
        # rename the staging dir into place.
        if os.path.isdir(path):
            retired = path + ".old"
            if os.path.isdir(retired):
                shutil.rmtree(retired)
            os.replace(path, retired)
        os.replace(staging, path)
        return path
    except Exception:
        shutil.rmtree(staging, ignore_errors=True)
        raise


def load_checkpoint(path: str, job: Optional[Any] = None) -> BaseDataset:
    """Reconstruct the dataset saved at ``path``.

    The result is complete and bucket-compatible with the original; if
    a :class:`~repro.core.job.Job` is given, the dataset is registered
    with it so queued operations can consume it directly.
    """
    manifest_path = os.path.join(path, MANIFEST)
    try:
        with open(manifest_path) as f:
            manifest = json.load(f)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt manifest at {path}: {exc}") from exc
    if manifest.get("version") not in _READABLE_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {manifest.get('version')!r}"
        )
    dataset = BaseDataset(
        splits=manifest["splits"],
        affinity_group=manifest.get("affinity_group"),
        prefix="ckpt",
        key_serializer=manifest.get("key_serializer"),
        value_serializer=manifest.get("value_serializer"),
    )
    for entry in manifest["buckets"]:
        file_path = os.path.join(path, entry["file"])
        if not os.path.isfile(file_path):
            raise CheckpointError(
                f"checkpoint bucket missing: {entry['file']}"
            )
        bucket = FileBucket(
            file_path,
            source=entry["source"],
            split=entry["split"],
            key_serializer=manifest.get("key_serializer"),
            value_serializer=manifest.get("value_serializer"),
        )
        bucket.url_sorted = bool(entry.get("sorted", False))
        # Load pairs into memory *without* FileBucket's spill-buffer
        # addpair: a flush would rewrite (truncate) the checkpoint file
        # under any other process reading the same file (a worker pool
        # consumes checkpoint buckets by URL).
        for pair in bucket.readback():
            Bucket.addpair(bucket, pair)
        dataset.add_bucket(bucket)
    dataset.complete = True
    if job is not None:
        job._register(dataset)
    return dataset
