"""Key/value serializers.

Real Mrs lets a program declare per-key and per-value serializers so
that hot paths can skip pickle.  We reproduce that: a serializer is a
named pair of ``dumps``/``loads`` over ``bytes``, registered in a global
table so task descriptions can refer to serializers by name when they
are shipped to slave processes.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, Dict, Optional


class Serializer:
    """A named bytes codec.

    Parameters
    ----------
    name:
        Registry key; task descriptions reference serializers by name.
    dumps / loads:
        The codec functions.
    """

    def __init__(
        self,
        name: str,
        dumps: Callable[[Any], bytes],
        loads: Callable[[bytes], Any],
        canonical_key_tag: Optional[bytes] = None,
    ) -> None:
        self.name = name
        self.dumps = dumps
        self.loads = loads
        #: When set, the serializer's wire bytes coincide with the
        #: canonical key encoding minus its type tag:
        #: ``key_to_bytes(loads(data)) == canonical_key_tag + data``
        #: for every valid ``data``.  Readers use this to reconstruct
        #: cached key bytes with a concatenation instead of re-encoding
        #: each key on the reduce side.
        self.canonical_key_tag = canonical_key_tag

    def __repr__(self) -> str:
        return f"Serializer({self.name!r})"

    def roundtrip(self, obj: Any) -> Any:
        """Encode then decode ``obj`` (used by tests and the mock-parallel
        runtime, which forces every record through serialization to
        surface bugs that would only appear in distributed runs)."""
        return self.loads(self.dumps(obj))


_REGISTRY: Dict[str, Serializer] = {}


def register_serializer(serializer: Serializer) -> Serializer:
    _REGISTRY[serializer.name] = serializer
    return serializer


def get_serializer(name: Optional[str]) -> Serializer:
    """Look up a serializer by name; ``None`` means pickle (the default)."""
    if name is None:
        return PickleSerializer
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown serializer {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def _pickle_dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)


PickleSerializer = register_serializer(
    Serializer("pickle", _pickle_dumps, pickle.loads)
)


def _raw_dumps(obj: Any) -> bytes:
    if not isinstance(obj, bytes):
        raise TypeError(f"raw serializer requires bytes, got {type(obj).__name__}")
    return obj


def _raw_loads(data: bytes) -> bytes:
    return data


# Identity codec: key_to_bytes(loads(data)) == b"b:" + data.
RawSerializer = register_serializer(
    Serializer("raw", _raw_dumps, _raw_loads, canonical_key_tag=b"b:")
)


def _str_dumps(obj: Any) -> bytes:
    if not isinstance(obj, str):
        raise TypeError(f"str serializer requires str, got {type(obj).__name__}")
    return obj.encode("utf-8")


# Pure UTF-8: key_to_bytes(loads(data)) == b"s:" + data (UTF-8
# round-trips exactly for every valid encoding).  ``bytes.decode``
# defaults to UTF-8; the unbound method as ``loads`` drops a Python
# frame per record on the reduce-side decode path.
StrSerializer = register_serializer(
    Serializer("str", _str_dumps, bytes.decode, canonical_key_tag=b"s:")
)

_INT_STRUCT = struct.Struct("!q")


def _int_dumps(obj: Any) -> bytes:
    # Exact-type fast path first: this runs once per written pair.
    if type(obj) is int:
        try:
            return _INT_STRUCT.pack(obj)
        except struct.error:
            # Fall back to a variable-length encoding for big ints,
            # tagged by length prefix impossibility: sign-magnitude
            # text.
            return b"L" + str(obj).encode("ascii")
    # bool is an int subclass but almost certainly a bug as a count.
    if not isinstance(obj, int) or isinstance(obj, bool):
        raise TypeError(f"int serializer requires int, got {type(obj).__name__}")
    try:
        return _INT_STRUCT.pack(obj)
    except struct.error:
        return b"L" + str(obj).encode("ascii")


def _int_loads(data: bytes) -> int:
    if len(data) == _INT_STRUCT.size:
        return _INT_STRUCT.unpack(data)[0]
    if data[:1] == b"L":
        return int(data[1:])
    raise ValueError(f"malformed int encoding of length {len(data)}")


IntSerializer = register_serializer(Serializer("int", _int_dumps, _int_loads))


def _float_dumps(obj: Any) -> bytes:
    return struct.pack("!d", obj)


def _float_loads(data: bytes) -> float:
    return struct.unpack("!d", data)[0]


FloatSerializer = register_serializer(Serializer("float", _float_dumps, _float_loads))
