"""Key/value serializers.

Real Mrs lets a program declare per-key and per-value serializers so
that hot paths can skip pickle.  We reproduce that: a serializer is a
named pair of ``dumps``/``loads`` over ``bytes``, registered in a global
table so task descriptions can refer to serializers by name when they
are shipped to slave processes.

Serializers for large binary values (NumPy blocks) can additionally
implement the *buffer-protocol extension* — ``dumps_parts(obj)``
returning ``(header_bytes, memoryview, ...)`` and
``loads_view(memoryview)`` — so the IO layer can scatter-write the
parts without joining them into one ``bytes`` and decode values
straight out of an ``mmap`` without copying.  The extension is gated by
the zero-copy knob (``--mrs-zero-copy on|off`` / ``MRS_ZERO_COPY``):
when off, the plain ``dumps``/``loads`` path runs, producing
byte-identical files.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Callable, Dict, Optional, Tuple

from repro.util.hashing import PICKLE_PROTOCOL


class Serializer:
    """A named bytes codec.

    Parameters
    ----------
    name:
        Registry key; task descriptions reference serializers by name.
    dumps / loads:
        The codec functions.
    dumps_parts / loads_view:
        Optional buffer-protocol extension.  ``dumps_parts(obj)``
        returns a tuple of buffers — by convention a small header
        followed by one or more large ``memoryview``s — whose
        concatenation equals ``dumps(obj)``.  ``loads_view(view)``
        decodes from any object supporting the buffer protocol
        (``memoryview``, ``mmap``, ``bytes``) without copying the
        payload when the backing store allows it.
    """

    def __init__(
        self,
        name: str,
        dumps: Callable[[Any], bytes],
        loads: Callable[[bytes], Any],
        canonical_key_tag: Optional[bytes] = None,
        dumps_parts: Optional[Callable[[Any], Tuple[Any, ...]]] = None,
        loads_view: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.name = name
        self.dumps = dumps
        self.loads = loads
        #: When set, the serializer's wire bytes coincide with the
        #: canonical key encoding minus its type tag:
        #: ``key_to_bytes(loads(data)) == canonical_key_tag + data``
        #: for every valid ``data``.  Readers use this to reconstruct
        #: cached key bytes with a concatenation instead of re-encoding
        #: each key on the reduce side.
        self.canonical_key_tag = canonical_key_tag
        self.dumps_parts = dumps_parts
        self.loads_view = loads_view

    def __repr__(self) -> str:
        return f"Serializer({self.name!r})"

    def roundtrip(self, obj: Any) -> Any:
        """Encode then decode ``obj`` (used by tests and the mock-parallel
        runtime, which forces every record through serialization to
        surface bugs that would only appear in distributed runs)."""
        return self.loads(self.dumps(obj))


_REGISTRY: Dict[str, Serializer] = {}


def register_serializer(serializer: Serializer) -> Serializer:
    _REGISTRY[serializer.name] = serializer
    return serializer


def get_serializer(name: Optional[str]) -> Serializer:
    """Look up a serializer by name; ``None`` means pickle (the default)."""
    if name is None:
        return PickleSerializer
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown serializer {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def _pickle_dumps(obj: Any) -> bytes:
    # Same pinned protocol as the canonical key encoding
    # (util/hashing.py) so value bytes, like key bytes, are identical
    # across every interpreter version in a cluster.
    return pickle.dumps(obj, PICKLE_PROTOCOL)


PickleSerializer = register_serializer(
    Serializer("pickle", _pickle_dumps, pickle.loads)
)


def _raw_dumps(obj: Any) -> bytes:
    if not isinstance(obj, bytes):
        raise TypeError(f"raw serializer requires bytes, got {type(obj).__name__}")
    return obj


def _raw_loads(data: bytes) -> bytes:
    return data


# Identity codec: key_to_bytes(loads(data)) == b"b:" + data.
RawSerializer = register_serializer(
    Serializer("raw", _raw_dumps, _raw_loads, canonical_key_tag=b"b:")
)


def _str_dumps(obj: Any) -> bytes:
    if not isinstance(obj, str):
        raise TypeError(f"str serializer requires str, got {type(obj).__name__}")
    return obj.encode("utf-8")


# Pure UTF-8: key_to_bytes(loads(data)) == b"s:" + data (UTF-8
# round-trips exactly for every valid encoding).  ``bytes.decode``
# defaults to UTF-8; the unbound method as ``loads`` drops a Python
# frame per record on the reduce-side decode path.
StrSerializer = register_serializer(
    Serializer("str", _str_dumps, bytes.decode, canonical_key_tag=b"s:")
)

_INT_STRUCT = struct.Struct("!q")


def _int_dumps(obj: Any) -> bytes:
    # Exact-type fast path first: this runs once per written pair.
    if type(obj) is int:
        try:
            return _INT_STRUCT.pack(obj)
        except struct.error:
            # Fall back to a variable-length encoding for big ints,
            # tagged by length prefix impossibility: sign-magnitude
            # text.
            return b"L" + str(obj).encode("ascii")
    # bool is an int subclass but almost certainly a bug as a count.
    if not isinstance(obj, int) or isinstance(obj, bool):
        raise TypeError(f"int serializer requires int, got {type(obj).__name__}")
    try:
        return _INT_STRUCT.pack(obj)
    except struct.error:
        return b"L" + str(obj).encode("ascii")


def _int_loads(data: bytes) -> int:
    if len(data) == _INT_STRUCT.size:
        return _INT_STRUCT.unpack(data)[0]
    if data[:1] == b"L":
        return int(data[1:])
    raise ValueError(f"malformed int encoding of length {len(data)}")


IntSerializer = register_serializer(Serializer("int", _int_dumps, _int_loads))


def _float_dumps(obj: Any) -> bytes:
    return struct.pack("!d", obj)


def _float_loads(data: bytes) -> float:
    return struct.unpack("!d", data)[0]


FloatSerializer = register_serializer(Serializer("float", _float_dumps, _float_loads))


# -- zero-copy mode ---------------------------------------------------
#
# One knob gates every buffer-protocol fast path (scatter-write,
# mmap-backed reads, sendfile): ``--mrs-zero-copy on|off``, mirrored
# into the ``MRS_ZERO_COPY`` environment variable so spawned workers
# and slaves inherit the choice.  Same state-machine shape as the
# native-kernel knob (repro/native/kernels.py).

_VALID_ZERO_COPY_MODES = ("on", "off")
_zero_copy_mode: Optional[str] = None


def zero_copy_mode() -> str:
    """The active zero-copy mode, initialized lazily from
    ``MRS_ZERO_COPY`` (default ``on``)."""
    global _zero_copy_mode
    if _zero_copy_mode is None:
        env = os.environ.get("MRS_ZERO_COPY", "on").strip().lower()
        _zero_copy_mode = env if env in _VALID_ZERO_COPY_MODES else "on"
    return _zero_copy_mode


def set_zero_copy_mode(mode: str) -> None:
    if mode not in _VALID_ZERO_COPY_MODES:
        raise ValueError(
            f"zero-copy mode must be one of {_VALID_ZERO_COPY_MODES}, "
            f"got {mode!r}"
        )
    global _zero_copy_mode
    _zero_copy_mode = mode
    # Mirror into the environment so spawned worker/slave processes
    # make the same choice.
    os.environ["MRS_ZERO_COPY"] = mode


def configure_zero_copy_from_opts(opts: Any) -> None:
    mode = getattr(opts, "zero_copy", None)
    if mode:
        set_zero_copy_mode(mode)


def zero_copy_enabled() -> bool:
    return zero_copy_mode() == "on"


def dumps_parts_for(serializer: Serializer) -> Optional[Callable[[Any], Tuple[Any, ...]]]:
    """The serializer's ``dumps_parts`` when the zero-copy knob allows
    it, else ``None`` (callers fall back to plain ``dumps``)."""
    parts = serializer.dumps_parts
    if parts is not None and zero_copy_enabled():
        return parts
    return None


def loads_view_for(serializer: Serializer) -> Optional[Callable[[Any], Any]]:
    """The serializer's ``loads_view`` when the zero-copy knob allows
    it, else ``None`` (callers fall back to plain ``loads``)."""
    view = serializer.loads_view
    if view is not None and zero_copy_enabled():
        return view
    return None


# -- numpy ------------------------------------------------------------
#
# Wire format: a small self-describing header followed by the raw
# C-contiguous array buffer —
#
#   !HB  dtype-string length, ndim
#   ...  dtype string (numpy ``dtype.str``, e.g. ``<f8`` — includes
#        byte order, so files travel between hosts)
#   !Q*  one dimension per ndim
#   ...  raw buffer (``arr.tobytes()`` equivalent)
#
# ``dumps_parts`` returns ``(header, memoryview(arr))`` so writers can
# scatter the two without ever materializing header+payload as one
# ``bytes``; ``loads_view`` rebuilds the array as a view over whatever
# buffer the reader hands it (an mmap'd file region costs no copy at
# all).  ``loads``/``loads_view`` return read-only arrays when the
# backing buffer is read-only — call ``numpy.copy`` before mutating.

_NP_HEADER = struct.Struct("!HB")


def _numpy_header(arr: Any) -> bytes:
    dtype_str = arr.dtype.str.encode("ascii")
    return (
        _NP_HEADER.pack(len(dtype_str), arr.ndim)
        + dtype_str
        + struct.pack(f"!{arr.ndim}Q", *arr.shape)
    )


def _numpy_contiguous(obj: Any) -> Any:
    import numpy

    if not isinstance(obj, numpy.ndarray):
        raise TypeError(
            f"numpy serializer requires numpy.ndarray, got {type(obj).__name__}"
        )
    if obj.dtype.hasobject:
        raise TypeError("numpy serializer cannot encode object-dtype arrays")
    if not obj.flags.c_contiguous:
        # ascontiguousarray also promotes 0-d to 1-d, so only call it
        # when a copy is actually needed (0-d is always contiguous).
        return numpy.ascontiguousarray(obj)
    return obj


def _numpy_dumps_parts(obj: Any) -> Tuple[bytes, Any]:
    arr = _numpy_contiguous(obj)
    if arr.ndim == 0 or arr.size == 0:
        # memoryview.cast rejects 0-d and zero-length shapes; these
        # payloads are at most one item, so copying is free.
        return (_numpy_header(arr), arr.tobytes())
    return (_numpy_header(arr), memoryview(arr).cast("B"))


def _numpy_dumps(obj: Any) -> bytes:
    arr = _numpy_contiguous(obj)
    return _numpy_header(arr) + arr.tobytes()


def _numpy_loads_view(view: Any) -> Any:
    import numpy

    mv = memoryview(view)
    dtype_len, ndim = _NP_HEADER.unpack_from(mv, 0)
    pos = _NP_HEADER.size
    dtype = numpy.dtype(bytes(mv[pos : pos + dtype_len]).decode("ascii"))
    pos += dtype_len
    shape = struct.unpack_from(f"!{ndim}Q", mv, pos)
    pos += 8 * ndim
    arr = numpy.frombuffer(mv, dtype=dtype, offset=pos)
    return arr.reshape(shape)


NumpySerializer = register_serializer(
    Serializer(
        "numpy",
        _numpy_dumps,
        _numpy_loads_view,  # zero-copy over bytes too
        dumps_parts=_numpy_dumps_parts,
        loads_view=_numpy_loads_view,
    )
)
