"""Buckets: the unit of intermediate data in a MapReduce job.

A dataset is a grid of buckets addressed by ``(source, split)``:
``source`` is the index of the task that produced the data and
``split`` is the partition it belongs to.  A reduce task for split *s*
consumes bucket ``(source, s)`` for every source.

Buckets collect key-value pairs in memory; they can be persisted to a
file with any registered writer format (section IV-B: "the writer opens
and writes a file and then sends the master the corresponding URL") and
re-read later, possibly by a different process or over HTTP.

Encode-once record pipeline
---------------------------
Every placement and ordering decision in the framework is made on a
record's *canonical key bytes* (:func:`repro.util.hashing.key_to_bytes`)
rather than the raw key, so that mixed-type key sets stay well-defined
and placement is process-independent.  Encoding a key is the single
most repeated operation of the shuffle, so a bucket computes each
record's key bytes exactly once — at :meth:`Bucket.addpair` time, or
earlier at emit time when the caller already has them — and caches them
in a parallel array.  The sorted-flag check, :meth:`Bucket.sort`,
grouping, and the reduce-side merge all reuse the cached bytes instead
of re-encoding.

The *decorated record* ``(keybytes, (key, value))`` is the unit the
sort/merge plumbing exchanges: :func:`group_sorted_records`,
:func:`merge_sorted_records`, and :func:`bucket_sorted_records` all
speak records, while the historical pair-level helpers
(:func:`group_sorted`, :func:`merge_sorted_buckets`) remain as thin
views for callers that only care about pairs.
"""

from __future__ import annotations

import heapq
import itertools
import os
from operator import itemgetter, le
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.native import kernels as _nk
from repro.util.hashing import key_to_bytes

KeyValue = Tuple[Any, Any]
#: A pair decorated with its cached canonical key encoding.
Record = Tuple[bytes, KeyValue]

#: Key extractor for decorated records (C-level; no re-encoding).
record_key = itemgetter(0)
#: Second-element extractor: record -> pair, and pair -> value.
record_value = itemgetter(1)

#: Pairs buffered in a :class:`FileBucket` before they are batch-written
#: to the backing file.  Overridable per bucket via the
#: ``spill_buffer_pairs`` constructor argument or globally with the
#: ``MRS_SPILL_BUFFER_PAIRS`` environment variable.
DEFAULT_SPILL_BUFFER_PAIRS = int(os.environ.get("MRS_SPILL_BUFFER_PAIRS", 4096))


def sort_key(pair: KeyValue) -> bytes:
    """Canonical sort key: stable byte encoding of the record's key.

    Sorting by encoded bytes (rather than the raw key) makes grouping
    well-defined even for key sets that are not mutually comparable in
    Python 3 (e.g. mixed int/str keys).
    """
    return key_to_bytes(pair[0])


def decorate_pairs(pairs: Iterable[KeyValue]) -> Iterator[Record]:
    """Attach canonical key bytes to a pair stream (one encode each)."""
    for pair in pairs:
        yield key_to_bytes(pair[0]), pair


def group_sorted_records(
    records: Iterable[Record],
) -> Iterator[Tuple[bytes, Any, Iterator[Any]]]:
    """Group a key-sorted record stream into ``(keybytes, key, values)``.

    Grouping compares the cached key bytes, never re-encoding.  The
    yielded key bytes let callers reuse the encoding for downstream
    placement (e.g. partitioning the combiner's or reducer's output for
    the same key).  The values iterator is lazy and must be consumed
    before advancing, exactly like the iterators handed to a reduce
    function.
    """
    for keybytes, group in itertools.groupby(records, key=record_key):
        first_pair = next(group)[1]
        # values = first value, then pair[1] of each remaining record —
        # chain/map keep the per-value iteration at C speed (a record is
        # (keybytes, pair), so record_value twice digs out the value).
        yield keybytes, first_pair[0], itertools.chain(
            (first_pair[1],), map(record_value, map(record_value, group))
        )


def group_sorted(pairs: Iterable[KeyValue]) -> Iterator[Tuple[Any, Iterator[Any]]]:
    """Group a key-sorted pair stream into ``(key, values)`` items.

    Pair-level view of :func:`group_sorted_records`: each key is
    encoded once to drive the grouping.
    """
    for _, key, values in group_sorted_records(decorate_pairs(pairs)):
        yield key, values


class Bucket:
    """An in-memory collection of key-value pairs.

    Internally the pairs ride alongside a parallel array of cached
    canonical key bytes, so ordering decisions (sorted-flag upkeep,
    :meth:`sort`, :meth:`grouped`, merging) never re-encode a key.

    Parameters
    ----------
    source, split:
        Grid coordinates within the owning dataset.
    url:
        Where a persisted copy of this bucket lives (``file:`` path or
        ``http://`` address), if any.
    """

    #: Registered serializer *names* used when reading this bucket's
    #: persisted copy (binary format only).  Set per-instance by
    #: :class:`FileBucket` and by streaming input resolution.
    key_serializer: Optional[str] = None
    value_serializer: Optional[str] = None

    def __init__(self, source: int = 0, split: int = 0, url: Optional[str] = None):
        self.source = source
        self.split = split
        self.url = url
        self._pairs: List[KeyValue] = []
        #: Cached canonical key bytes, parallel to ``_pairs``.
        self._keys: List[bytes] = []
        #: Tri-state sort flag: ``True``/``False`` when known, ``None``
        #: when unknown (resolved lazily by :attr:`is_sorted` with one
        #: C-speed scan of the key array).
        self._sorted: Optional[bool] = True
        #: True when the persisted copy at ``url`` is known to be in
        #: canonical key order, enabling O(1)-memory streaming merges.
        self.url_sorted = False

    def addpair(self, pair: KeyValue, keybytes: Optional[bytes] = None) -> None:
        """Append a pair, encoding its key once (or reusing ``keybytes``
        when the caller already computed it, e.g. for partitioning).

        Appends do no sortedness bookkeeping — the hottest loop of the
        data plane stays comparison-free and the flag is re-established
        lazily (see :attr:`is_sorted`).
        """
        if keybytes is None:
            keybytes = key_to_bytes(pair[0])
        self._keys.append(keybytes)
        self._pairs.append(pair)
        self._sorted = None

    def extend_records(self, records: List[Record]) -> None:
        """Bulk append of decorated records: the batch form of
        :meth:`addpair`, extending both parallel arrays at C speed.
        ``records`` must be a sequence (it is iterated twice)."""
        self._keys.extend(map(record_key, records))
        self._pairs.extend(map(record_value, records))
        self._sorted = None

    def extend_columns(self, keys: List[bytes], pairs: List[KeyValue]) -> None:
        """Bulk append from parallel key/pair columns.

        The column form of :meth:`extend_records`, used by the batch
        emitter's scatter: the caller already holds the two arrays, so
        nothing is zipped or unzipped.  ``keys`` and ``pairs`` must have
        equal length.
        """
        self._keys.extend(keys)
        self._pairs.extend(pairs)
        self._sorted = None

    def collector(self) -> Tuple[Callable[[bytes], None], Callable[[KeyValue], None]]:
        """Return ``(add_keybytes, add_pair)`` for tight emit loops.

        The pair of bound ``list.append`` methods lets a hot loop feed
        the bucket with two C calls per record instead of one Python
        frame (:meth:`addpair`).  The caller must append exactly one
        ``keybytes`` and one pair per record, in lockstep; the sort
        state is marked unknown once up front so the loop itself stays
        comparison-free.
        """
        self._sorted = None
        return self._keys.append, self._pairs.append

    def collect(self, pairs: Iterable[KeyValue]) -> None:
        for pair in pairs:
            self.addpair(pair)

    def absorb(self, other: "Bucket") -> None:
        """Take every pair of ``other``, reusing its cached key bytes
        and already-known sort state instead of re-deriving them
        pair by pair."""
        if not self._pairs:
            self._keys = list(other._keys)
            self._pairs = list(other._pairs)
            self._sorted = other._sorted
            return
        if self.is_sorted:
            self._sorted = other.is_sorted and (
                not other._keys or self._keys[-1] <= other._keys[0]
            )
        self._keys.extend(other._keys)
        self._pairs.extend(other._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[KeyValue]:
        return iter(self._pairs)

    def __getitem__(self, index: int) -> KeyValue:
        return self._pairs[index]

    def sort(self) -> None:
        """Sort pairs by canonical key encoding (stable).

        With the native kernels loaded, the stable sort permutation is
        computed in C over the packed key bytes; either way the result
        is exactly ``sorted(range(n), key=keys.__getitem__)`` applied to
        both parallel arrays.
        """
        if not self.is_sorted:
            keys = self._keys
            native = _nk.get() if len(keys) >= _nk.MIN_BATCH else None
            if native is not None:
                order = native.sort_index(keys)
            else:
                order = sorted(range(len(keys)), key=keys.__getitem__)
            self._keys = list(map(keys.__getitem__, order))
            self._pairs = list(map(self._pairs.__getitem__, order))
            self._sorted = True

    @property
    def is_sorted(self) -> bool:
        """Whether the pairs are in canonical key order.

        Appends leave the flag unknown; the answer is computed here by
        a single vectorized scan over the cached key array and cached
        until the next mutation.  One scan per sort/spill boundary is
        far cheaper than a comparison per append.
        """
        sorted_flag = self._sorted
        if sorted_flag is None:
            keys = self._keys
            sorted_flag = self._sorted = bool(
                not keys or all(map(le, keys, itertools.islice(keys, 1, None)))
            )
        return sorted_flag

    def sorted_pairs(self) -> List[KeyValue]:
        self.sort()
        return self._pairs

    def records(self) -> Iterator[Record]:
        """The decorated record view of the current contents."""
        return zip(self._keys, self._pairs)

    def sorted_records(self) -> Iterator[Record]:
        """Decorated records in canonical key order (sorts in place)."""
        self.sort()
        return zip(self._keys, self._pairs)

    def grouped_records(self) -> Iterator[Tuple[bytes, Any, Iterator[Any]]]:
        """Yield ``(keybytes, key, values)`` groups in key order."""
        return group_sorted_records(self.sorted_records())

    def hash_grouped_records(self) -> List[Tuple[bytes, Any, List[Any]]]:
        """Group ``(keybytes, key, values_list)`` WITHOUT sorting.

        One dict pass over the cached key bytes, returning groups in
        first-encounter order with values as plain lists (in encounter
        order, exactly as a stable sort would deliver them).  This is
        the combiner's grouping: a combiner needs equal keys brought
        together, not global order, so the sort can be deferred to the
        (much smaller) combined output.  Callers that need the bucket
        itself ordered still use :meth:`grouped_records`.
        """
        groups: dict = {}
        get = groups.get
        for keybytes, pair in zip(self._keys, self._pairs):
            entry = get(keybytes)
            if entry is None:
                groups[keybytes] = entry = (pair[0], [])
            entry[1].append(pair[1])
        return [
            (keybytes, entry[0], entry[1]) for keybytes, entry in groups.items()
        ]

    def sorted_grouped_lists(self) -> List[Tuple[bytes, Any, List[Any]]]:
        """Key-ordered ``(keybytes, key, values_list)`` groups.

        Exactly :meth:`hash_grouped_records` followed by sorting the
        group list on the cached key bytes — the combiner's access
        pattern.  With the native kernels loaded, grouping and the
        group sort fuse into one C call over the packed key bytes
        (values still in encounter order, as a stable sort delivers
        them).
        """
        keys = self._keys
        native = _nk.get() if len(keys) >= _nk.MIN_BATCH else None
        if native is None:
            groups = self.hash_grouped_records()
            groups.sort(key=record_key)
            return groups
        pairs = self._pairs
        ngroups, order, bounds = native.group_scatter(keys, sort_groups=True)
        out: List[Tuple[bytes, Any, List[Any]]] = []
        for g in range(ngroups):
            lo, hi = bounds[g], bounds[g + 1]
            first = order[lo]
            out.append(
                (
                    keys[first],
                    pairs[first][0],
                    [pairs[i][1] for i in order[lo:hi]],
                )
            )
        return out

    def grouped(self) -> Iterator[Tuple[Any, Iterator[Any]]]:
        """Yield ``(key, values)`` groups in key order."""
        for _, key, values in self.grouped_records():
            yield key, values

    def clean(self) -> None:
        """Drop in-memory pairs (keep the url so data can be re-read)."""
        self._pairs = []
        self._keys = []
        self._sorted = True

    def __repr__(self) -> str:
        return (
            f"Bucket(source={self.source}, split={self.split}, "
            f"len={len(self._pairs)}, url={self.url!r})"
        )


class FileBucket(Bucket):
    """A bucket whose authoritative contents live in a file.

    Appended pairs are buffered and batch-serialized to the backing
    file (``spill_buffer_pairs`` at a time) instead of paying a writer
    call per pair; the buffer is flushed by :meth:`flush` and
    :meth:`close_writer`.  With ``retain=False`` the bucket is
    *spill-only*: pairs go to the file but are not also kept in memory,
    which is what coordinator-side spills and checkpoints want.

    The bucket also tracks whether the spill stream was written in
    canonical key order (``url_sorted`` after :meth:`close_writer`), so
    downstream merges can stream the file without re-sorting.
    """

    def __init__(
        self,
        path: str,
        source: int = 0,
        split: int = 0,
        writer_cls: Optional[type] = None,
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
        retain: bool = True,
        spill_buffer_pairs: Optional[int] = None,
    ):
        super().__init__(source=source, split=split, url="file:" + os.path.abspath(path))
        self.path = os.path.abspath(path)
        self._writer = None
        self._writer_cls = writer_cls
        #: Registered serializer *names* (binary format only).
        self.key_serializer = key_serializer
        self.value_serializer = value_serializer
        self._retain = retain
        #: Buffered *records*: the cached key bytes ride along so the
        #: batch writer can serialize canonical keys by slicing them.
        self._spill_buffer: List[Record] = []
        self.spill_buffer_pairs = spill_buffer_pairs or DEFAULT_SPILL_BUFFER_PAIRS
        #: Insertion order of the spill stream (independent of the
        #: in-memory order, which :meth:`sort` may rearrange).
        self._spill_sorted = True
        self._last_spill_key: Optional[bytes] = None

    def open_writer(self):
        from repro.io import formats
        from repro.io.serializers import get_serializer

        if self._writer is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            writer_cls = self._writer_cls or formats.writer_for(self.path)
            fileobj = open(self.path, "wb")
            if issubclass(writer_cls, formats.BinWriter) and (
                self.key_serializer or self.value_serializer
            ):
                self._writer = writer_cls(
                    fileobj,
                    key_serializer=get_serializer(self.key_serializer),
                    value_serializer=get_serializer(self.value_serializer),
                )
            else:
                self._writer = writer_cls(fileobj)
        return self._writer

    def addpair(self, pair: KeyValue, keybytes: Optional[bytes] = None) -> None:
        if keybytes is None:
            keybytes = key_to_bytes(pair[0])
        if (
            self._spill_sorted
            and self._last_spill_key is not None
            and self._last_spill_key > keybytes
        ):
            self._spill_sorted = False
        self._last_spill_key = keybytes
        if self._retain:
            super().addpair(pair, keybytes)
        self._spill_buffer.append((keybytes, pair))
        if len(self._spill_buffer) >= self.spill_buffer_pairs:
            self._flush_spill()

    def absorb(self, other: Bucket) -> None:
        keys = other._keys
        if keys:
            if self._spill_sorted and (
                not other.is_sorted
                or (
                    self._last_spill_key is not None
                    and self._last_spill_key > keys[0]
                )
            ):
                self._spill_sorted = False
            self._last_spill_key = keys[-1]
        if self._retain:
            super().absorb(other)
        if not self._spill_buffer and len(keys) >= self.spill_buffer_pairs:
            # Nothing buffered ahead of a batch that would flush anyway:
            # stream it straight to the writer.  The lazy zip feeds the
            # batch writer's unpack loop, which lets CPython reuse one
            # result tuple instead of materializing a record per pair.
            self._write_batch(zip(keys, other._pairs))
        else:
            self._spill_buffer.extend(zip(keys, other._pairs))
            if len(self._spill_buffer) >= self.spill_buffer_pairs:
                self._flush_spill()

    def collector(self) -> Tuple[Callable[[bytes], None], Callable[[KeyValue], None]]:
        """File buckets must observe every record for spill-order and
        flush bookkeeping, so the fast path degrades to per-pair
        :meth:`addpair` closures (same lockstep contract)."""
        pending: List[bytes] = []
        addpair = self.addpair

        def add_pair(pair: KeyValue) -> None:
            addpair(pair, pending.pop())

        return pending.append, add_pair

    def extend_records(self, records: List[Record]) -> None:
        if records:
            if self._spill_sorted:
                batch_keys = [record[0] for record in records]
                if (
                    self._last_spill_key is not None
                    and self._last_spill_key > batch_keys[0]
                ) or not all(
                    map(le, batch_keys, itertools.islice(batch_keys, 1, None))
                ):
                    self._spill_sorted = False
            self._last_spill_key = records[-1][0]
        if self._retain:
            super().extend_records(records)
        self._spill_buffer.extend(records)
        if len(self._spill_buffer) >= self.spill_buffer_pairs:
            self._flush_spill()

    def extend_columns(self, keys: List[bytes], pairs: List[KeyValue]) -> None:
        """File buckets route the column form through
        :meth:`extend_records` so spill-order tracking and buffered
        flushing see every record."""
        self.extend_records(list(zip(keys, pairs)))

    def _flush_spill(self) -> None:
        if self._spill_buffer:
            batch = self._spill_buffer
            self._spill_buffer = []
            self._write_batch(batch)

    def _write_batch(self, records: List[Record]) -> None:
        writer = self.open_writer()
        writerecords = getattr(writer, "writerecords", None)
        if writerecords is not None:
            writerecords(records)
        else:
            writer.writepairs([record[1] for record in records])

    def flush(self) -> None:
        """Push buffered pairs into the file without closing it."""
        self._flush_spill()
        if self._writer is not None:
            self._writer.finish()

    def close_writer(self) -> None:
        self._flush_spill()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self.url_sorted = self._spill_sorted

    def readback(self) -> List[KeyValue]:
        """Re-read pairs from the backing file (independent of memory)."""
        from repro.io import urls as url_io

        if self._writer is not None or self._spill_buffer:
            self.flush()
        return url_io.fetch_pairs(
            "file:" + self.path,
            key_serializer=self.key_serializer,
            value_serializer=self.value_serializer,
        )


class SidecarFileBucket(FileBucket):
    """A user-facing output file plus a lossless ``.mrsb`` sidecar.

    Final job output is often written in a human-readable but lossy
    format (text).  When the master later needs the authoritative pairs
    (programmatic result access, cross-implementation equivalence), it
    reads the sidecar; the user keeps their text file.  The bucket's
    URL points at the sidecar.  Both files get the same buffered batch
    writes.
    """

    def __init__(
        self,
        user_path: str,
        source: int = 0,
        split: int = 0,
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
        retain: bool = True,
        spill_buffer_pairs: Optional[int] = None,
    ):
        sidecar_path = os.path.join(
            os.path.dirname(user_path), "." + os.path.basename(user_path) + ".mrsb"
        )
        super().__init__(
            sidecar_path,
            source=source,
            split=split,
            key_serializer=key_serializer,
            value_serializer=value_serializer,
            retain=retain,
            spill_buffer_pairs=spill_buffer_pairs,
        )
        self.user_path = os.path.abspath(user_path)
        self._user_writer = None

    def open_writer(self):
        from repro.io import formats

        writer = super().open_writer()
        if self._user_writer is None:
            os.makedirs(os.path.dirname(self.user_path) or ".", exist_ok=True)
            writer_cls = formats.writer_for(self.user_path)
            self._user_writer = writer_cls(open(self.user_path, "wb"))
        return writer

    def _write_batch(self, records: List[Record]) -> None:
        super()._write_batch(records)
        self._user_writer.writepairs([record[1] for record in records])

    def close_writer(self) -> None:
        super().close_writer()
        if self._user_writer is not None:
            self._user_writer.close()
            self._user_writer = None


def bucket_sorted_records(
    bucket: Bucket,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[Record]:
    """A bucket's contents as a key-sorted decorated record stream.

    Resident buckets sort in place and stream their cached records.  A
    URL-only bucket (pairs living in a file) is read through the format
    layer: if its persisted copy is known to be key-sorted
    (``url_sorted``), records stream straight off the file with O(1)
    memory; otherwise the records are materialized and sorted once,
    with each key encoded exactly once.
    """
    if len(bucket) or not bucket.url:
        return bucket.sorted_records()
    ks = key_serializer if key_serializer is not None else bucket.key_serializer
    vs = value_serializer if value_serializer is not None else bucket.value_serializer
    return sorted_records_from_url(bucket.url, bucket.url_sorted, ks, vs)


def sorted_records_from_url(
    url: str,
    url_sorted: bool,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[Record]:
    """Key-sorted decorated records behind a bucket URL.

    The streaming core of :func:`bucket_sorted_records`, also used by
    the transfer plane's prefetch threads
    (:class:`repro.comm.transfer.Prefetcher`): a persisted copy known
    to be key-sorted streams straight off the file/socket with O(1)
    memory; otherwise the records are materialized and sorted once,
    with each key encoded exactly once by the format layer.
    """
    from repro.io import urls as url_io

    if url_sorted:
        return url_io.iter_records(url, key_serializer, value_serializer)
    records = list(url_io.iter_records(url, key_serializer, value_serializer))
    records.sort(key=record_key)
    return iter(records)


def merge_sorted_records(streams: List[Iterator[Record]]) -> Iterator[Record]:
    """Merge key-sorted record streams with a heap.

    Comparison happens on the cached key bytes (``itemgetter`` runs at
    C speed), so merging never re-encodes a key and never compares raw
    pairs — mixed-type key sets merge fine.
    """
    return heapq.merge(*streams, key=record_key)


#: Window read size for the native fused merge (per input stream).
_MERGE_READ_CHUNK = 1 << 20


def native_merge_plan(buckets: Iterable[Bucket]) -> Optional[List[str]]:
    """The file URLs for a fused native merge, or ``None``.

    The fused merge (:func:`native_merged_groups`) reads framed records
    straight off bucket files and merges them on *wire* key bytes, so
    it is only sound when every input bucket is URL-only, local, known
    key-sorted, binary-framed, and uses a canonical key serializer (a
    constant tag prefix means wire order equals canonical order).  Any
    bucket failing a condition sends the whole merge down the pure
    streaming path.
    """
    if _nk.get() is None:
        return None
    from repro.io import formats
    from repro.io.serializers import get_serializer

    urls: List[str] = []
    key_name = value_name = None
    for bucket in buckets:
        if len(bucket) or not bucket.url or not bucket.url_sorted:
            return None
        if not bucket.url.startswith("file:"):
            return None
        if formats.reader_for(bucket.url) is not formats.BinReader:
            return None
        if urls:
            if (
                bucket.key_serializer != key_name
                or bucket.value_serializer != value_name
            ):
                return None
        else:
            key_name = bucket.key_serializer
            value_name = bucket.value_serializer
        urls.append(bucket.url)
    if not urls:
        return None
    try:
        key_s = get_serializer(key_name)
        value_s = get_serializer(value_name)
    except Exception:
        return None
    if getattr(key_s, "canonical_key_tag", None) is None:
        return None
    from repro.io.serializers import loads_view_for

    if loads_view_for(value_s) is not None:
        # Zero-copy value serializers (numpy blocks) decode straight
        # out of an mmap on the streaming path; the fused C merge would
        # copy every value through its read window instead.  Few keys /
        # huge values is exactly the shape where the window copy costs
        # more than the merge saves.
        return None
    return urls


def native_merged_groups(
    urls: List[str],
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[Tuple[bytes, Any, List[Any]]]:
    """Merge key-sorted local ``.mrsb`` files into key groups, natively.

    Yields ``(keybytes, key, values_list)`` in exactly the order — and
    with exactly the group boundaries — of ``group_sorted_records(
    merge_sorted_records(streams))`` over the same files: the C picker
    replays ``heapq.merge`` (ties to the lowest stream index) over
    windowed views of each file, and each group's key is decoded once.
    Callers must pre-qualify the inputs with :func:`native_merge_plan`.
    """
    from repro.io import formats
    from repro.io.serializers import get_serializer

    native = _nk.get()
    key_s = get_serializer(key_serializer)
    value_s = get_serializer(value_serializer)
    tag = key_s.canonical_key_tag
    key_loads = key_s.loads
    value_loads = value_s.loads

    k = len(urls)
    files: List[Any] = []
    try:
        for url in urls:
            fileobj = open(url[len("file:"):], "rb")
            files.append(fileobj)
            magic = fileobj.read(len(formats._BIN_MAGIC))
            if magic != formats._BIN_MAGIC:
                raise ValueError(f"not a BinWriter file (magic={magic!r})")

        picker = _nk.MergePicker(native, k)
        windows = [b""] * k
        triples: List[Any] = [None] * k
        counts = [0] * k
        cursor = [0] * k
        tails = [b""] * k
        eof = [False] * k
        done = [False] * k

        def refill(s: int) -> None:
            data = tails[s]
            if not eof[s]:
                chunk = files[s].read(_MERGE_READ_CHUNK)
                if chunk:
                    data = data + chunk if data else chunk
                else:
                    eof[s] = True
            count, tri = native.scan(data)
            while count == 0 and not eof[s]:
                # A record larger than the window: keep widening.
                chunk = files[s].read(_MERGE_READ_CHUNK)
                if not chunk:
                    eof[s] = True
                    break
                data += chunk
                count, tri = native.scan(data)
            consumed = tri[3 * count - 1] if count else 0
            tails[s] = data[consumed:]
            if eof[s]:
                if tails[s]:
                    raise ValueError("truncated record")
                done[s] = True
                picker.mark_done(s)
            windows[s] = data
            triples[s] = tri
            counts[s] = count
            cursor[s] = 0
            picker.set_window(s, data, tri, count)

        for s in range(k):
            refill(s)

        prev_key: Optional[bytes] = None
        cur_kb: Optional[bytes] = None
        cur_key: Any = None
        cur_values: Optional[List[Any]] = None
        while True:
            npicks, srcs, newgrp = picker.pick(prev_key)
            for i in range(npicks):
                s = srcs[i]
                idx = cursor[s]
                cursor[s] = idx + 1
                tri = triples[s]
                vstart = tri[3 * idx + 1]
                window = windows[s]
                value = value_loads(window[vstart:tri[3 * idx + 2]])
                if newgrp[i]:
                    if cur_values is not None:
                        yield cur_kb, cur_key, cur_values
                    kb = window[tri[3 * idx]:vstart]
                    cur_kb = tag + kb
                    cur_key = key_loads(kb)
                    cur_values = [value]
                else:
                    cur_values.append(value)
            if npicks:
                # Every record in the open group shares its key, so the
                # last emitted wire key is the group key minus the tag.
                prev_key = cur_kb[len(tag):]
            refilled = False
            for s in range(k):
                if cursor[s] >= counts[s] and not done[s]:
                    refill(s)
                    refilled = True
            if npicks == 0 and not refilled:
                break
        if cur_values is not None:
            yield cur_kb, cur_key, cur_values
    finally:
        for fileobj in files:
            fileobj.close()


def merge_sorted_buckets(
    buckets: Iterable[Bucket],
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> Iterator[KeyValue]:
    """Merge several buckets into one key-sorted pair stream.

    The same merge a reduce task performs over the map-output buckets
    it fetches from every map source; URL-only buckets stream from
    their files (see :func:`bucket_sorted_records`).
    """
    streams = [
        bucket_sorted_records(bucket, key_serializer, value_serializer)
        for bucket in buckets
    ]
    return (pair for _, pair in merge_sorted_records(streams))
