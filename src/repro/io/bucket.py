"""Buckets: the unit of intermediate data in a MapReduce job.

A dataset is a grid of buckets addressed by ``(source, split)``:
``source`` is the index of the task that produced the data and
``split`` is the partition it belongs to.  A reduce task for split *s*
consumes bucket ``(source, s)`` for every source.

Buckets collect key-value pairs in memory; they can be persisted to a
file with any registered writer format (section IV-B: "the writer opens
and writes a file and then sends the master the corresponding URL") and
re-read later, possibly by a different process or over HTTP.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.util.hashing import key_to_bytes

KeyValue = Tuple[Any, Any]


def sort_key(pair: KeyValue) -> bytes:
    """Canonical sort key: stable byte encoding of the record's key.

    Sorting by encoded bytes (rather than the raw key) makes grouping
    well-defined even for key sets that are not mutually comparable in
    Python 3 (e.g. mixed int/str keys).
    """
    return key_to_bytes(pair[0])


def group_sorted(pairs: Iterable[KeyValue]) -> Iterator[Tuple[Any, Iterator[Any]]]:
    """Group a key-sorted pair stream into ``(key, values)`` items.

    The values iterator is lazy and must be consumed before advancing,
    exactly like the iterators handed to a reduce function.
    """
    for _, group in itertools.groupby(pairs, key=sort_key):
        first_key, first_value = next(group)

        def values(first_value=first_value, group=group) -> Iterator[Any]:
            yield first_value
            for _, value in group:
                yield value

        yield first_key, values()


class Bucket:
    """An in-memory collection of key-value pairs.

    Parameters
    ----------
    source, split:
        Grid coordinates within the owning dataset.
    url:
        Where a persisted copy of this bucket lives (``file:`` path or
        ``http://`` address), if any.
    """

    def __init__(self, source: int = 0, split: int = 0, url: Optional[str] = None):
        self.source = source
        self.split = split
        self.url = url
        self._pairs: List[KeyValue] = []
        self._sorted = True

    def addpair(self, pair: KeyValue) -> None:
        if self._pairs and self._sorted:
            self._sorted = sort_key(self._pairs[-1]) <= sort_key(pair)
        self._pairs.append(pair)

    def collect(self, pairs: Iterable[KeyValue]) -> None:
        for pair in pairs:
            self.addpair(pair)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[KeyValue]:
        return iter(self._pairs)

    def __getitem__(self, index: int) -> KeyValue:
        return self._pairs[index]

    def sort(self) -> None:
        """Sort pairs by canonical key encoding (stable)."""
        if not self._sorted:
            self._pairs.sort(key=sort_key)
            self._sorted = True

    @property
    def is_sorted(self) -> bool:
        return self._sorted

    def sorted_pairs(self) -> List[KeyValue]:
        self.sort()
        return self._pairs

    def grouped(self) -> Iterator[Tuple[Any, Iterator[Any]]]:
        """Yield ``(key, values)`` groups in key order."""
        return group_sorted(self.sorted_pairs())

    def clean(self) -> None:
        """Drop in-memory pairs (keep the url so data can be re-read)."""
        self._pairs = []
        self._sorted = True

    def __repr__(self) -> str:
        return (
            f"Bucket(source={self.source}, split={self.split}, "
            f"len={len(self._pairs)}, url={self.url!r})"
        )


class FileBucket(Bucket):
    """A bucket whose authoritative contents live in a file.

    Appending goes through an open writer; reading back re-opens the
    file with the format implied by its extension.
    """

    def __init__(
        self,
        path: str,
        source: int = 0,
        split: int = 0,
        writer_cls: Optional[type] = None,
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
    ):
        super().__init__(source=source, split=split, url="file:" + os.path.abspath(path))
        self.path = os.path.abspath(path)
        self._writer = None
        self._writer_cls = writer_cls
        #: Registered serializer *names* (binary format only).
        self.key_serializer = key_serializer
        self.value_serializer = value_serializer

    def open_writer(self):
        from repro.io import formats
        from repro.io.serializers import get_serializer

        if self._writer is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            writer_cls = self._writer_cls or formats.writer_for(self.path)
            fileobj = open(self.path, "wb")
            if issubclass(writer_cls, formats.BinWriter) and (
                self.key_serializer or self.value_serializer
            ):
                self._writer = writer_cls(
                    fileobj,
                    key_serializer=get_serializer(self.key_serializer),
                    value_serializer=get_serializer(self.value_serializer),
                )
            else:
                self._writer = writer_cls(fileobj)
        return self._writer

    def addpair(self, pair: KeyValue) -> None:
        super().addpair(pair)
        self.open_writer().writepair(pair)

    def close_writer(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def readback(self) -> List[KeyValue]:
        """Re-read pairs from the backing file (independent of memory)."""
        from repro.io import urls as url_io

        return url_io.fetch_pairs(
            "file:" + self.path,
            key_serializer=self.key_serializer,
            value_serializer=self.value_serializer,
        )


class SidecarFileBucket(FileBucket):
    """A user-facing output file plus a lossless ``.mrsb`` sidecar.

    Final job output is often written in a human-readable but lossy
    format (text).  When the master later needs the authoritative pairs
    (programmatic result access, cross-implementation equivalence), it
    reads the sidecar; the user keeps their text file.  The bucket's
    URL points at the sidecar.
    """

    def __init__(
        self,
        user_path: str,
        source: int = 0,
        split: int = 0,
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
    ):
        sidecar_path = os.path.join(
            os.path.dirname(user_path), "." + os.path.basename(user_path) + ".mrsb"
        )
        super().__init__(
            sidecar_path,
            source=source,
            split=split,
            key_serializer=key_serializer,
            value_serializer=value_serializer,
        )
        self.user_path = os.path.abspath(user_path)
        self._user_writer = None

    def open_writer(self):
        from repro.io import formats

        writer = super().open_writer()
        if self._user_writer is None:
            os.makedirs(os.path.dirname(self.user_path) or ".", exist_ok=True)
            writer_cls = formats.writer_for(self.user_path)
            self._user_writer = writer_cls(open(self.user_path, "wb"))
        return writer

    def addpair(self, pair: KeyValue) -> None:
        super().addpair(pair)
        self._user_writer.writepair(pair)

    def close_writer(self) -> None:
        super().close_writer()
        if self._user_writer is not None:
            self._user_writer.close()
            self._user_writer = None


def merge_sorted_buckets(buckets: Iterable[Bucket]) -> Iterator[KeyValue]:
    """Merge several buckets into one key-sorted pair stream.

    Each bucket is sorted individually and the streams are merged with a
    heap — the same merge a reduce task performs over the map-output
    buckets it fetches from every map source.
    """
    streams = [bucket.sorted_pairs() for bucket in buckets]
    return heapq.merge(*streams, key=sort_key)
