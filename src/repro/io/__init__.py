"""I/O substrate: buckets, record formats, partitioners, serializers.

Mirrors section IV-B of the paper: intermediate data lives in *buckets*
addressed by ``(source, split)``; buckets may be held in memory, written
to any POSIX filesystem, or served between slaves by a built-in HTTP
server (see :mod:`repro.comm.dataserver`).
"""

from repro.io.bucket import Bucket, FileBucket
from repro.io.partition import hash_partition, mod_partition, first_byte_partition
from repro.io.serializers import (
    Serializer,
    PickleSerializer,
    RawSerializer,
    StrSerializer,
    IntSerializer,
    get_serializer,
)
from repro.io.formats import (
    TextReader,
    TextWriter,
    BinReader,
    BinWriter,
    HexReader,
    HexWriter,
    ZipReader,
    reader_for,
    writer_for,
)

__all__ = [
    "Bucket",
    "FileBucket",
    "hash_partition",
    "mod_partition",
    "first_byte_partition",
    "Serializer",
    "PickleSerializer",
    "RawSerializer",
    "StrSerializer",
    "IntSerializer",
    "get_serializer",
    "TextReader",
    "TextWriter",
    "BinReader",
    "BinWriter",
    "HexReader",
    "HexWriter",
    "ZipReader",
    "reader_for",
    "writer_for",
]
