"""Partition functions.

A partition function maps ``(key, serialized_key, n_splits) -> split``.
Both the plain key and its serialized form are offered because some
partitioners (e.g. ``mod_partition``) want the numeric key while the
default hash partitioner wants stable bytes.

The contract required by the framework:

* deterministic across processes (no dependence on ``PYTHONHASHSEED``),
* output in ``range(n_splits)`` for every key,
* equal keys always land in the same split.
"""

from __future__ import annotations

from typing import Any

from repro.util.hashing import stable_hash


def hash_partition(key: Any, n_splits: int) -> int:
    """Default partitioner: stable hash of the key, modulo splits."""
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    if n_splits == 1:
        return 0
    return stable_hash(key) % n_splits


def mod_partition(key: Any, n_splits: int) -> int:
    """Partition integer keys by value modulo splits.

    Useful for iterative numeric programs (e.g. PSO particle ids) where
    the programmer wants task *i* of every iteration to hold the same
    keys, maximising the benefit of the scheduler's iteration affinity.
    """
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    return int(key) % n_splits


def first_byte_partition(key: Any, n_splits: int) -> int:
    """Partition by the first byte of the key's UTF-8/byte form.

    Produces runs of lexicographically adjacent keys in the same split,
    which gives globally sorted output when splits are concatenated in
    order (for ASCII-dominated key sets).
    """
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    else:
        data = str(key).encode("utf-8")
    first = data[0] if data else 0
    return first * n_splits // 256
