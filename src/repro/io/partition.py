"""Partition functions.

A partition function maps ``(key, n_splits) -> split`` — the same
signature whether it is a module-level function or a program method
(the framework resolves the operation's ``parter_name`` on the program
instance and calls it per emitted key).

The contract required by the framework:

* deterministic across processes (no dependence on ``PYTHONHASHSEED``),
* output in ``range(n_splits)`` for every key,
* equal keys always land in the same split.

Encode-once fast path: a partitioner may expose a ``partition_bytes``
attribute, a function ``(keybytes, n_splits) -> split`` that must agree
with the partitioner for every key, where ``keybytes`` is the key's
canonical encoding (:func:`repro.util.hashing.key_to_bytes`).  The emit
loop computes those bytes once per record anyway (for sort and merge),
so a byte-level partitioner avoids a second encode per pair.  The
default hash partitioner provides it; partitioners that need the live
key (``mod_partition``) simply don't.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.util.hashing import _MASK, _MIX, _crc32, key_to_bytes, stable_hash


def hash_partition(key: Any, n_splits: int) -> int:
    """Default partitioner: stable hash of the key, modulo splits."""
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    if n_splits == 1:
        return 0
    return stable_hash(key) % n_splits


def hash_partition_bytes(keybytes: bytes, n_splits: int) -> int:
    """``hash_partition`` on pre-encoded canonical key bytes.

    The hash is ``stable_hash_bytes`` inlined (this runs once per
    emitted record, so the extra call is worth shaving).
    """
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    if n_splits == 1:
        return 0
    return ((_crc32(keybytes) * _MIX) & _MASK) % n_splits


hash_partition.partition_bytes = hash_partition_bytes


def hash_partition_splits(keys: Sequence[bytes], n_splits: int) -> Sequence[int]:
    """Split ids for a whole batch of canonical key bytes.

    Semantically ``[hash_partition_bytes(kb, n_splits) for kb in keys]``
    — and that is the fallback — but with the native shuffle kernels
    loaded (:mod:`repro.native.kernels`) the batch crosses into C once,
    hashing and placing every key in a single call.
    """
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    if n_splits == 1:
        return [0] * len(keys)
    if len(keys) >= _NATIVE_MIN_BATCH:
        from repro.native import kernels as native_kernels

        native = native_kernels.get()
        if native is not None:
            return native.splits_for(keys, n_splits)
    mix, mask, crc = _MIX, _MASK, _crc32
    return [((crc(kb) * mix) & mask) % n_splits for kb in keys]


#: Batches below this size stay pure Python (ctypes overhead dominates).
_NATIVE_MIN_BATCH = 32


def route(
    key: Any,
    n_splits: int,
    _crc32=_crc32,
    _MIX=_MIX,
    _MASK=_MASK,
    _key_to_bytes=key_to_bytes,
) -> Tuple[bytes, int]:
    """Encode ``key`` once and place it: ``(keybytes, split)``.

    The fused emit-loop form of :func:`repro.util.hashing.key_to_bytes`
    followed by :func:`hash_partition` — one Python call per emitted
    record instead of two, with the string case (the overwhelmingly
    common key type) encoded inline.  Agrees with ``hash_partition`` /
    ``hash_partition_bytes`` for every key by construction.  The
    trailing defaults bind the hash constants as locals; they are not
    part of the signature.
    """
    if type(key) is str:
        keybytes = b"s:" + key.encode("utf-8")
    else:
        keybytes = _key_to_bytes(key)
    if n_splits <= 1:
        if n_splits < 1:
            raise ValueError(f"n_splits must be positive, got {n_splits}")
        return keybytes, 0
    return keybytes, ((_crc32(keybytes) * _MIX) & _MASK) % n_splits


def mod_partition(key: Any, n_splits: int) -> int:
    """Partition integer keys by value modulo splits.

    Useful for iterative numeric programs (e.g. PSO particle ids) where
    the programmer wants task *i* of every iteration to hold the same
    keys, maximising the benefit of the scheduler's iteration affinity.
    """
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    return int(key) % n_splits


def first_byte_partition(key: Any, n_splits: int) -> int:
    """Partition by the first byte of the key's UTF-8/byte form.

    Produces runs of lexicographically adjacent keys in the same split,
    which gives globally sorted output when splits are concatenated in
    order (for ASCII-dominated key sets).
    """
    if n_splits <= 0:
        raise ValueError(f"n_splits must be positive, got {n_splits}")
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    else:
        data = str(key).encode("utf-8")
    first = data[0] if data else 0
    return first * n_splits // 256
