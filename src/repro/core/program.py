"""Program classes: the user-facing API (Program 1 of the paper).

The simplest MapReduce program subclasses :class:`MapReduce` and
implements only ``map`` and ``reduce``::

    import repro as mrs

    class WordCount(mrs.MapReduce):
        def map(self, key, value):
            for word in value.split():
                yield (word, 1)

        def reduce(self, key, values):
            yield sum(values)

    if __name__ == '__main__':
        mrs.main(WordCount)

Everything else — input handling, output writing, the run loop, the
partitioner, per-task random streams — has a reasonable overridable
default, "to avoid any unnecessary complexity" (section IV).
"""

from __future__ import annotations

import glob
import os
import random
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.core import random_streams
from repro.core.job import Job
from repro.io.partition import hash_partition

KeyValue = Tuple[Any, Any]


class MapReduce:
    """Base program class with reasonable defaults (section IV-A)."""

    def __init__(self, opts: Any, args: List[str]):
        self.opts = opts
        self.args = list(args)
        #: Filled in by the default ``run`` so callers can read results
        #: programmatically after the job finishes.
        self.output_data = None

    # -- methods the user typically overrides ---------------------------

    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        """Emit zero or more (key, value) pairs for one input record."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement map() or override run()"
        )

    def reduce(self, key: Any, values: Iterator[Any]) -> Iterator[Any]:
        """Emit zero or more output values for one key group."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement reduce() or override run()"
        )

    # A program may set ``combine = None`` explicitly or define a
    # method; the default ``run`` uses it when present.
    combine: Optional[Any] = None

    def partition(self, key: Any, n_splits: int) -> int:
        """Default partitioner: stable hash of the key."""
        return hash_partition(key, n_splits)

    # Encode-once fast path: bound-method attribute access falls
    # through to the function, so the emit loop can partition on the
    # key bytes it already computed (see repro.io.partition).  A
    # subclass that overrides ``partition`` loses the attribute and is
    # called with the live key, as its custom logic requires.
    partition.partition_bytes = hash_partition.partition_bytes

    # -- input / output defaults -----------------------------------------

    def input_data(self, job: Job):
        """Build the input dataset from positional arguments.

        The default treats every positional argument but the last as an
        input file, directory (walked recursively — this is what makes
        the ragged Gutenberg tree trivial to ingest), or glob pattern.
        """
        if len(self.args) < 2:
            raise ValueError(
                "usage: program [options] input [input...] output_dir"
            )
        inputs = self.args[:-1]
        return job.file_data(expand_input_paths(inputs))

    @property
    def output_dir(self) -> Optional[str]:
        """Where the default ``run`` writes results (last positional arg)."""
        if len(self.args) >= 1:
            return self.args[-1]
        return None

    #: Output format extension for the default run (text by default).
    output_format = "txt"

    def run(self, job: Job) -> int:
        """Default driver: input -> map -> reduce -> output files."""
        source = self.input_data(job)
        combiner = self.combine if callable(self.combine) else None
        intermediate = job.map_data(
            source,
            self.map,
            splits=getattr(self.opts, "reduce_tasks", None) or None,
            combiner=combiner,
        )
        output = job.reduce_data(
            intermediate,
            self.reduce,
            splits=getattr(self.opts, "reduce_tasks", None) or None,
            outdir=self.output_dir,
            format=self.output_format,
        )
        job.wait(output)
        self.output_data = output
        return 0

    def bypass(self) -> int:
        """Entry point for the bypass implementation (section IV-A).

        Override to share code between a plain serial version of the
        program and its MapReduce formulation.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a bypass implementation"
        )

    # -- reproducible randomness -------------------------------------------

    def random(self, *offsets: int) -> random.Random:
        """Return an independent random stream for this offset tuple.

        The program-wide seed (``--mrs-seed``) is the first offset, so
        two runs with the same seed and the same per-task offsets draw
        identical sequences in any implementation, and any change to an
        offset yields an independent stream.
        """
        seed = getattr(self.opts, "seed", 0) or 0
        return random_streams.random_stream(seed, *offsets)

    def numpy_random(self, *offsets: int):
        """NumPy counterpart of :meth:`random` for array-heavy programs."""
        seed = getattr(self.opts, "seed", 0) or 0
        return random_streams.numpy_stream(seed, *offsets)

    # -- hooks -------------------------------------------------------------

    @classmethod
    def update_parser(cls, parser):
        """Add program-specific command-line options; returns the parser."""
        return parser


class IterativeMR(MapReduce):
    """Producer/consumer driver for iterative MapReduce programs.

    Subclasses implement:

    * ``producer(job) -> list[Dataset]`` — queue one or more operations
      and return the datasets whose completion the driver should watch.
    * ``consumer(dataset) -> bool`` — handle one completed dataset;
      return False to stop iterating.

    The driver keeps up to ``iterative_qmax`` datasets in flight, which
    is how a convergence check can overlap the next iteration's
    computation (section IV-A).
    """

    #: Maximum number of watched datasets in flight.
    iterative_qmax = 2

    def producer(self, job: Job) -> List[Any]:
        raise NotImplementedError

    def consumer(self, dataset: Any) -> bool:
        raise NotImplementedError

    def run(self, job: Job) -> int:
        running = True
        pending: List[Any] = []
        while True:
            # Keep the pipeline primed.
            while running and len(pending) < self.iterative_qmax:
                produced = self.producer(job)
                if not produced:
                    running = False
                    break
                pending.extend(produced)
            if not pending:
                break
            done = job.wait(*pending)
            for dataset in done:
                pending.remove(dataset)
                keep_going = self.consumer(dataset)
                if not keep_going:
                    running = False
        return 0


def expand_input_paths(inputs: Iterable[str]) -> List[str]:
    """Expand files, directories (recursive), and glob patterns.

    Ordering is deterministic: inputs stay in argument order, directory
    walks and globs are sorted.
    """
    out: List[str] = []
    for item in inputs:
        if "://" in item or item.startswith("file:"):
            out.append(item)
        elif os.path.isdir(item):
            for dirpath, dirnames, filenames in os.walk(item):
                dirnames.sort()
                for name in sorted(filenames):
                    out.append(os.path.join(dirpath, name))
        elif os.path.exists(item):
            out.append(item)
        else:
            matches = sorted(glob.glob(item))
            if not matches:
                raise FileNotFoundError(f"input {item!r} matched no files")
            out.extend(matches)
    return out
