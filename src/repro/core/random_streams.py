"""Independent pseudorandom streams (section IV-A).

Nondeterministic results make debugging difficult and testing
impossible, but a single fixed seed would make every map/reduce task
draw the same sequence.  Mrs solves this with a ``random`` method that
derives a *unique* generator from any combination of integer offsets
(program seed, dataset id, task index, particle id, ...).

The construction packs each 64-bit offset into a single large integer
seed.  Python's Mersenne Twister seeds from arbitrarily large integers
by folding them into the full 19968-bit state, so "around 300 arguments
that are each 64-bit integers" (the paper's figure: 312 sixty-four bit
words fill the state) map injectively onto distinct states.
"""

from __future__ import annotations

import random
from typing import Iterable

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1

#: The paper's bound on distinct offsets, from the MT19937 state size:
#: 624 32-bit words = 312 64-bit words.
MAX_OFFSETS = 312


def stream_seed(*offsets: int) -> int:
    """Pack integer offsets into one big deterministic seed.

    The packing is injective for up to :data:`MAX_OFFSETS` offsets: a
    leading 1 bit keeps ``(0,)`` distinct from ``(0, 0)``, and each
    offset occupies its own 64-bit lane.  Negative offsets are folded
    into their two's-complement 64-bit representation.

    Raises
    ------
    TypeError
        If any offset is not an integer (bools are rejected too: a bool
        offset is almost always a bug).
    ValueError
        If an offset needs more than 64 bits.
    """
    seed = 1
    for i, offset in enumerate(offsets):
        if isinstance(offset, bool) or not isinstance(offset, int):
            raise TypeError(
                f"offset {i} must be an int, got {type(offset).__name__}"
            )
        if not (-(1 << 63) <= offset < (1 << 64)):
            raise ValueError(f"offset {i} ({offset}) does not fit in 64 bits")
        seed = (seed << _WORD_BITS) | (offset & _WORD_MASK)
    return seed


def random_stream(*offsets: int) -> random.Random:
    """Return a :class:`random.Random` unique to this offset tuple."""
    return random.Random(stream_seed(*offsets))


def numpy_stream(*offsets: int):
    """Return a NumPy ``Generator`` unique to this offset tuple.

    Kept out of the framework's stdlib-only core path; only application
    code (PSO, datagen) imports it.
    """
    import numpy as np

    # SeedSequence accepts arbitrary entropy ints; reuse the same
    # injective packing so numpy and stdlib streams share an offset
    # namespace without sharing values.
    return np.random.default_rng(np.random.SeedSequence(stream_seed(*offsets)))


def spawn_seeds(base: int, count: int) -> Iterable[int]:
    """Yield ``count`` child seeds derived from ``base``.

    Convenience for workloads that need one seed per task up front.
    """
    for i in range(count):
        yield stream_seed(base, i)
