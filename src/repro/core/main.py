"""Program entry points.

``main(ProgramClass)`` is the one call a Mrs program makes (Program 1):
it parses options, instantiates the program, and dispatches to the
implementation selected with ``--mrs``.  ``run_program`` is the
programmatic equivalent used by tests, examples, and benchmarks.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, List, Optional, Sequence

from repro.core import options as options_mod
from repro.core.job import Job

logger = logging.getLogger("repro")


def _configure_native(opts) -> None:
    """Apply ``--mrs-native`` and ``--mrs-zero-copy`` before any
    shuffle code runs.

    Setting a mode also mirrors it into its environment variable
    (``MRS_NATIVE`` / ``MRS_ZERO_COPY``), so worker processes spawned
    later (multiprocess pool, slaves launched with the job's
    environment) resolve the same path.
    """
    from repro.io import serializers
    from repro.native import kernels

    kernels.configure_from_opts(opts)
    serializers.configure_zero_copy_from_opts(opts)


def _configure_logging(opts) -> None:
    level = logging.WARNING
    if getattr(opts, "debug", False):
        level = logging.DEBUG
    elif getattr(opts, "verbose", False):
        level = logging.INFO
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )


def main(program_class: Any, argv: Optional[Sequence[str]] = None) -> int:
    """Parse the command line and run ``program_class``.

    Returns the program's exit status; ``mrs.main`` in the paper.  Call
    as the last line of a program script::

        if __name__ == '__main__':
            mrs.main(WordCount)
    """
    opts, args = options_mod.parse_options(program_class, argv)
    _configure_logging(opts)
    _configure_native(opts)
    impl = opts.mrs_impl

    if impl == "slave":
        # A slave never runs the program's run(); it serves tasks.
        from repro.runtime.slave import run_slave

        return run_slave(program_class, opts, args)

    if impl == "serve":
        # Persistent job server: the program class is registered as a
        # submittable program; run() is driven per submission.
        from repro.service.server import run_serve

        return run_serve(program_class, opts, args)

    program = program_class(opts, args)

    if impl == "bypass":
        from repro.runtime.bypass import run_bypass

        return run_bypass(program)

    from repro.util.signals import GracefulExit, install_graceful_exit

    backend = _make_backend(impl, program, opts, args)
    ticker = _maybe_start_ticker(backend, opts)
    status_server = _maybe_start_status_server(backend, opts)
    previous_signals = install_graceful_exit()
    try:
        job = Job(backend, program)
        try:
            status = int(program.run(job) or 0)
        except GracefulExit as exc:
            # First SIGTERM/SIGINT: flush observability outputs and
            # shut the cluster down cleanly (the finally below), then
            # report success — the operator asked us to stop.
            logger.warning(
                "received signal %d; shutting down gracefully", exc.signum
            )
            _finalize_run(backend, opts)
            return 0
        _finalize_run(backend, opts)
        return status
    finally:
        from repro.util.signals import restore

        restore(previous_signals)
        if ticker is not None:
            ticker.stop()
        if status_server is not None:
            status_server.shutdown()
        backend.close()
        _close_transfer_pool()


def _close_transfer_pool() -> None:
    """Close the process-global pooled transfer connections (graceful
    shutdown: no half-open keep-alive sockets left behind)."""
    from repro.comm import transfer

    try:
        transfer.get_pool().close()
    except Exception:  # pragma: no cover - best-effort cleanup
        pass


def _maybe_dump_metrics(backend: Any, opts: Any) -> Optional[str]:
    """Write the backend's metrics report if --mrs-metrics-json was set."""
    path = getattr(opts, "metrics_json", None)
    if not path:
        return None
    from repro.observability import export

    report = backend.metrics()
    export.write_json(report, path)
    logger.info("metrics report written to %s", path)
    return path


def _finalize_run(backend: Any, opts: Any) -> None:
    """End-of-job observability outputs: the metrics report
    (--mrs-metrics-json), the Perfetto timeline (--mrs-trace), and the
    event-log flush (--mrs-event-log)."""
    _maybe_dump_metrics(backend, opts)
    events = getattr(
        getattr(backend, "observability", None), "events", None
    )
    if events is None:
        return
    trace_path = getattr(opts, "trace", None)
    if trace_path:
        from repro.observability import timeline

        timeline.write_trace(
            timeline.trace_from_events(events.snapshot()), trace_path
        )
        logger.info("timeline trace written to %s", trace_path)
    events.close()


def _maybe_start_ticker(backend: Any, opts: Any) -> Optional[Any]:
    """Start the --mrs-progress stderr ticker, if requested."""
    if not getattr(opts, "progress", False):
        return None
    from repro.observability.progress import ProgressTicker

    ticker = ProgressTicker(backend)
    ticker.start()
    return ticker


def _maybe_start_status_server(backend: Any, opts: Any) -> Optional[Any]:
    """Start the --mrs-status-http JSON endpoint, if requested."""
    port = getattr(opts, "status_http", None)
    if port is None:
        return None
    from repro.comm.dataserver import StatusServer

    server = StatusServer(
        backend, host=getattr(opts, "host", None) or "127.0.0.1", port=port
    )
    logger.info("status endpoint at %s", server.url)
    return server


def _make_backend(impl: str, program: Any, opts, args: Sequence[str] = ()) -> Any:
    if impl == "serial":
        from repro.runtime.serial import SerialBackend

        return SerialBackend(program)
    if impl == "mockparallel":
        from repro.runtime.mockparallel import MockParallelBackend

        return MockParallelBackend(
            program, tmpdir=getattr(opts, "tmpdir", None), opts=opts
        )
    if impl == "multiprocess":
        from repro.runtime.multiprocess import MultiprocessBackend

        return MultiprocessBackend(program, opts, list(args))
    if impl == "master":
        from repro.runtime.master import MasterBackend

        return MasterBackend(program, opts)
    raise ValueError(f"unknown implementation {impl!r}")


def run_program(
    program_class: Any,
    args: Optional[List[str]] = None,
    impl: str = "serial",
    **opt_overrides: Any,
) -> Any:
    """Run a program in-process and return the program instance.

    The returned instance exposes whatever its ``run`` recorded —
    typically ``program.output_data`` for the default run.  This is the
    entry point tests and benchmarks use::

        program = run_program(WordCount, ['in.txt', 'out'], impl='serial')
        pairs = program.output_data.data()
    """
    args = list(args or [])
    flags = ["--mrs", impl]
    opts, positional = options_mod.parse_options(program_class, flags + args)
    for key, value in opt_overrides.items():
        setattr(opts, key, value)
    _configure_native(opts)
    program = program_class(opts, positional)

    if impl == "bypass":
        from repro.runtime.bypass import run_bypass

        run_bypass(program)
        return program

    backend = _make_backend(impl, program, opts, positional)
    try:
        job = Job(backend, program)
        status = program.run(job)
        if status not in (None, 0):
            raise RuntimeError(
                f"{program_class.__name__} exited with status {status}"
            )
        _finalize_run(backend, opts)
        # Expose the metrics report on the returned instance so tests
        # and benchmarks can read it after the backend is closed.
        program.metrics_report = backend.metrics()
        return program
    finally:
        backend.close()


def exit_main(program_class: Any, argv: Optional[Sequence[str]] = None) -> None:
    """``main`` variant that exits the interpreter with the status."""
    sys.exit(main(program_class, argv))
