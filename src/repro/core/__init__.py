"""Core programming model: programs, jobs, datasets, operations."""

from repro.core.program import MapReduce, IterativeMR, expand_input_paths
from repro.core.job import Job, Backend, JobError
from repro.core.dataset import (
    BaseDataset,
    LocalData,
    FileData,
    MapData,
    ReduceData,
    ReduceMapData,
)
from repro.core.main import main, run_program, exit_main
from repro.core.options import parse_options, default_options
from repro.core.random_streams import (
    random_stream,
    numpy_stream,
    stream_seed,
    MAX_OFFSETS,
)

__all__ = [
    "MapReduce",
    "IterativeMR",
    "expand_input_paths",
    "Job",
    "Backend",
    "JobError",
    "BaseDataset",
    "LocalData",
    "FileData",
    "MapData",
    "ReduceData",
    "ReduceMapData",
    "main",
    "run_program",
    "exit_main",
    "parse_options",
    "default_options",
    "random_stream",
    "numpy_stream",
    "stream_seed",
    "MAX_OFFSETS",
]
