"""Datasets: bucket grids produced and consumed by MapReduce operations.

A dataset is a grid of buckets addressed by ``(source, split)``.  Tasks
consume one *split column* each: task *j* of an operation reads every
bucket ``(i, j)`` of its input dataset and writes buckets ``(j, s)``
into the output dataset, for each output split *s*.  This layout is
what makes the dependency structure of figure 1/figure 2 of the paper
explicit: a reduce task depends on one bucket from every map task.

Dataset subclasses:

* :class:`LocalData` — literal pairs supplied by the master program.
* :class:`FileData` — one bucket per input URL/file, one task per file.
* :class:`MapData` / :class:`ReduceData` / :class:`ReduceMapData` —
  lazily *computed* datasets; submitting one to a
  :class:`~repro.core.job.Job` queues the operation (section IV-A:
  programs "queue up map and reduce operations so that each is ready to
  begin as soon as the previous operation finishes").
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.operations import (
    MapOperation,
    Operation,
    ReduceMapOperation,
    ReduceOperation,
    callable_name,
)
from repro.io import urls as url_io
from repro.io.bucket import Bucket

KeyValue = Tuple[Any, Any]

_dataset_counter = itertools.count()
_counter_lock = threading.Lock()


def _next_dataset_id(prefix: str, namespace: Optional[str] = None) -> str:
    """Allocate a process-unique dataset id.

    ``namespace`` (a job id in service mode) becomes a ``.``-separated
    prefix — ``job-1.map_3``.  A dot rather than a slash because the id
    also appears verbatim in flat bucket filenames
    (``{dataset_id}_{source}_{split}.{ext}``) and as a single directory
    level in the run dir.
    """
    with _counter_lock:
        serial = next(_dataset_counter)
    if namespace:
        return f"{namespace}.{prefix}_{serial}"
    return f"{prefix}_{serial}"


class BaseDataset:
    """Common bucket-grid behaviour for all dataset kinds."""

    def __init__(
        self,
        dataset_id: Optional[str] = None,
        splits: int = 1,
        affinity_group: Optional[str] = None,
        prefix: str = "ds",
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
        namespace: Optional[str] = None,
    ):
        if splits < 0:
            raise ValueError(f"splits must be non-negative, got {splits}")
        self.id = dataset_id or _next_dataset_id(prefix, namespace)
        #: Job namespace this dataset belongs to (service mode), if any.
        self.namespace = namespace
        self.splits = splits
        #: Scheduler hint: tasks of datasets sharing an affinity group
        #: and task index prefer the same slave across iterations.
        self.affinity_group = affinity_group or self.id
        #: Registered serializer names used when this dataset's buckets
        #: are persisted in the binary format (None = pickle).  Typed
        #: serializers skip pickle on hot paths — a real Mrs feature.
        self.key_serializer = key_serializer
        self.value_serializer = value_serializer
        self._buckets: Dict[Tuple[int, int], Bucket] = {}
        #: True once every bucket's data is final.
        self.complete = False
        #: Set if computation failed irrecoverably.
        self.error: Optional[str] = None

    # -- bucket access ------------------------------------------------

    def bucket(self, source: int, split: int) -> Bucket:
        """Get-or-create the bucket at grid position (source, split)."""
        key = (source, split)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = Bucket(source=source, split=split)
            self._buckets[key] = bucket
        return bucket

    def add_bucket(self, bucket: Bucket) -> None:
        self._buckets[(bucket.source, bucket.split)] = bucket

    def existing_buckets(self) -> List[Bucket]:
        """All buckets that currently exist, in grid order."""
        return [self._buckets[k] for k in sorted(self._buckets)]

    def buckets_for_split(self, split: int) -> List[Bucket]:
        """Every bucket in split column ``split``, ordered by source."""
        found = [
            bucket
            for (source, s), bucket in sorted(self._buckets.items())
            if s == split
        ]
        return found

    @property
    def n_sources(self) -> int:
        if not self._buckets:
            return 0
        return 1 + max(source for source, _ in self._buckets)

    # -- data access ----------------------------------------------------

    def _fetch(self, bucket: Bucket) -> None:
        bucket.collect(
            url_io.fetch_pairs(
                bucket.url,
                key_serializer=self.key_serializer,
                value_serializer=self.value_serializer,
            )
        )

    def fetchall(self) -> None:
        """Ensure every bucket's pairs are resident in memory.

        Buckets that only carry a URL (data produced remotely or
        spilled to disk) are fetched and materialized.
        """
        for bucket in self.existing_buckets():
            if len(bucket) == 0 and bucket.url:
                self._fetch(bucket)

    def iterdata(self) -> Iterator[KeyValue]:
        """Iterate all pairs in grid order (fetches remote buckets)."""
        for bucket in self.existing_buckets():
            if len(bucket) == 0 and bucket.url:
                self._fetch(bucket)
            yield from bucket

    def data(self) -> List[KeyValue]:
        """Materialize all pairs as a list."""
        return list(self.iterdata())

    def splitdata(self, split: int) -> List[KeyValue]:
        """Materialize the pairs of one split column."""
        out: List[KeyValue] = []
        for bucket in self.buckets_for_split(split):
            if len(bucket) == 0 and bucket.url:
                self._fetch(bucket)
            out.extend(bucket)
        return out

    def clear(self) -> None:
        """Drop all in-memory pairs (URLs are kept)."""
        for bucket in self.existing_buckets():
            bucket.clean()

    def remove_source(self, source: int) -> int:
        """Drop every bucket produced by task ``source`` (the data was
        lost; the task will be re-executed).  Returns buckets removed."""
        doomed = [key for key in self._buckets if key[0] == source]
        for key in doomed:
            del self._buckets[key]
        return len(doomed)

    def __repr__(self) -> str:
        state = "complete" if self.complete else "pending"
        return (
            f"{type(self).__name__}(id={self.id!r}, splits={self.splits}, "
            f"buckets={len(self._buckets)}, {state})"
        )


class LocalData(BaseDataset):
    """Pairs supplied directly by the master program.

    The pairs are partitioned immediately with ``parter`` (defaulting
    to round-robin, which preserves input order within each split and
    gives deterministic task contents independent of key hashing).
    """

    def __init__(
        self,
        pairs: Sequence[KeyValue],
        splits: int = 1,
        parter: Optional[Callable[[Any, int], int]] = None,
        dataset_id: Optional[str] = None,
        affinity_group: Optional[str] = None,
        namespace: Optional[str] = None,
    ):
        super().__init__(
            dataset_id, splits, affinity_group, prefix="local",
            namespace=namespace,
        )
        pairs = list(pairs)
        if pairs and splits == 0:
            raise ValueError("local_data with pairs requires splits >= 1")
        for index, pair in enumerate(pairs):
            if not isinstance(pair, tuple) or len(pair) != 2:
                raise TypeError(
                    f"local_data expects (key, value) pairs; item {index} "
                    f"is {pair!r}"
                )
            key, _ = pair
            if parter is None:
                split = index % splits
            else:
                split = parter(key, splits)
                if not 0 <= split < splits:
                    raise ValueError(
                        f"partitioner returned split {split} for key {key!r}, "
                        f"outside range(0, {splits})"
                    )
            self.bucket(0, split).addpair(pair)
        # Ensure all split columns exist even if empty, so downstream
        # operations create one task per split.
        for split in range(splits):
            self.bucket(0, split)
        self.complete = True


class FileData(BaseDataset):
    """One bucket (and hence one downstream task) per input URL.

    This is the input layout that lets Mrs ingest the ragged Project
    Gutenberg directory tree directly — any iterable of paths works,
    there is no single-directory requirement (section V-B).
    """

    def __init__(
        self,
        file_urls: Sequence[str],
        dataset_id: Optional[str] = None,
        affinity_group: Optional[str] = None,
        namespace: Optional[str] = None,
    ):
        file_urls = list(file_urls)
        if not file_urls:
            raise ValueError("file_data requires at least one input file")
        super().__init__(
            dataset_id, splits=len(file_urls), affinity_group=affinity_group,
            prefix="file", namespace=namespace,
        )
        for split, url in enumerate(file_urls):
            if "://" not in url and not url.startswith("file:"):
                url = "file:" + url
            bucket = Bucket(source=0, split=split, url=url)
            self.add_bucket(bucket)
        self.complete = True

    def fetchall(self) -> None:  # pragma: no cover - same as base but kept
        super().fetchall()


class ComputedData(BaseDataset):
    """A dataset produced by running an operation over an input dataset."""

    def __init__(
        self,
        input_id: str,
        operation: Operation,
        ntasks: int,
        dataset_id: Optional[str] = None,
        affinity_group: Optional[str] = None,
        outdir: Optional[str] = None,
        format_ext: Optional[str] = None,
        blocking_ids: Sequence[str] = (),
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
        namespace: Optional[str] = None,
    ):
        super().__init__(
            dataset_id,
            splits=operation.splits,
            affinity_group=affinity_group,
            prefix=operation.kind,
            key_serializer=key_serializer,
            value_serializer=value_serializer,
            namespace=namespace,
        )
        #: Dataset id this operation consumes.
        self.input_id = input_id
        self.operation = operation
        #: One task per input split column.
        self.ntasks = ntasks
        #: Optional directory for persisted output buckets.
        self.outdir = outdir
        #: Output file extension (selects the writer format).
        self.format_ext = format_ext
        #: Extra dataset ids that must complete first (beyond the input).
        self.blocking_ids = list(blocking_ids)

    def task_indices(self) -> range:
        return range(self.ntasks)


class MapData(ComputedData):
    def __init__(self, input_id: str, operation: MapOperation, ntasks: int, **kw):
        super().__init__(input_id, operation, ntasks, **kw)


class ReduceData(ComputedData):
    def __init__(self, input_id: str, operation: ReduceOperation, ntasks: int, **kw):
        super().__init__(input_id, operation, ntasks, **kw)


class ReduceMapData(ComputedData):
    def __init__(self, input_id: str, operation: ReduceMapOperation, ntasks: int, **kw):
        super().__init__(input_id, operation, ntasks, **kw)


def make_map_data(
    input_dataset: BaseDataset,
    mapper: Any,
    splits: int,
    parter: Any = None,
    combiner: Any = None,
    **kw,
) -> MapData:
    op = MapOperation(
        map_name=callable_name(mapper),
        splits=splits,
        parter_name=callable_name(parter),
        combine_name=callable_name(combiner),
    )
    return MapData(input_dataset.id, op, ntasks=input_dataset.splits, **kw)


def make_reduce_data(
    input_dataset: BaseDataset,
    reducer: Any,
    splits: int,
    parter: Any = None,
    **kw,
) -> ReduceData:
    op = ReduceOperation(
        reduce_name=callable_name(reducer),
        splits=splits,
        parter_name=callable_name(parter),
    )
    return ReduceData(input_dataset.id, op, ntasks=input_dataset.splits, **kw)


def make_reducemap_data(
    input_dataset: BaseDataset,
    reducer: Any,
    mapper: Any,
    splits: int,
    parter: Any = None,
    combiner: Any = None,
    **kw,
) -> ReduceMapData:
    op = ReduceMapOperation(
        reduce_name=callable_name(reducer),
        map_name=callable_name(mapper),
        splits=splits,
        parter_name=callable_name(parter),
        combine_name=callable_name(combiner),
    )
    return ReduceMapData(input_dataset.id, op, ntasks=input_dataset.splits, **kw)
