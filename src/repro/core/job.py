"""The Job facade handed to a program's ``run`` method.

A ``Job`` creates datasets and queues operations on a runtime backend.
Crucially, ``map_data``/``reduce_data``/``reducemap_data`` return
*immediately* with a lazy dataset handle — the backend starts the work
as soon as its inputs are ready, and the program only blocks when it
calls :meth:`Job.wait`.  This is the paper's key iterative-MapReduce
optimization (section IV-A): an iterative program can queue several
iterations ahead and run its convergence check *in parallel* with the
computation of subsequent iterations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import dataset as ds

KeyValue = Tuple[Any, Any]


class Backend:
    """Runtime interface a Job drives.

    Implementations: serial, mock-parallel, and the master (distributed)
    runtime.  ``submit`` registers a computed dataset for execution;
    ``wait`` blocks until at least one of the given datasets is
    complete and returns the complete subset.
    """

    #: Reasonable default number of output splits when the program does
    #: not specify one (the master backend overrides this with the
    #: cluster size).
    default_splits = 1

    #: Default for Job.wait's timeout when the caller passes None —
    #: wired from ``--mrs-timeout`` so a stuck distributed job returns
    #: control instead of hanging forever.
    default_timeout = None

    def submit(self, dataset: ds.ComputedData, job: "Job") -> None:
        raise NotImplementedError

    def wait(
        self,
        datasets: Sequence[ds.BaseDataset],
        job: "Job",
        timeout: Optional[float] = None,
    ) -> List[ds.BaseDataset]:
        raise NotImplementedError

    def progress(self, dataset: ds.BaseDataset) -> float:
        return 1.0 if dataset.complete else 0.0

    #: Observability bundle (set by concrete backends); None means the
    #: backend records nothing and ``metrics`` returns an empty report.
    observability = None

    def remove_data(self, dataset_id: str, job: "Job") -> None:
        """Release a dataset's storage (memory and spill files)."""

    def metrics(self) -> Dict[str, Any]:
        """The backend's aggregate metrics report (see
        :mod:`repro.observability`)."""
        if self.observability is None:
            return {}
        return self.observability.report()

    def status(self) -> Dict[str, Any]:
        """A cheap live snapshot of the running job: tasks done/total,
        ETA, overhead fraction.  Backends with richer state (slaves,
        workers, a scheduler) extend this view."""
        if self.observability is None:
            return {}
        return self.observability.status_view()

    def telemetry(self) -> Dict[str, Any]:
        """The cluster telemetry snapshot: per-source health
        time-series, shuffle-skew summaries, straggler candidates.
        Empty when ``--mrs-telemetry off`` (or the backend records
        nothing).  Backends with a scheduler extend this with live
        straggler candidates."""
        if self.observability is None or self.observability.telemetry is None:
            return {}
        return self.observability.telemetry.snapshot()

    def close(self) -> None:
        """Shut down any runtime resources."""


class JobError(Exception):
    """A queued operation failed irrecoverably."""


class Job:
    """Dataset factory and synchronization point for a running program."""

    def __init__(
        self,
        backend: Backend,
        program: Any = None,
        namespace: Optional[str] = None,
    ):
        self.backend = backend
        self.program = program
        #: Job namespace (service mode): every dataset id and affinity
        #: group this job creates is prefixed ``<namespace>.`` so many
        #: jobs can share one backend without colliding.
        self.namespace = namespace
        self._datasets: Dict[str, ds.BaseDataset] = {}

    def _group(self, group: Optional[str]) -> Optional[str]:
        """Namespace an affinity group so concurrent jobs never share
        scheduler affinity state."""
        if group and self.namespace:
            return f"{self.namespace}.{group}"
        return group

    # -- dataset registry ---------------------------------------------

    def get_dataset(self, dataset_id: str) -> ds.BaseDataset:
        return self._datasets[dataset_id]

    def _register(self, dataset: ds.BaseDataset) -> ds.BaseDataset:
        if dataset.id in self._datasets:
            raise ValueError(f"duplicate dataset id {dataset.id!r}")
        self._datasets[dataset.id] = dataset
        return dataset

    # -- input datasets -------------------------------------------------

    def local_data(
        self,
        pairs: Sequence[KeyValue],
        splits: Optional[int] = None,
        parter: Optional[Callable[[Any, int], int]] = None,
        affinity_group: Optional[str] = None,
    ) -> ds.LocalData:
        """Create a dataset from literal key-value pairs."""
        if splits is None:
            splits = self.backend.default_splits
        data = ds.LocalData(
            pairs,
            splits=splits,
            parter=parter,
            affinity_group=self._group(affinity_group),
            namespace=self.namespace,
        )
        return self._register(data)

    def file_data(
        self,
        file_urls: Sequence[str],
        affinity_group: Optional[str] = None,
    ) -> ds.FileData:
        """Create a dataset over existing files; one task per file."""
        data = ds.FileData(
            list(file_urls),
            affinity_group=self._group(affinity_group),
            namespace=self.namespace,
        )
        return self._register(data)

    # -- computed datasets ----------------------------------------------

    def map_data(
        self,
        input: ds.BaseDataset,
        mapper: Any,
        splits: Optional[int] = None,
        parter: Any = None,
        combiner: Any = None,
        outdir: Optional[str] = None,
        format: Optional[str] = None,
        affinity_group: Optional[str] = None,
        blocking: Sequence[ds.BaseDataset] = (),
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
    ) -> ds.MapData:
        """Queue a map operation over ``input``; returns immediately."""
        splits = splits or self.backend.default_splits
        data = ds.make_map_data(
            input,
            mapper,
            splits=splits,
            parter=parter,
            combiner=combiner,
            outdir=outdir,
            format_ext=format,
            affinity_group=self._group(
                affinity_group or f"map:{ds.callable_name(mapper)}"
            ),
            blocking_ids=[b.id for b in blocking],
            key_serializer=key_serializer,
            value_serializer=value_serializer,
            namespace=self.namespace,
        )
        self._register(data)
        self.backend.submit(data, self)
        return data

    def reduce_data(
        self,
        input: ds.BaseDataset,
        reducer: Any,
        splits: Optional[int] = None,
        parter: Any = None,
        outdir: Optional[str] = None,
        format: Optional[str] = None,
        affinity_group: Optional[str] = None,
        blocking: Sequence[ds.BaseDataset] = (),
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
    ) -> ds.ReduceData:
        """Queue a reduce operation over ``input``; returns immediately."""
        splits = splits or self.backend.default_splits
        data = ds.make_reduce_data(
            input,
            reducer,
            splits=splits,
            parter=parter,
            outdir=outdir,
            format_ext=format,
            affinity_group=self._group(
                affinity_group or f"reduce:{ds.callable_name(reducer)}"
            ),
            blocking_ids=[b.id for b in blocking],
            key_serializer=key_serializer,
            value_serializer=value_serializer,
            namespace=self.namespace,
        )
        self._register(data)
        self.backend.submit(data, self)
        return data

    def reducemap_data(
        self,
        input: ds.BaseDataset,
        reducer: Any,
        mapper: Any,
        splits: Optional[int] = None,
        parter: Any = None,
        combiner: Any = None,
        outdir: Optional[str] = None,
        format: Optional[str] = None,
        affinity_group: Optional[str] = None,
        blocking: Sequence[ds.BaseDataset] = (),
        key_serializer: Optional[str] = None,
        value_serializer: Optional[str] = None,
    ) -> ds.ReduceMapData:
        """Queue a fused reduce+map operation (one barrier per iteration)."""
        splits = splits or self.backend.default_splits
        data = ds.make_reducemap_data(
            input,
            reducer,
            mapper,
            splits=splits,
            parter=parter,
            combiner=combiner,
            outdir=outdir,
            format_ext=format,
            affinity_group=self._group(
                affinity_group
                or f"reducemap:{ds.callable_name(reducer)}"
                f"+{ds.callable_name(mapper)}"
            ),
            blocking_ids=[b.id for b in blocking],
            key_serializer=key_serializer,
            value_serializer=value_serializer,
            namespace=self.namespace,
        )
        self._register(data)
        self.backend.submit(data, self)
        return data

    # -- synchronization --------------------------------------------------

    def wait(
        self,
        *datasets: ds.BaseDataset,
        timeout: Optional[float] = None,
    ) -> List[ds.BaseDataset]:
        """Block until at least one given dataset completes.

        Returns the (possibly larger) list of given datasets that are
        complete.  Raises :class:`JobError` if any of them failed.
        ``timeout=None`` falls back to the backend's default (the
        ``--mrs-timeout`` option), if any.
        """
        if not datasets:
            return []
        if timeout is None:
            timeout = self.backend.default_timeout
        done = self.backend.wait(list(datasets), self, timeout=timeout)
        for dataset in done:
            if dataset.error:
                raise JobError(
                    f"dataset {dataset.id} failed: {dataset.error}"
                )
        return done

    def progress(self, dataset: ds.BaseDataset) -> float:
        """Fraction of the dataset's tasks that have completed (0..1)."""
        return self.backend.progress(dataset)

    def metrics(self) -> Dict[str, Any]:
        """Whole-job metrics: startup time, per-phase wall clock,
        per-task spans, and per-operation overhead.  Distributed runs
        include slave-side numbers aggregated by the master."""
        return self.backend.metrics()

    def status(self) -> Dict[str, Any]:
        """A live snapshot of the job: tasks done/total/running, an ETA
        from the task-duration histogram, the overhead fraction so far,
        and backend-specific state (slaves/workers, datasets).  This is
        the same view ``--mrs-progress`` renders and
        ``--mrs-status-http`` serves."""
        return self.backend.status()

    def telemetry(self) -> Dict[str, Any]:
        """The cluster telemetry view (``--mrs-telemetry``): per-slave
        health time-series, shuffle-skew summaries per dataset, and
        straggler candidates.  Empty when telemetry is off."""
        return self.backend.telemetry()

    def remove_data(self, dataset: ds.BaseDataset) -> None:
        """Free a dataset that no further operation will read.

        Long iterative runs must release old iterations or the job's
        footprint grows linearly with iteration count.
        """
        self.backend.remove_data(dataset.id, self)
        dataset.clear()
