"""Command-line option handling.

Mrs's whole configuration story is "a short list of command-line
options" (section IV) — no config files, no daemons.  Framework options
are namespaced with ``--mrs-`` so they never collide with program
options added via ``Program.update_parser``.
"""

from __future__ import annotations

import argparse
import os
from typing import Any, List, Optional, Sequence, Tuple

#: Implementation names accepted by ``--mrs`` (case-insensitive).
IMPLEMENTATIONS = (
    "serial",
    "bypass",
    "mockparallel",
    "multiprocess",
    "master",
    "slave",
    "serve",
)


def make_parser(program_class: Any = None) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=getattr(program_class, "__doc__", None) or "Mrs program",
        conflict_handler="resolve",
    )
    group = parser.add_argument_group("Mrs options")
    group.add_argument(
        "-I",
        "--mrs",
        dest="mrs_impl",
        default="serial",
        metavar="IMPL",
        help=f"execution implementation, one of {', '.join(IMPLEMENTATIONS)}",
    )
    group.add_argument(
        "--mrs-verbose",
        dest="verbose",
        action="store_true",
        help="informational logging",
    )
    group.add_argument(
        "--mrs-debug",
        dest="debug",
        action="store_true",
        help="debug logging",
    )
    group.add_argument(
        "--mrs-tmpdir",
        dest="tmpdir",
        default=None,
        metavar="DIR",
        help="directory for intermediate data (shared across slaves "
        "for filesystem-based data exchange)",
    )
    group.add_argument(
        "--mrs-seed",
        dest="seed",
        type=int,
        default=0,
        metavar="N",
        help="program-wide random seed (first offset of every stream)",
    )
    group.add_argument(
        "--mrs-reduce-tasks",
        dest="reduce_tasks",
        type=int,
        default=0,
        metavar="N",
        help="number of reduce tasks (0 = implementation default)",
    )
    group.add_argument(
        "--mrs-procs",
        dest="procs",
        type=int,
        default=0,
        metavar="N",
        help="multiprocess: number of worker processes "
        "(0 = one per CPU core)",
    )
    group.add_argument(
        "--mrs-start-method",
        dest="start_method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocess: how worker processes are started "
        "(default: the platform's multiprocessing default)",
    )
    group.add_argument(
        "--mrs-port",
        dest="port",
        type=int,
        default=0,
        metavar="PORT",
        help="master: RPC listen port (0 = ephemeral)",
    )
    group.add_argument(
        "--mrs-runfile",
        dest="runfile",
        default=None,
        metavar="FILE",
        help="master: write host:port here once listening "
        "(the slave-startup handshake of Program 3)",
    )
    group.add_argument(
        "--mrs-master",
        dest="master",
        default=None,
        metavar="HOST:PORT",
        help="slave: master address (a slave needs nothing else)",
    )
    group.add_argument(
        "--mrs-data-plane",
        dest="data_plane",
        choices=("file", "http"),
        default="file",
        help="intermediate data exchange: shared filesystem (fault-"
        "tolerant) or direct HTTP between slaves (fast)",
    )
    group.add_argument(
        "--mrs-native",
        dest="native",
        choices=("auto", "on", "off"),
        default=None,
        help="native (C) shuffle kernels: 'auto' compiles on demand and "
        "silently falls back to pure Python without a compiler, 'on' "
        "fails loudly when unavailable, 'off' never compiles; outputs "
        "are byte-identical either way (default: MRS_NATIVE or auto)",
    )
    group.add_argument(
        "--mrs-zero-copy",
        dest="zero_copy",
        choices=("on", "off"),
        default=None,
        help="buffer-protocol fast paths for large values (scatter "
        "writes, mmap reads, sendfile) for serializers that support "
        "them, e.g. 'numpy'; outputs are byte-identical either way "
        "(default: MRS_ZERO_COPY or on)",
    )
    group.add_argument(
        "--mrs-no-affinity",
        dest="no_affinity",
        action="store_true",
        help="disable iteration task affinity in the scheduler "
        "(ablation knob)",
    )
    group.add_argument(
        "--mrs-pipeline",
        dest="pipeline",
        choices=("off", "buckets"),
        default="buckets",
        help="iteration pipelining: 'buckets' dispatches a task as "
        "soon as its specific input buckets are committed (identity-"
        "routed reduce->map edges overlap across iterations); 'off' "
        "restores the per-dataset barrier (ablation knob)",
    )
    group.add_argument(
        "--mrs-host",
        dest="host",
        default=None,
        metavar="HOST",
        help="interface for the master's servers (default 127.0.0.1)",
    )
    group.add_argument(
        "--mrs-profile",
        dest="profile_dir",
        default=None,
        metavar="DIR",
        help="serial implementation: cProfile every task into DIR "
        "(one .prof per task; inspect with pstats).  'Profiling has "
        "helped to identify real bottlenecks' — section IV-B",
    )
    group.add_argument(
        "--mrs-metrics-json",
        dest="metrics_json",
        default=None,
        metavar="PATH",
        help="dump the job's aggregate metrics report (startup time, "
        "per-phase wall clock, per-task spans, per-operation overhead) "
        "as JSON to PATH on job exit",
    )
    group.add_argument(
        "--mrs-event-log",
        dest="event_log",
        default=None,
        metavar="PATH",
        help="append every runtime event (task/dataset lifecycle, "
        "scheduler decisions, failures, heartbeats) to PATH as "
        "crash-safe JSONL; several processes may share one file "
        "(lines carry pid/role/sequence fields)",
    )
    group.add_argument(
        "--mrs-trace",
        dest="trace",
        default=None,
        metavar="PATH",
        help="write a Chrome/Perfetto trace_event JSON timeline of the "
        "job to PATH on exit (open in ui.perfetto.dev); one track per "
        "worker/slave, spans per task phase",
    )
    group.add_argument(
        "--mrs-progress",
        dest="progress",
        action="store_true",
        help="live stderr ticker: tasks done/total, ETA from the "
        "task-duration histogram, live overhead fraction",
    )
    group.add_argument(
        "--mrs-status-http",
        dest="status_http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a read-only status endpoint on PORT (GET /status, "
        "/metrics [Prometheus text; ?format=json for the report], "
        "/events, /dashboard) while the job runs",
    )
    group.add_argument(
        "--mrs-telemetry",
        dest="telemetry",
        choices=("on", "off"),
        default="on",
        help="cluster telemetry plane: per-slave health time-series, "
        "shuffle-skew accounting, and straggler scoring ('off' skips "
        "all sampling; outputs are byte-identical either way)",
    )
    group.add_argument(
        "--mrs-telemetry-interval",
        dest="telemetry_interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds between health samples (and the downsampling "
        "slot width of the master's telemetry store)",
    )
    group.add_argument(
        "--mrs-straggler-factor",
        dest="straggler_factor",
        type=float,
        default=1.5,
        metavar="X",
        help="flag a running task as a straggler candidate once its "
        "elapsed time exceeds X times the running median of its "
        "dataset's completed tasks",
    )
    group.add_argument(
        "--mrs-heartbeat-interval",
        dest="heartbeat_interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat cadence: the master watchdog's ping period and "
        "the multiprocess backend's heartbeat-event throttle "
        "(default: MRS_HEARTBEAT_INTERVAL or the per-backend default)",
    )
    group.add_argument(
        "--mrs-profile-tasks",
        dest="profile_tasks",
        type=int,
        default=0,
        metavar="N",
        help="run tasks under cProfile and keep the .pstats dumps of "
        "the N slowest tasks per process (paths attached to their "
        "spans and announced as task.profiled events)",
    )
    group.add_argument(
        "--mrs-fetch-threads",
        dest="fetch_threads",
        type=int,
        default=4,
        metavar="N",
        help="parallel bucket-fetch threads per reduce task "
        "(0 = sequential fetches, no prefetch pipeline)",
    )
    group.add_argument(
        "--mrs-fetch-buffer-mb",
        dest="fetch_buffer_mb",
        type=int,
        default=32,
        metavar="MB",
        help="byte budget shared by in-flight prefetched bucket data "
        "(bounds reduce-side fetch memory)",
    )
    group.add_argument(
        "--mrs-fetch-timeout",
        dest="fetch_timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout for each bucket-fetch attempt",
    )
    group.add_argument(
        "--mrs-fetch-retries",
        dest="fetch_retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per bucket fetch before the task fails "
        "(mid-stream failures resume at the last delivered record)",
    )
    group.add_argument(
        "--mrs-fetch-compression",
        dest="fetch_compression",
        choices=("auto", "gzip", "off"),
        default="auto",
        help="negotiate gzip bucket transfers: 'auto' compresses "
        "except over loopback, 'gzip' always asks, 'off' never does",
    )
    group.add_argument(
        "--mrs-timeout",
        dest="timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall job timeout (master/serial implementations)",
    )
    group.add_argument(
        "--mrs-slave-wait-timeout",
        dest="slave_wait_timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="master: how long wait_for_slaves blocks for sign-ins "
        "(default: MRS_SLAVE_WAIT_TIMEOUT or 30)",
    )
    group.add_argument(
        "--mrs-max-concurrent-jobs",
        dest="max_concurrent_jobs",
        type=int,
        default=8,
        metavar="N",
        help="serve: jobs admitted into the shared slave pool at once "
        "(further submissions queue FIFO)",
    )
    group.add_argument(
        "--mrs-auth-token",
        dest="auth_token",
        default=None,
        metavar="TOKEN",
        help="serve: bearer token required by mutating control-surface "
        "requests (POST/DELETE /jobs); default MRS_AUTH_TOKEN or none",
    )
    group.add_argument(
        "--mrs-register",
        dest="register",
        action="append",
        default=[],
        metavar="NAME=MODULE:CLASS",
        help="serve: register a submittable program under NAME "
        "(repeatable); the program class passed to main() is always "
        "registered under its lowercased class name",
    )
    if program_class is not None and hasattr(program_class, "update_parser"):
        program_class.update_parser(parser)
    return parser


def parse_options(
    program_class: Any = None,
    argv: Optional[Sequence[str]] = None,
) -> Tuple[argparse.Namespace, List[str]]:
    """Parse framework + program options; returns (opts, positional args)."""
    parser = make_parser(program_class)
    opts, args = parser.parse_known_args(argv)
    impl = opts.mrs_impl.lower()
    if impl not in IMPLEMENTATIONS:
        parser.error(
            f"unknown implementation {opts.mrs_impl!r}; "
            f"choose from {', '.join(IMPLEMENTATIONS)}"
        )
    opts.mrs_impl = impl
    # Anything left that still looks like a flag is a genuine error.
    stray = [a for a in args if a.startswith("-")]
    if stray:
        parser.error(f"unrecognized options: {' '.join(stray)}")
    return opts, args


def resolve_heartbeat_interval(opts: Any, default: float) -> float:
    """The shared heartbeat cadence for a call site whose historical
    default is ``default``: ``--mrs-heartbeat-interval``, else the
    ``MRS_HEARTBEAT_INTERVAL`` environment variable, else ``default``
    (so the master keeps 2 s pings and the multiprocess backend keeps
    its 5 s heartbeat-event throttle unless the knob is turned).
    """
    value = getattr(opts, "heartbeat_interval", None) if opts else None
    if value is None:
        env = os.environ.get("MRS_HEARTBEAT_INTERVAL")
        if env:
            try:
                value = float(env)
            except ValueError:
                value = None
    if value is None:
        return float(default)
    return max(0.05, float(value))


def default_options(**overrides: Any) -> argparse.Namespace:
    """Build an options namespace programmatically (for tests/benches)."""
    opts, _ = parse_options(None, [])
    for key, value in overrides.items():
        setattr(opts, key, value)
    return opts
