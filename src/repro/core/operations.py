"""Operation descriptors: serializable recipes for map/reduce tasks.

A descriptor never holds a function object.  Slaves re-instantiate the
user's program class locally (from the module path and command-line
arguments), so descriptors reference the program's methods *by name*.
This is what lets a task description travel over XML-RPC as a small
dict while user code stays local to each process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

#: Operation kind tags used on the wire.
MAP = "map"
REDUCE = "reduce"
REDUCEMAP = "reducemap"


def callable_name(func: Any) -> Optional[str]:
    """Extract an attribute name from a callable or pass a string through.

    Accepts a bound method of the program (``self.map``), a plain
    function defined on the program class, a string naming a program
    attribute, or ``None``.
    """
    if func is None:
        return None
    if isinstance(func, str):
        return func
    name = getattr(func, "__name__", None)
    if name is None:
        raise TypeError(f"cannot derive a method name from {func!r}")
    return name


class Operation:
    """Base operation descriptor.

    Parameters
    ----------
    splits:
        Number of output partitions this operation produces.
    parter_name:
        Program attribute used to partition output keys (defaults to
        the program's ``partition`` method).
    """

    kind: str = "base"

    def __init__(self, splits: int, parter_name: Optional[str] = None):
        if splits <= 0:
            raise ValueError(f"splits must be positive, got {splits}")
        self.splits = splits
        self.parter_name = parter_name or "partition"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "splits": self.splits,
            "parter_name": self.parter_name,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Operation":
        kind = data["kind"]
        if kind == MAP:
            return MapOperation(
                map_name=data["map_name"],
                splits=data["splits"],
                parter_name=data["parter_name"],
                combine_name=data.get("combine_name"),
            )
        if kind == REDUCE:
            return ReduceOperation(
                reduce_name=data["reduce_name"],
                splits=data["splits"],
                parter_name=data["parter_name"],
            )
        if kind == REDUCEMAP:
            return ReduceMapOperation(
                reduce_name=data["reduce_name"],
                map_name=data["map_name"],
                splits=data["splits"],
                parter_name=data["parter_name"],
                combine_name=data.get("combine_name"),
            )
        raise ValueError(f"unknown operation kind {kind!r}")

    def resolve(self, program: Any, name: Optional[str]) -> Optional[Callable]:
        if name is None:
            return None
        func = getattr(program, name, None)
        if func is None:
            raise AttributeError(
                f"{type(program).__name__} has no method {name!r} "
                f"required by a {self.kind} operation"
            )
        return func

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_dict()!r})"


class MapOperation(Operation):
    """Apply a map function to every input record, then partition.

    ``combine_name`` optionally names a combiner run over each output
    bucket before it leaves the task — the paper's WordCount
    optimization where "the reduce function can function as a combiner
    without any modifications".
    """

    kind = MAP

    def __init__(
        self,
        map_name: str,
        splits: int,
        parter_name: Optional[str] = None,
        combine_name: Optional[str] = None,
    ):
        super().__init__(splits, parter_name)
        self.map_name = map_name
        self.combine_name = combine_name

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["map_name"] = self.map_name
        d["combine_name"] = self.combine_name
        return d


class ReduceOperation(Operation):
    """Group sorted input by key and apply a reduce function."""

    kind = REDUCE

    def __init__(
        self,
        reduce_name: str,
        splits: int,
        parter_name: Optional[str] = None,
    ):
        super().__init__(splits, parter_name)
        self.reduce_name = reduce_name

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["reduce_name"] = self.reduce_name
        return d


class ReduceMapOperation(Operation):
    """Fused reduce-then-map in a single task.

    Iterative programs alternate reduce and map; fusing them halves the
    number of barriers per iteration (section IV-A's low-overhead
    iteration support — the paper's own text calls a whole cycle a
    "ReduceMap operation").
    """

    kind = REDUCEMAP

    def __init__(
        self,
        reduce_name: str,
        map_name: str,
        splits: int,
        parter_name: Optional[str] = None,
        combine_name: Optional[str] = None,
    ):
        super().__init__(splits, parter_name)
        self.reduce_name = reduce_name
        self.map_name = map_name
        self.combine_name = combine_name

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["reduce_name"] = self.reduce_name
        d["map_name"] = self.map_name
        d["combine_name"] = self.combine_name
        return d
