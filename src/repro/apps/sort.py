"""Distributed sort (TeraSort's little sibling).

Demonstrates the custom-partitioner API: a range partitioner sends
lexicographically earlier keys to lower splits, and since each reduce
task's output is key-sorted (the framework sorts before grouping),
concatenating the output splits *in order* yields a globally sorted
result — the same trick TeraSort uses at scale.

    python -m repro.apps.sort input.txt out_dir
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

import repro as mrs
from repro.io.partition import first_byte_partition


class DistributedSort(mrs.MapReduce):
    """Sort input lines; output split s holds the s-th key range."""

    def map(self, key: Any, value: str) -> Iterator[Tuple[str, int]]:
        # Identity on the line, counting duplicates.
        yield (value, 1)

    def reduce(self, key: str, values: Iterator[int]) -> Iterator[int]:
        yield sum(values)

    # The range partitioner is what makes split concatenation globally
    # sorted (for ASCII-dominated keys).
    def partition(self, key: Any, n_splits: int) -> int:
        return first_byte_partition(key, n_splits)

    def run(self, job: mrs.Job) -> int:
        source = self.input_data(job)
        shuffled = job.map_data(source, self.map)
        output = job.reduce_data(
            shuffled, self.reduce, outdir=self.output_dir, format="txt"
        )
        job.wait(output)
        self.output_data = output
        return 0


def sorted_lines(program: DistributedSort) -> List[str]:
    """Concatenate output splits in order; expand duplicate counts."""
    out: List[str] = []
    dataset = program.output_data
    for split in range(dataset.splits):
        pairs = []
        for bucket in dataset.buckets_for_split(split):
            if len(bucket) == 0 and bucket.url:
                dataset.fetchall()
            pairs.extend(bucket)
        # Within a split the reduce already saw keys in sorted order;
        # buckets store them in emission order.
        for line, count in pairs:
            out.extend([line] * count)
    return out


if __name__ == "__main__":
    mrs.exit_main(DistributedSort)
