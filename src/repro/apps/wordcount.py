"""WordCount — Program 1 of the paper, verbatim on our API.

The map splits each line into words and emits ``(word, 1)``; the reduce
sums the counts.  ``WordCountCombined`` additionally registers the
reduce function as a combiner, the optimization the paper applies in
its quantitative WordCount comparison ("the reduce function can
function as a combiner without any modifications").

Run standalone::

    python -m repro.apps.wordcount input.txt out_dir
    python -m repro.apps.wordcount --mrs mockparallel corpus_dir out_dir
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Dict, Iterator, Tuple

import repro as mrs


class WordCount(mrs.MapReduce):
    """Count the number of occurrences of each word."""

    def map(self, key: Any, value: str) -> Iterator[Tuple[str, int]]:
        for word in value.split():
            yield (word, 1)

    def reduce(self, key: str, values: Iterator[int]) -> Iterator[int]:
        yield sum(values)


class WordCountCombined(WordCount):
    """WordCount with the reduce reused as a combiner (section V-A)."""

    combine = WordCount.reduce


_TOKEN_RE = re.compile(r"\S+")


def count_words_serially(lines) -> Dict[str, int]:
    """Reference implementation: the answer WordCount must produce.

    Used by tests (property: MapReduce WordCount ≡ Counter) and by the
    ``bypass`` path below.
    """
    counts: Counter = Counter()
    for line in lines:
        counts.update(_TOKEN_RE.findall(line))
    return dict(counts)


class WordCountWithBypass(WordCountCombined):
    """WordCount with a bypass entry point for implementation diffing."""

    def bypass(self) -> int:
        from repro.core.program import expand_input_paths
        from repro.io.formats import default_read_pairs

        paths = expand_input_paths(self.args[:-1])
        lines = (
            value for path in paths for _, value in default_read_pairs(path)
        )
        self.bypass_counts = count_words_serially(lines)
        return 0


def output_counts(program) -> Dict[str, int]:
    """Collect a finished WordCount's output as a plain dict."""
    return {key: value for key, value in program.output_data.iterdata()}


if __name__ == "__main__":
    mrs.exit_main(WordCountCombined)
