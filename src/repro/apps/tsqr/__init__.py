"""Tall-and-skinny QR (TSQR) workload suite.

MapReduce factorizations of tall-and-skinny matrices (rows >> cols),
after the mrtsqr suite (Benson, Gleich, Demmel): Cholesky QR, Indirect
TSQR, Direct TSQR, and the companion products B^T·A and A·B.  This is
the few-keys / huge-values shuffle shape the zero-copy NumPy data
plane exists for: every intermediate value is a matrix block carried
by the ``numpy`` serializer (``--tsqr-serializer pickle`` opts out,
for comparison).

Run a single algorithm from the command line::

    python -m repro.apps.tsqr cholesky --mrs serial --tsqr-rows 20000

or programmatically through :func:`repro.run_program` with any of the
program classes below.
"""

from repro.apps.tsqr.numerics import (
    orthogonality_error,
    reconstruction_error,
)
from repro.apps.tsqr.programs import (
    ALGORITHMS,
    CholeskyQR,
    DirectTSQR,
    IndirectTSQR,
    TSMatMulAB,
    TSMatMulBtA,
)

__all__ = [
    "ALGORITHMS",
    "CholeskyQR",
    "DirectTSQR",
    "IndirectTSQR",
    "TSMatMulAB",
    "TSMatMulBtA",
    "orthogonality_error",
    "reconstruction_error",
]
