"""TSQR MapReduce programs.

Five factorization dataflows over a row-blocked tall-and-skinny matrix
A (rows >> cols), following the mrtsqr suite:

* :class:`CholeskyQR` — two passes: reduce ``A^T A``, Cholesky on the
  driver, second map pass forms ``Q_i = A_i R^{-1}``.
* :class:`IndirectTSQR` — like Cholesky QR but numerically stabler:
  R comes from a QR of the stacked per-block R factors instead of the
  (condition-squaring) Gram matrix.
* :class:`DirectTSQR` — the three-stage communication-avoiding QR:
  per-block QR, a QR of the stacked R factors, then per-block
  recombination ``Q_i = Q1_i Q2_i``.  Q is explicitly formed and
  orthogonal to machine precision regardless of conditioning.
* :class:`TSMatMulBtA` — ``B^T A`` for two conforming tall-and-skinny
  matrices, as a map of per-block products and a summing reduce.
* :class:`TSMatMulAB` — ``A B`` for a small broadcast B, map-only.

Input blocks are generated deterministically per block index from the
program's seeded RNG streams, so a second pass (or another worker)
regenerates exactly the same block without shipping it — the classic
"re-read A from disk" step of two-pass TSQR, minus the disk.  Every
intermediate value is a NumPy array carried by the ``numpy`` serializer
(zero-copy data plane); ``--tsqr-serializer pickle`` opts into the
pickle path for comparison, producing numerically identical results.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

import repro as mrs
from repro.apps.tsqr.numerics import (
    KIND_Q1,
    KIND_Q2,
    KIND_R,
    R_KEY,
    orthogonality_error,
    reconstruction_error,
    tag_block,
    untag_block,
)


class TSQRBase(mrs.MapReduce):
    """Shared input generation and driver plumbing for the suite."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.rows = int(getattr(opts, "tsqr_rows", 4096))
        self.cols = int(getattr(opts, "tsqr_cols", 16))
        self.blocks = int(getattr(opts, "tsqr_blocks", 8))
        serializer = getattr(opts, "tsqr_serializer", "numpy") or "numpy"
        #: Value serializer name for every array-valued dataset.
        self.vs = serializer
        if self.cols < 2:
            raise ValueError("TSQR needs at least 2 columns")
        if self.rows < self.blocks * self.cols:
            raise ValueError(
                f"{self.rows} rows cannot fill {self.blocks} blocks of "
                f"at least {self.cols} (= cols) rows each"
            )
        #: Set by ``run``/drivers for callers (tests, benches).
        self.Q: Optional[np.ndarray] = None
        self.R: Optional[np.ndarray] = None
        self.result: Optional[np.ndarray] = None

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument(
            "--tsqr-rows", dest="tsqr_rows", type=int, default=4096,
            help="total rows of the tall matrix A",
        )
        parser.add_argument(
            "--tsqr-cols", dest="tsqr_cols", type=int, default=16,
            help="columns of A (tall-and-skinny: rows >> cols)",
        )
        parser.add_argument(
            "--tsqr-blocks", dest="tsqr_blocks", type=int, default=8,
            help="number of row blocks A is split into",
        )
        parser.add_argument(
            "--tsqr-serializer", dest="tsqr_serializer",
            choices=("numpy", "pickle"), default="numpy",
            help="value serializer for matrix blocks: 'numpy' rides the "
            "zero-copy data plane, 'pickle' is the baseline",
        )
        return parser

    # -- deterministic blocked input ----------------------------------

    def block_rows(self, i: int) -> int:
        base, extra = divmod(self.rows, self.blocks)
        return base + (1 if i < extra else 0)

    def make_block(self, i: int) -> np.ndarray:
        """Row block ``A_i``, regenerable bit-identically anywhere."""
        rng = self.numpy_random(101, i)
        return rng.standard_normal((self.block_rows(i), self.cols))

    def gen_blocks(self, key: int, value: Any) -> Iterator[Tuple[int, np.ndarray]]:
        yield key, self.make_block(key)

    def block_source(self, job: mrs.Job):
        """The tiny seed dataset: one ``(i, row_count)`` pair per block."""
        pairs = [(i, self.block_rows(i)) for i in range(self.blocks)]
        return job.local_data(pairs, splits=min(self.blocks, 8))

    def blocks_data(self, job: mrs.Job):
        """The blocked matrix as a computed dataset of array values."""
        return job.map_data(
            self.block_source(job),
            self.gen_blocks,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )

    def full_matrix(self) -> np.ndarray:
        """Materialize A on the driver (verification only)."""
        return np.vstack([self.make_block(i) for i in range(self.blocks)])

    def assemble_q(self, blocks: Dict[int, np.ndarray]) -> np.ndarray:
        return np.vstack([blocks[i] for i in range(self.blocks)])

    # -- shared reduce ------------------------------------------------

    def sum_reduce(
        self, key: Any, values: Iterator[np.ndarray]
    ) -> Iterator[np.ndarray]:
        total = None
        for block in values:
            total = np.array(block, copy=True) if total is None else total + block
        if total is not None:
            yield total

    # -- second pass shared by Cholesky QR and Indirect TSQR ----------

    def q_from_r_map(
        self, key: int, R: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Regenerate ``A_i`` and form ``Q_i = A_i R^{-1}`` (as a
        triangular solve on the transposed system)."""
        A_i = self.make_block(key)
        yield key, np.linalg.solve(R.T, A_i.T).T

    def q_pass(self, job: mrs.Job, R: np.ndarray) -> np.ndarray:
        """Broadcast R to one map task per block and assemble Q."""
        source = job.local_data(
            [(i, R) for i in range(self.blocks)], splits=min(self.blocks, 8)
        )
        q_data = job.map_data(
            source,
            self.q_from_r_map,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )
        job.wait(q_data)
        return self.assemble_q(dict(q_data.data()))

    # -- driver -------------------------------------------------------

    def factor(self, job: mrs.Job) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def run(self, job: mrs.Job) -> int:
        self.Q, self.R = self.factor(job)
        A = self.full_matrix()
        orth = orthogonality_error(self.Q)
        recon = reconstruction_error(A, self.Q, self.R)
        print(
            f"{type(self).__name__}: {self.rows}x{self.cols} in "
            f"{self.blocks} blocks  orthogonality={orth:.3e}  "
            f"reconstruction={recon:.3e}"
        )
        return 0 if (orth < 1e-8 and recon < 1e-8) else 1


class CholeskyQR(TSQRBase):
    """Cholesky QR: ``R = chol(A^T A)``, ``Q = A R^{-1}``.

    One reduction plus one map pass; fastest of the family, but the
    Gram matrix squares A's condition number, so orthogonality degrades
    for ill-conditioned inputs (the reason Direct TSQR exists).
    """

    def gram_map(
        self, key: int, block: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        yield 0, block.T @ block

    def factor(self, job: mrs.Job) -> Tuple[np.ndarray, np.ndarray]:
        blocks = self.blocks_data(job)
        grams = job.map_data(
            blocks,
            self.gram_map,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )
        gram = job.reduce_data(
            grams,
            self.sum_reduce,
            splits=1,
            key_serializer="int",
            value_serializer=self.vs,
        )
        job.wait(gram)
        G = dict(gram.data())[0]
        R = np.linalg.cholesky(G).T
        return self.q_pass(job, R), R


class IndirectTSQR(TSQRBase):
    """Indirect TSQR: R via a QR of the stacked per-block R factors,
    then ``Q = A R^{-1}`` in a second pass."""

    def local_r_map(
        self, key: int, block: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        r = np.linalg.qr(block, mode="r")
        yield R_KEY, tag_block(KIND_R, key, r)

    def stack_r_reduce(
        self, key: int, values: Iterator[np.ndarray]
    ) -> Iterator[np.ndarray]:
        factors = [untag_block(v)[1:] for v in values]
        factors.sort(key=lambda item: item[0])
        stacked = np.vstack([r for _, r in factors])
        yield np.linalg.qr(stacked, mode="r")

    def factor(self, job: mrs.Job) -> Tuple[np.ndarray, np.ndarray]:
        blocks = self.blocks_data(job)
        local_rs = job.map_data(
            blocks,
            self.local_r_map,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )
        r_data = job.reduce_data(
            local_rs,
            self.stack_r_reduce,
            splits=1,
            key_serializer="int",
            value_serializer=self.vs,
        )
        job.wait(r_data)
        R = dict(r_data.data())[R_KEY]
        return self.q_pass(job, R), R


class DirectTSQR(TSQRBase):
    """Direct TSQR (three stages, communication-avoiding).

    Stage 1 (map): per-block QR; ``Q1_i`` stays keyed to its block,
    every ``R_i`` funnels to the :data:`R_KEY` group.

    Stage 2 (fused reduce+map): QR of the stacked ``R_i`` yields the
    final R and the small second-stage factors ``Q2_i``, which the
    fused map re-keys to their blocks; big ``Q1_i`` blocks pass through
    untouched — the large-value merge path end to end.

    Stage 3 (reduce): join ``Q1_i @ Q2_i`` per block; R passes through.
    """

    def qr_map(
        self, key: int, block: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        q, r = np.linalg.qr(block)
        yield key, tag_block(KIND_Q1, key, q)
        yield R_KEY, tag_block(KIND_R, key, r)

    def stack_reduce(
        self, key: int, values: Iterator[np.ndarray]
    ) -> Iterator[np.ndarray]:
        if key != R_KEY:
            # A lone first-stage Q block: forward it without touching
            # the (potentially mmap-backed, zero-copy) payload.
            yield from values
            return
        factors = [untag_block(v)[1:] for v in values]
        factors.sort(key=lambda item: item[0])
        stacked = np.vstack([r for _, r in factors])
        q2, r_final = np.linalg.qr(stacked)
        n = self.cols
        for j, (i, _) in enumerate(factors):
            yield tag_block(KIND_Q2, i, q2[j * n : (j + 1) * n])
        yield tag_block(KIND_R, R_KEY, r_final)

    def rekey_map(
        self, key: int, tagged: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        kind, index, block = untag_block(tagged)
        if kind == KIND_Q2:
            yield index, tag_block(KIND_Q2, index, block)
        elif kind == KIND_R and index == R_KEY:
            yield R_KEY, tagged
        else:  # a passed-through Q1 block, already keyed to its block
            yield key, tagged

    def join_reduce(
        self, key: int, values: Iterator[np.ndarray]
    ) -> Iterator[np.ndarray]:
        if key == R_KEY:
            for tagged in values:
                yield np.array(untag_block(tagged)[2], copy=True)
            return
        q1 = q2 = None
        for tagged in values:
            kind, _, block = untag_block(tagged)
            if kind == KIND_Q1:
                q1 = block
            elif kind == KIND_Q2:
                q2 = block
        if q1 is None or q2 is None:
            raise ValueError(f"block {key} missing a Q factor")
        yield q1 @ q2

    def factor(self, job: mrs.Job) -> Tuple[np.ndarray, np.ndarray]:
        blocks = self.blocks_data(job)
        stage1 = job.map_data(
            blocks,
            self.qr_map,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )
        stage2 = job.reducemap_data(
            stage1,
            self.stack_reduce,
            self.rekey_map,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )
        stage3 = job.reduce_data(
            stage2,
            self.join_reduce,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )
        job.wait(stage3)
        out = dict(stage3.data())
        R = out.pop(R_KEY)
        return self.assemble_q(out), R


class TSMatMulBtA(TSQRBase):
    """``B^T A`` for conforming tall-and-skinny A and B: per-block
    products in the map, one summing reduce."""

    def make_b_block(self, i: int) -> np.ndarray:
        rng = self.numpy_random(202, i)
        return rng.standard_normal((self.block_rows(i), self.cols))

    def bta_map(
        self, key: int, value: Any
    ) -> Iterator[Tuple[int, np.ndarray]]:
        yield 0, self.make_b_block(key).T @ self.make_block(key)

    def factor(self, job: mrs.Job) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError("B^T A is a product, not a factorization")

    def multiply(self, job: mrs.Job) -> np.ndarray:
        products = job.map_data(
            self.block_source(job),
            self.bta_map,
            splits=min(self.blocks, 8),
            key_serializer="int",
            value_serializer=self.vs,
        )
        total = job.reduce_data(
            products,
            self.sum_reduce,
            splits=1,
            key_serializer="int",
            value_serializer=self.vs,
        )
        job.wait(total)
        return dict(total.data())[0]

    def run(self, job: mrs.Job) -> int:
        self.result = self.multiply(job)
        B = np.vstack([self.make_b_block(i) for i in range(self.blocks)])
        reference = B.T @ self.full_matrix()
        err = float(np.linalg.norm(self.result - reference)) / (
            float(np.linalg.norm(reference)) or 1.0
        )
        print(f"TSMatMulBtA: {self.rows}x{self.cols}  relative error={err:.3e}")
        return 0 if err < 1e-10 else 1


class TSMatMulAB(TSQRBase):
    """``A B`` for a small broadcast B (cols x cols): map-only — every
    worker regenerates B from the seeded stream instead of receiving
    it, so the only data movement is the output itself."""

    def make_b(self) -> np.ndarray:
        rng = self.numpy_random(303)
        return rng.standard_normal((self.cols, self.cols))

    def ab_map(
        self, key: int, value: Any
    ) -> Iterator[Tuple[int, np.ndarray]]:
        yield key, self.make_block(key) @ self.make_b()

    def factor(self, job: mrs.Job) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError("A B is a product, not a factorization")

    def multiply(self, job: mrs.Job) -> np.ndarray:
        products = job.map_data(
            self.block_source(job),
            self.ab_map,
            splits=self.blocks,
            key_serializer="int",
            value_serializer=self.vs,
        )
        job.wait(products)
        return self.assemble_q(dict(products.data()))

    def run(self, job: mrs.Job) -> int:
        self.result = self.multiply(job)
        reference = self.full_matrix() @ self.make_b()
        err = float(np.linalg.norm(self.result - reference)) / (
            float(np.linalg.norm(reference)) or 1.0
        )
        print(f"TSMatMulAB: {self.rows}x{self.cols}  relative error={err:.3e}")
        return 0 if err < 1e-10 else 1


#: CLI and registry names for the suite (see ``__main__``).
ALGORITHMS: Dict[str, type] = {
    "cholesky": CholeskyQR,
    "indirect": IndirectTSQR,
    "direct": DirectTSQR,
    "bta": TSMatMulBtA,
    "ab": TSMatMulAB,
}
