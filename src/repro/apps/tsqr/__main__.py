"""CLI dispatch: ``python -m repro.apps.tsqr <algorithm> [options]``.

The first positional argument picks the dataflow (``cholesky``,
``indirect``, ``direct``, ``bta``, ``ab``); everything after it is
standard Mrs + TSQR options.  In service mode, register individual
algorithms instead, e.g.::

    --mrs-register direct=repro.apps.tsqr.programs:DirectTSQR
"""

from __future__ import annotations

import sys

import repro as mrs
from repro.apps.tsqr.programs import ALGORITHMS


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ALGORITHMS:
        names = ", ".join(sorted(ALGORITHMS))
        sys.exit(f"usage: python -m repro.apps.tsqr {{{names}}} [options]")
    mrs.exit_main(ALGORITHMS[argv[0]], argv[1:])


if __name__ == "__main__":
    main()
