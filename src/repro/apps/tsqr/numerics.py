"""Numerical helpers for the TSQR suite.

Tagged blocks
-------------
The Direct TSQR dataflow moves blocks of several *kinds* (first-stage
Q factors, second-stage Q factors, the final R) through one pipeline.
To keep every value a plain ``numpy`` array — and therefore on the
zero-copy serializer path — a block's kind and source index ride in
one extra leading row instead of a Python tuple wrapper:

    row 0:   [kind, index, 0, ...]
    row 1..: the payload block

This costs one row of floats per block (negligible next to a tall
block) and keeps the whole pipeline pickle-free.  Requires at least
two columns, which every tall-and-skinny problem has.

Checks
------
Factorization quality is measured the standard way, against the same
criteria one would apply to ``numpy.linalg.qr`` output itself:
orthogonality ``||Q^T Q - I||_F`` and relative reconstruction error
``||Q R - A||_F / ||A||_F``.  (Q and R are only unique up to column
signs, so element-wise comparison against NumPy's factors would be
meaningless; the residuals are the invariant quantities.)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Block kinds for :func:`tag_block`.
KIND_Q1 = 0
KIND_Q2 = 1
KIND_R = 2

#: The reserved key that funnels all first-stage R factors (and carries
#: the final R in the output) — distinct from every block index >= 0.
R_KEY = -1


def tag_block(kind: int, index: int, block: np.ndarray) -> np.ndarray:
    """Prepend a ``[kind, index, 0...]`` row to ``block``."""
    if block.ndim != 2 or block.shape[1] < 2:
        raise ValueError(
            f"tagged blocks need a 2-d block with >= 2 columns, "
            f"got shape {block.shape}"
        )
    header = np.zeros((1, block.shape[1]), dtype=block.dtype)
    header[0, 0] = kind
    header[0, 1] = index
    return np.vstack([header, block])


def untag_block(tagged: np.ndarray) -> Tuple[int, int, np.ndarray]:
    """Inverse of :func:`tag_block`; the payload is a zero-copy view."""
    return int(tagged[0, 0]), int(tagged[0, 1]), tagged[1:]


def orthogonality_error(Q: np.ndarray) -> float:
    """``||Q^T Q - I||_F`` — 0 for a perfectly orthonormal basis."""
    n = Q.shape[1]
    return float(np.linalg.norm(Q.T @ Q - np.eye(n)))


def reconstruction_error(A: np.ndarray, Q: np.ndarray, R: np.ndarray) -> float:
    """``||Q R - A||_F / ||A||_F`` — relative factorization residual."""
    denom = float(np.linalg.norm(A)) or 1.0
    return float(np.linalg.norm(Q @ R - A)) / denom
