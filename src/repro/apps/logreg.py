"""Logistic regression as iterative MapReduce (summation form).

The paper's introduction cites Chu et al.'s "Map-Reduce for Machine
Learning on Multicore" [3], whose observation is that any algorithm in
*statistical query / summation form* parallelizes as: map computes
partial sums over data shards, reduce adds them, the master updates the
model.  Batch-gradient logistic regression is the canonical example:

    map(shard, (X, y, w))  -> (0, (sum_i (sigma(x_i . w) - y_i) x_i,
                                   sum_i loss_i, n_i))
    reduce(0, partials)    -> totals
    w <- w - lr * gradient / n

Shards are fixed; the model ``w`` travels inside each record, the same
broadcast pattern as :mod:`repro.apps.kmeans`, so the program behaves
identically in every implementation including subprocess slaves.  The
bypass implementation iterates the same shards in the same order, so
results are bit-identical across all execution contexts.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

import repro as mrs

#: Stream namespaces.
DATA_STREAM = 30
WEIGHT_STREAM = 31


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


def generate_classification_data(
    n_points: int,
    dims: int,
    rng: np.random.Generator,
    noise_flip: float = 0.05,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linearly separable-ish binary labels from a hidden weight vector.

    Returns ``(X, y, true_weights)``; X includes a bias column of ones.
    """
    true_w = rng.normal(0.0, 2.0, dims + 1)
    X = np.concatenate(
        [rng.normal(0.0, 1.0, (n_points, dims)), np.ones((n_points, 1))],
        axis=1,
    )
    probabilities = sigmoid(X @ true_w)
    y = (probabilities > 0.5).astype(np.float64)
    flips = rng.random(n_points) < noise_flip
    y[flips] = 1.0 - y[flips]
    return X, y, true_w


def shard_gradient(
    X: np.ndarray, y: np.ndarray, w: np.ndarray
) -> Tuple[np.ndarray, float, int]:
    """Partial gradient, log-loss sum, and count for one shard."""
    p = sigmoid(X @ w)
    gradient = X.T @ (p - y)
    eps = 1e-12
    loss = float(-(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)).sum())
    return gradient, loss, len(y)


class LogisticRegression(mrs.MapReduce):
    """Batch gradient descent over sharded data."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.n_points = getattr(opts, "lr_points", 2000)
        self.dims = getattr(opts, "lr_dims", 5)
        self.shards = getattr(opts, "lr_shards", 4)
        self.max_iters = getattr(opts, "lr_iters", 50)
        self.learning_rate = getattr(opts, "lr_rate", 1.0)
        self.tolerance = getattr(opts, "lr_tol", 1e-4)
        self.weights: Optional[np.ndarray] = None
        #: Mean log-loss per iteration.
        self.loss_history: List[float] = []
        self.iterations_run = 0

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument("--lr-points", dest="lr_points", type=int, default=2000)
        parser.add_argument("--lr-dims", dest="lr_dims", type=int, default=5)
        parser.add_argument("--lr-shards", dest="lr_shards", type=int, default=4)
        parser.add_argument("--lr-iters", dest="lr_iters", type=int, default=50)
        parser.add_argument("--lr-rate", dest="lr_rate", type=float, default=1.0)
        parser.add_argument("--lr-tol", dest="lr_tol", type=float, default=1e-4)
        return parser

    # -- data -----------------------------------------------------------

    def make_data(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        rng = self.numpy_random(DATA_STREAM)
        return generate_classification_data(self.n_points, self.dims, rng)

    def make_shards(
        self, X: np.ndarray, y: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Contiguous shards; order is part of the deterministic
        contract (floating-point sums depend on it)."""
        bounds = np.linspace(0, len(y), self.shards + 1).astype(int)
        return [
            (X[lo:hi], y[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    # -- MapReduce functions ------------------------------------------------

    def map(
        self, key: int, value: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> Iterator[Tuple[int, Tuple[np.ndarray, float, int]]]:
        X, y, w = value
        yield (0, shard_gradient(X, y, w))

    def reduce(
        self, key: int, values: Iterator[Tuple[np.ndarray, float, int]]
    ) -> Iterator[Tuple[np.ndarray, float, int]]:
        total_gradient = None
        total_loss = 0.0
        total_count = 0
        for gradient, loss, count in values:
            total_gradient = (
                gradient.copy() if total_gradient is None
                else total_gradient + gradient
            )
            total_loss += loss
            total_count += count
        if total_count:
            yield (total_gradient, total_loss, total_count)

    # -- drivers ----------------------------------------------------------------

    def _step(self, gradient: np.ndarray, loss: float, count: int) -> float:
        """Apply one gradient-descent update; returns the step size."""
        update = self.learning_rate * gradient / count
        self.weights = self.weights - update
        self.loss_history.append(loss / count)
        self.iterations_run += 1
        return float(np.abs(update).max())

    def run(self, job: mrs.Job) -> int:
        X, y, _ = self.make_data()
        shards = self.make_shards(X, y)
        self.weights = np.zeros(X.shape[1])
        for _ in range(self.max_iters):
            source = job.local_data(
                [
                    (i, (sx, sy, self.weights))
                    for i, (sx, sy) in enumerate(shards)
                ],
                splits=len(shards),
                parter=lambda key, n: int(key) % n,
            )
            partials = job.map_data(
                source, self.map, splits=1, affinity_group="lr_grad",
            )
            totals = job.reduce_data(
                partials, self.reduce, splits=1, affinity_group="lr_sum",
            )
            job.wait(totals)
            ((_, (gradient, loss, count)),) = totals.data()
            step = self._step(gradient, loss, count)
            job.remove_data(partials)
            job.remove_data(totals)
            if step <= self.tolerance:
                break
        self._finish(X, y)
        return 0

    def bypass(self) -> int:
        """Identical math, shard order, and accumulation order."""
        X, y, _ = self.make_data()
        shards = self.make_shards(X, y)
        self.weights = np.zeros(X.shape[1])
        for _ in range(self.max_iters):
            total_gradient = None
            total_loss = 0.0
            total_count = 0
            for sx, sy in shards:
                gradient, loss, count = shard_gradient(sx, sy, self.weights)
                total_gradient = (
                    gradient.copy() if total_gradient is None
                    else total_gradient + gradient
                )
                total_loss += loss
                total_count += count
            step = self._step(total_gradient, total_loss, total_count)
            if step <= self.tolerance:
                break
        self._finish(X, y)
        return 0

    def _finish(self, X: np.ndarray, y: np.ndarray) -> None:
        predictions = sigmoid(X @ self.weights) > 0.5
        self.accuracy = float((predictions == (y > 0.5)).mean())


if __name__ == "__main__":
    mrs.exit_main(LogisticRegression)
