"""Vectorized Halton kernel — the stand-in for the paper's C module.

The paper's Fig 3b replaces the pure-Python inner loop with a C
function called through ctypes, "while leaving the rest of the loop
unchanged".  We reproduce the same structural move with NumPy: the
radical-inverse computation is vectorized over the whole index range,
so the per-point work runs in compiled code while the surrounding
MapReduce program is untouched.  The substitution is documented in
DESIGN.md (section 2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.pi.halton import BASES


#: Bit-reversal masks for the base-2 fast path (32-bit swap network).
_REV_MASKS = (
    (1, np.uint64(0x5555555555555555)),
    (2, np.uint64(0x3333333333333333)),
    (4, np.uint64(0x0F0F0F0F0F0F0F0F)),
    (8, np.uint64(0x00FF00FF00FF00FF)),
    (16, np.uint64(0x0000FFFF0000FFFF)),
    (32, np.uint64(0xFFFFFFFF00000000)),
)


def _radical_inverse_base2(indices: np.ndarray) -> np.ndarray:
    """Base-2 radical inverse via vectorized bit reversal.

    Reversing the 64 bits of the index and dividing by 2**64 is exactly
    the van der Corput value; the swap network costs a fixed ~18 array
    ops regardless of magnitude — this is the "compiled inner loop"
    that plays the role of the paper's C module.
    """
    v = indices.astype(np.uint64)
    for shift, mask in _REV_MASKS[:-1]:
        v = ((v >> np.uint64(shift)) & mask) | ((v & mask) << np.uint64(shift))
    # Final 32-bit halves swap.
    v = (v >> np.uint64(32)) | (v << np.uint64(32))
    return v.astype(np.float64) * (0.5 ** 64)


def _radical_inverse_array(base: int, indices: np.ndarray) -> np.ndarray:
    """Vectorized van der Corput radical inverse."""
    if base == 2:
        return _radical_inverse_base2(indices)
    values = np.zeros(indices.shape, dtype=np.float64)
    # int32 when the range allows: halves the memory traffic of the
    # digit-extraction passes, which dominate this kernel.
    max_index = int(indices.max(initial=0))
    dtype = np.int32 if max_index < 2**31 else np.int64
    remaining = indices.astype(dtype)
    digits = np.empty_like(remaining)
    scaled = np.empty(indices.shape, dtype=np.float64)
    factor = 1.0 / base
    # Loop over digit positions, not points: ~log_base(max_index)
    # whole-array passes, fused with divmod and in-place accumulation.
    while max_index > 0:
        np.divmod(remaining, base, remaining, digits)
        np.multiply(digits, factor, out=scaled)
        values += scaled
        factor /= base
        max_index //= base
    return values


def halton_points(offset: int, count: int) -> Tuple[np.ndarray, np.ndarray]:
    """The 2-D Halton points for indices [offset, offset+count)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    indices = np.arange(offset, offset + count, dtype=np.int64)
    x = _radical_inverse_array(BASES[0], indices)
    y = _radical_inverse_array(BASES[1], indices)
    return x, y


def count_inside_numpy(offset: int, count: int, chunk: int = 1 << 20) -> Tuple[int, int]:
    """Count Halton points inside the quarter circle, vectorized.

    Processes in chunks so huge sample counts don't allocate
    count-sized arrays all at once.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    inside = 0
    done = 0
    while done < count:
        n = min(chunk, count - done)
        x, y = halton_points(offset + done, n)
        inside += int(np.count_nonzero(x * x + y * y <= 1.0))
        done += n
    return inside, count


def measure_numpy_rate(samples: int = 2_000_000) -> float:
    """Measured vectorized sampling rate (points/second)."""
    import time

    # Warm up: the first uint64 ufunc dispatch is an order of magnitude
    # slower than steady state and would corrupt the measurement.
    count_inside_numpy(0, min(samples, 100_000))
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        count_inside_numpy(0, samples)
        best = min(best, time.perf_counter() - started)
    return samples / best if best > 0 else float("inf")
