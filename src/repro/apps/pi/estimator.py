"""The PiEstimator MapReduce program (Fig 3).

Structure mirrors Hadoop's PiEstimator example: ``--pi-tasks`` map
tasks each draw ``samples / tasks`` Halton points from disjoint index
ranges (quasi-random sequences are deterministic, so splitting by
offset keeps the union identical to a serial run); a single reduce sums
the inside/total counts.  ``--pi-kernel`` selects the inner loop:
``python`` (Fig 3a) or ``numpy`` (the C-module stand-in, Fig 3b).
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

import repro as mrs
from repro.apps.pi.halton import sample_inside
from repro.apps.pi.halton_numpy import count_inside_numpy

KERNELS = ("python", "numpy", "ctypes")


def run_kernel(kernel: str, offset: int, count: int):
    """Dispatch to the selected inner loop.

    ``ctypes`` is the paper's actual mechanism (a C function compiled
    on demand); it requires a C compiler and raises a clear error
    otherwise — ``numpy`` is the always-available compiled fallback.
    """
    if kernel == "numpy":
        return count_inside_numpy(offset, count)
    if kernel == "ctypes":
        from repro.apps.pi.halton_ctypes import count_inside_ctypes

        return count_inside_ctypes(offset, count)
    return sample_inside(offset, count)


def split_samples(total: int, tasks: int):
    """Disjoint (offset, count) ranges covering [0, total)."""
    if tasks <= 0:
        raise ValueError("tasks must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, extra = divmod(total, tasks)
    ranges = []
    offset = 0
    for i in range(tasks):
        count = base + (1 if i < extra else 0)
        ranges.append((offset, count))
        offset += count
    return ranges


class PiEstimator(mrs.MapReduce):
    """Estimate pi by quasi-Monte Carlo over a Halton sequence."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.pi_estimate: float = float("nan")
        self.total_inside = 0
        self.total_samples = 0

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument(
            "--pi-samples",
            dest="pi_samples",
            type=int,
            default=1_000_000,
            help="total number of Halton sample points",
        )
        parser.add_argument(
            "--pi-tasks",
            dest="pi_tasks",
            type=int,
            default=8,
            help="number of map tasks",
        )
        parser.add_argument(
            "--pi-kernel",
            dest="pi_kernel",
            choices=KERNELS,
            default="python",
            help="inner loop: pure python or vectorized numpy "
            "(the paper's C-module analogue)",
        )
        return parser

    # -- MapReduce functions ---------------------------------------------

    def map(self, key: int, value: Tuple[int, int]) -> Iterator[Tuple[int, Tuple[int, int]]]:
        offset, count = value
        inside, total = run_kernel(self.opts.pi_kernel, offset, count)
        yield (0, (inside, total))

    def reduce(self, key: int, values: Iterator[Tuple[int, int]]) -> Iterator[Tuple[int, int]]:
        inside = 0
        total = 0
        for task_inside, task_total in values:
            inside += task_inside
            total += task_total
        yield (inside, total)

    # -- drivers -----------------------------------------------------------

    def run(self, job: mrs.Job) -> int:
        ranges = split_samples(self.opts.pi_samples, self.opts.pi_tasks)
        source = job.local_data(
            [(i, r) for i, r in enumerate(ranges)],
            splits=len(ranges),
        )
        intermediate = job.map_data(source, self.map, splits=1)
        output = job.reduce_data(intermediate, self.reduce, splits=1)
        job.wait(output)
        self.output_data = output
        ((_, (inside, total)),) = output.data()
        self._finish(inside, total)
        return 0

    def bypass(self) -> int:
        """Serial implementation sharing the same kernels."""
        inside = 0
        total = 0
        for offset, count in split_samples(
            self.opts.pi_samples, self.opts.pi_tasks
        ):
            task_inside, task_total = run_kernel(
                self.opts.pi_kernel, offset, count
            )
            inside += task_inside
            total += task_total
        self._finish(inside, total)
        return 0

    def _finish(self, inside: int, total: int) -> None:
        self.total_inside = inside
        self.total_samples = total
        self.pi_estimate = 4.0 * inside / total if total else float("nan")


def estimate_pi_serial(samples: int, kernel: str = "python") -> float:
    """Convenience one-liner used by examples and tests."""
    inside, total = run_kernel(kernel, 0, samples)
    return 4.0 * inside / total if total else float("nan")


if __name__ == "__main__":
    mrs.exit_main(PiEstimator)
