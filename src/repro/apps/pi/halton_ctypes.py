"""The paper's actual Fig 3b mechanism: a C inner loop via ctypes.

"Python makes it easy to rework existing code so that performance
critical parts of an application, such as the inner loop of our map
tasks, can be rewritten in C ... we use Python's ctypes module to call
a C function instead of the pure Python implementation of the Halton
sequence" (section V-B).

The C source lives next to this module (``_halton.c``); compiler
discovery, the per-user build cache, and the atomic compile-and-load
live in :mod:`repro.native.compile` (shared with the framework's own
shuffle kernels).  Environments without a compiler fall back to the
vectorized NumPy kernel (see DESIGN.md's substitution table) — call
:func:`is_available` to find out which world you are in.
"""

from __future__ import annotations

import ctypes
import os
import threading
from typing import Optional, Tuple

from repro.native.compile import (  # noqa: F401  (re-exported)
    CompilerUnavailable,
    load_shared_library,
)

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_halton.c")

#: -ffp-contract=off forbids FMA contraction so x*x + y*y rounds the
#: same way CPython does — results stay bit-identical to the pure
#: Python kernel.
_CFLAGS = ["-O2", "-ffp-contract=off", "-shared", "-fPIC"]

_CACHE_PREFIX = "repro_halton"

_lock = threading.Lock()
_library: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None


def _build_library() -> ctypes.CDLL:
    library = load_shared_library(_SOURCE_PATH, _CACHE_PREFIX, _CFLAGS)
    library.halton_count_inside.restype = ctypes.c_int64
    library.halton_count_inside.argtypes = [ctypes.c_int64, ctypes.c_int64]
    library.halton_points.restype = None
    library.halton_points.argtypes = [
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
    ]
    return library


def _get_library() -> ctypes.CDLL:
    global _library, _load_error
    with _lock:
        if _library is not None:
            return _library
        if _load_error is not None:
            raise CompilerUnavailable(_load_error)
        try:
            _library = _build_library()
            return _library
        except CompilerUnavailable as exc:
            _load_error = str(exc)
            raise


def is_available() -> bool:
    """True if the C kernel can be (or has been) built and loaded."""
    try:
        _get_library()
        return True
    except CompilerUnavailable:
        return False


def count_inside_ctypes(offset: int, count: int) -> Tuple[int, int]:
    """C-kernel twin of :func:`repro.apps.pi.halton.sample_inside`."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    library = _get_library()
    inside = library.halton_count_inside(offset, count)
    return int(inside), count


def halton_points_ctypes(offset: int, count: int):
    """The raw points, for sequence-level testing."""
    import numpy as np

    if count < 0:
        raise ValueError("count must be non-negative")
    library = _get_library()
    buffer = np.empty(2 * count, dtype=np.float64)
    library.halton_points(
        offset,
        count,
        buffer.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
    )
    return buffer[0::2], buffer[1::2]


def measure_ctypes_rate(samples: int = 5_000_000) -> float:
    """Measured C-kernel sampling rate (points/second), best of 3."""
    import time

    count_inside_ctypes(0, min(samples, 100_000))  # warm the loader
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        count_inside_ctypes(0, samples)
        best = min(best, time.perf_counter() - started)
    return samples / best if best > 0 else float("inf")
