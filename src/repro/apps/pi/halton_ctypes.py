"""The paper's actual Fig 3b mechanism: a C inner loop via ctypes.

"Python makes it easy to rework existing code so that performance
critical parts of an application, such as the inner loop of our map
tasks, can be rewritten in C ... we use Python's ctypes module to call
a C function instead of the pure Python implementation of the Halton
sequence" (section V-B).

The C source lives next to this module (``_halton.c``); it is compiled
on demand with the system compiler into a per-user cache and loaded
with :mod:`ctypes`.  Environments without a compiler fall back to the
vectorized NumPy kernel (see DESIGN.md's substitution table) — call
:func:`is_available` to find out which world you are in.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional, Tuple

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_halton.c")

#: -ffp-contract=off forbids FMA contraction so x*x + y*y rounds the
#: same way CPython does — results stay bit-identical to the pure
#: Python kernel.
_CFLAGS = ["-O2", "-ffp-contract=off", "-shared", "-fPIC"]

_lock = threading.Lock()
_library: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None


class CompilerUnavailable(RuntimeError):
    """No working C compiler (or compilation failed)."""


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        for directory in os.environ.get("PATH", "").split(os.pathsep):
            candidate = os.path.join(directory, name)
            if os.access(candidate, os.X_OK):
                return candidate
    return None


def _build_library() -> ctypes.CDLL:
    compiler = _find_compiler()
    if compiler is None:
        raise CompilerUnavailable("no C compiler on PATH")
    with open(_SOURCE_PATH, "rb") as f:
        source = f.read()
    tag = hashlib.sha256(source + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro_halton_{os.getuid()}"
    )
    os.makedirs(cache_dir, exist_ok=True)
    so_path = os.path.join(cache_dir, f"halton_{tag}.so")
    if not os.path.exists(so_path):
        build_path = so_path + f".build{os.getpid()}"
        command = [compiler, *_CFLAGS, "-o", build_path, _SOURCE_PATH]
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            raise CompilerUnavailable(
                f"compilation failed: {result.stderr.strip()}"
            )
        os.replace(build_path, so_path)  # atomic against racers
    library = ctypes.CDLL(so_path)
    library.halton_count_inside.restype = ctypes.c_int64
    library.halton_count_inside.argtypes = [ctypes.c_int64, ctypes.c_int64]
    library.halton_points.restype = None
    library.halton_points.argtypes = [
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
    ]
    return library


def _get_library() -> ctypes.CDLL:
    global _library, _load_error
    with _lock:
        if _library is not None:
            return _library
        if _load_error is not None:
            raise CompilerUnavailable(_load_error)
        try:
            _library = _build_library()
            return _library
        except CompilerUnavailable as exc:
            _load_error = str(exc)
            raise


def is_available() -> bool:
    """True if the C kernel can be (or has been) built and loaded."""
    try:
        _get_library()
        return True
    except CompilerUnavailable:
        return False


def count_inside_ctypes(offset: int, count: int) -> Tuple[int, int]:
    """C-kernel twin of :func:`repro.apps.pi.halton.sample_inside`."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    library = _get_library()
    inside = library.halton_count_inside(offset, count)
    return int(inside), count


def halton_points_ctypes(offset: int, count: int):
    """The raw points, for sequence-level testing."""
    import numpy as np

    if count < 0:
        raise ValueError("count must be non-negative")
    library = _get_library()
    buffer = np.empty(2 * count, dtype=np.float64)
    library.halton_points(
        offset,
        count,
        buffer.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
    )
    return buffer[0::2], buffer[1::2]


def measure_ctypes_rate(samples: int = 5_000_000) -> float:
    """Measured C-kernel sampling rate (points/second), best of 3."""
    import time

    count_inside_ctypes(0, min(samples, 100_000))  # warm the loader
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        count_inside_ctypes(0, samples)
        best = min(best, time.perf_counter() - started)
    return samples / best if best > 0 else float("inf")
