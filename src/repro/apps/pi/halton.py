"""Pure-Python Halton sequence, optimized like the paper's.

"In all languages, the implementation of the Halton sequence is
optimized to minimize the number of function calls and the number of
comparison operations."  This port mirrors the incremental algorithm in
Hadoop's PiEstimator: instead of recomputing the radical inverse from
scratch per index (O(log i) divisions), it keeps the digit expansion of
the current index and updates the value with carries — amortized O(1)
work per point, no per-point function calls in the hot loop.

The sequence is 2-D: base 2 for x, base 3 for y.  Halton points cover
the unit square far more evenly than pseudo-random points, which makes
the pi estimate converge faster (the paper's rationale for using them).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: Bases for the two dimensions (co-prime, the classic choice).
BASES = (2, 3)

#: Enough digits for indices up to base**K - 1; 63 base-2 digits and 40
#: base-3 digits cover any 63-bit index.
_K = {2: 63, 3: 40}


def radical_inverse(base: int, index: int) -> float:
    """Van der Corput radical inverse of ``index`` in ``base``.

    The direct (non-incremental) definition — used by tests as the
    ground truth for the incremental implementation.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    inverse = 0.0
    factor = 1.0 / base
    while index:
        index, digit = divmod(index, base)
        inverse += digit * factor
        factor /= base
    return inverse


class HaltonSequence:
    """Incremental 2-D Halton point generator.

    Equivalent to ``(radical_inverse(2, i), radical_inverse(3, i))``
    for i = start, start+1, ... but with O(1) amortized update.
    """

    __slots__ = ("index", "_digits", "_values", "_weights")

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("start must be non-negative")
        self.index = start
        self._digits: List[List[int]] = []
        self._values: List[float] = []
        self._weights: List[List[float]] = []
        for base in BASES:
            k = _K[base]
            digits = [0] * k
            weights = [1.0 / base ** (j + 1) for j in range(k)]
            value = 0.0
            i = start
            j = 0
            while i:
                i, digit = divmod(i, base)
                digits[j] = digit
                value += digit * weights[j]
                j += 1
            self._digits.append(digits)
            self._values.append(value)
            self._weights.append(weights)

    def next_point(self) -> Tuple[float, float]:
        """Return the point for the current index and advance."""
        x = self._values[0]
        y = self._values[1]
        self.index += 1
        # Increment the digit expansions with carry propagation; the
        # value is patched in place rather than recomputed.
        for dim, base in enumerate(BASES):
            digits = self._digits[dim]
            weights = self._weights[dim]
            value = self._values[dim]
            j = 0
            while True:
                digit = digits[j] + 1
                if digit < base:
                    digits[j] = digit
                    value += weights[j]
                    break
                # Carry: this digit wraps to zero.
                digits[j] = 0
                value -= (base - 1) * weights[j]
                j += 1
            self._values[dim] = value
        return x, y

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        while True:
            yield self.next_point()


def sample_inside(offset: int, count: int) -> Tuple[int, int]:
    """Count Halton points in [offset, offset+count) inside the unit
    quarter circle.  Returns ``(inside, count)``.

    This is the pure-Python hot loop of the pi map task; everything is
    inlined (no per-point calls except the generator method) per the
    paper's optimization note.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    sequence = HaltonSequence(offset)
    inside = 0
    next_point = sequence.next_point
    for _ in range(count):
        x, y = next_point()
        if x * x + y * y <= 1.0:
            inside += 1
    return inside, count


def measure_python_rate(samples: int = 200_000) -> float:
    """Measured pure-Python sampling rate (points/second).

    Benchmarks use this to convert sample counts into expected task
    seconds when reporting the Fig 3 crossover.
    """
    import time

    started = time.perf_counter()
    sample_inside(0, samples)
    elapsed = time.perf_counter() - started
    return samples / elapsed if elapsed > 0 else float("inf")
