"""Monte Carlo pi estimation with Halton sequences (Fig 3).

The paper's second benchmark is Hadoop's PiEstimator ported to Mrs:
sample quasi-random points from a 2-D Halton sequence, count how many
fall inside the unit quarter-circle, and estimate pi as four times the
ratio.  Three inner-loop kernels reproduce the paper's three series:

* :func:`repro.apps.pi.halton.HaltonSequence` — optimized pure Python
  (Fig 3a's "Mrs with Python").
* :func:`repro.apps.pi.halton_numpy.halton_points` — vectorized NumPy,
  standing in for the paper's ctypes C module (Fig 3b).
* The modeled Java rate in :mod:`repro.hadoopsim.costmodel` (the
  Hadoop series in both figures).
"""

from repro.apps.pi.halton import HaltonSequence, radical_inverse, sample_inside
from repro.apps.pi.halton_numpy import halton_points, count_inside_numpy
from repro.apps.pi.estimator import PiEstimator, estimate_pi_serial

__all__ = [
    "HaltonSequence",
    "radical_inverse",
    "sample_inside",
    "halton_points",
    "count_inside_numpy",
    "PiEstimator",
    "estimate_pi_serial",
]
