/* The paper's C inner loop for the pi estimator (Fig 3b).
 *
 * Incremental 2-D Halton generator (bases 2 and 3) with the point
 * test fused into the loop; mirrors the Python implementation in
 * halton.py operation-for-operation so results are bit-identical
 * (compile with -ffp-contract=off to forbid FMA contraction, which
 * would round x*x + y*y differently from CPython).
 *
 * Called from Python through ctypes: "we use Python's ctypes module
 * to call a C function instead of the pure Python implementation of
 * the Halton sequence" (section V-B).
 */

#include <stdint.h>

#define K2 63
#define K3 40

typedef struct {
    int digits2[K2];
    int digits3[K3];
    double weights2[K2];
    double weights3[K3];
    double x;
    double y;
} halton_state;

static void init_dim(int base, int k, int64_t start, int *digits,
                     double *weights, double *value) {
    /* weights[j] = 1.0 / base**(j+1) with a single correctly-rounded
     * division per weight — exactly how the Python kernel computes
     * them.  Accumulating w /= base instead compounds rounding and
     * drifts from Python by an ulp after long carry chains.  The
     * largest power needed (3**40, 2**63) fits in uint64_t. */
    uint64_t power = 1;
    int64_t i = start;
    int j;
    *value = 0.0;
    for (j = 0; j < k; j++) {
        digits[j] = 0;
        power *= (uint64_t)base;
        weights[j] = 1.0 / (double)power;
    }
    j = 0;
    while (i > 0) {
        int digit = (int)(i % base);
        i /= base;
        digits[j] = digit;
        *value += digit * weights[j];
        j++;
    }
}

static double advance(int base, int k, int *digits, const double *weights,
                      double value) {
    int j;
    for (j = 0; j < k; j++) {
        int digit = digits[j] + 1;
        if (digit < base) {
            digits[j] = digit;
            return value + weights[j];
        }
        digits[j] = 0;
        value -= (base - 1) * weights[j];
    }
    return value;
}

void halton_init(halton_state *state, int64_t start) {
    init_dim(2, K2, start, state->digits2, state->weights2, &state->x);
    init_dim(3, K3, start, state->digits3, state->weights3, &state->y);
}

/* Count points with index in [offset, offset+count) that fall inside
 * the unit quarter circle. */
int64_t halton_count_inside(int64_t offset, int64_t count) {
    halton_state state;
    int64_t inside = 0;
    int64_t n;
    halton_init(&state, offset);
    for (n = 0; n < count; n++) {
        double x = state.x;
        double y = state.y;
        if (x * x + y * y <= 1.0) {
            inside++;
        }
        state.x = advance(2, K2, state.digits2, state.weights2, state.x);
        state.y = advance(3, K3, state.digits3, state.weights3, state.y);
    }
    return inside;
}

/* Fill points[0..2*count) with (x, y) pairs — used by tests to check
 * the sequence itself, not just the counts. */
void halton_points(int64_t offset, int64_t count, double *points) {
    halton_state state;
    int64_t n;
    halton_init(&state, offset);
    for (n = 0; n < count; n++) {
        points[2 * n] = state.x;
        points[2 * n + 1] = state.y;
        state.x = advance(2, K2, state.digits2, state.weights2, state.x);
        state.y = advance(3, K3, state.digits3, state.weights3, state.y);
    }
}
