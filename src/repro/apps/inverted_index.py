"""Inverted index: the other canonical MapReduce example.

From the original MapReduce paper (the paper's reference [1]): map
emits ``(word, document)`` for each token, reduce sorts and dedupes the
posting list.  Compared to WordCount this exercises non-numeric reduce
output (lists), a combiner whose output type matches its input, and
per-document provenance — the input key must carry *which file* a line
came from, so this program overrides ``input_data`` to tag lines with
their document id via one extra identity-ish map.

    python -m repro.apps.inverted_index corpus_dir out_dir
"""

from __future__ import annotations

import os
from typing import Any, Iterator, List, Tuple

import repro as mrs
from repro.core.program import expand_input_paths


class InvertedIndex(mrs.MapReduce):
    """word -> sorted list of documents containing it."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        #: document id -> basename, fixed at input time.
        self.documents: List[str] = []

    def tag_document(self, key: Any, value: Tuple[str, str]) -> Iterator[Tuple[str, str]]:
        """(doc_name, line) records out of the per-file read stage."""
        doc_name, line = value
        yield (doc_name, line)

    def map(self, key: Any, value: Tuple[str, str]) -> Iterator[Tuple[str, str]]:
        doc_name, line = key, value
        for word in line.split():
            yield (word, doc_name)

    def combine(self, key: str, values: Iterator[str]) -> Iterator[str]:
        """Local dedupe: one posting per (word, doc) per map task."""
        for doc in sorted(set(values)):
            yield doc

    def reduce(self, key: str, values: Iterator[str]) -> Iterator[List[str]]:
        yield sorted(set(values))

    def read_documents(self, job: mrs.Job):
        """One record per line, keyed by the owning document."""
        paths = expand_input_paths(self.args[:-1])
        records = []
        for path in paths:
            doc_name = os.path.basename(path)
            self.documents.append(doc_name)
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                for line in f:
                    records.append((doc_name, line.rstrip("\n")))
        return job.local_data(records, splits=max(1, len(paths)))

    def run(self, job: mrs.Job) -> int:
        source = self.read_documents(job)
        postings = job.map_data(source, self.map, combiner=self.combine)
        output = job.reduce_data(
            postings, self.reduce, outdir=self.output_dir, format="txt"
        )
        job.wait(output)
        self.output_data = output
        return 0

    def bypass(self) -> int:
        """Plain dict-of-sets implementation for diffing."""
        paths = expand_input_paths(self.args[:-1])
        index = {}
        for path in paths:
            doc_name = os.path.basename(path)
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                for line in f:
                    for word in line.split():
                        index.setdefault(word, set()).add(doc_name)
        self.bypass_index = {
            word: sorted(docs) for word, docs in index.items()
        }
        return 0


def output_index(program) -> dict:
    """Collect a finished run's output as {word: [docs]}."""
    return dict(program.output_data.iterdata())


if __name__ == "__main__":
    mrs.exit_main(InvertedIndex)
