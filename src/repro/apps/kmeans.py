"""k-means clustering as iterative MapReduce.

The paper's introduction lists k-means among the iterative algorithms
MapReduce has been applied to (reference [2]).  This program is a
second exercise of the iterative API with a different dataflow shape
than PSO: the model (centroids) must reach every map task each
iteration.  We ship the current centroids inside each record — the
simplest scheme that behaves identically in every implementation,
including distributed slaves that share nothing with the master but
the data plane.  (Production codes broadcast the model via a shared
file; the per-record copy is fine at example scale and keeps the
cross-implementation equivalence property trivially true.)

map((point_id, (point, centroids))) -> (nearest_index, (point, 1))
reduce(index, partials)            -> (sum_vector, count)
"""

from __future__ import annotations

import os
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

import repro as mrs

#: Stream namespaces (shared with nothing else).
DATA_STREAM = 10
INIT_STREAM = 11


def generate_blobs(
    n_points: int,
    n_clusters: int,
    dims: int,
    rng: np.random.Generator,
    spread: float = 0.5,
    box: float = 10.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs with uniformly placed true centers.

    Returns ``(points, true_centers)``.
    """
    centers = rng.uniform(-box, box, size=(n_clusters, dims))
    assignments = rng.integers(0, n_clusters, size=n_points)
    points = centers[assignments] + rng.normal(0.0, spread, size=(n_points, dims))
    return points, centers


def nearest_centroid(point: np.ndarray, centroids: np.ndarray) -> int:
    deltas = centroids - point
    return int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))


class KMeans(mrs.MapReduce):
    """Lloyd's algorithm over a synthetic blob dataset."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.n_points = getattr(opts, "km_points", 1000)
        self.n_clusters = getattr(opts, "km_clusters", 4)
        self.dims = getattr(opts, "km_dims", 2)
        self.max_iters = getattr(opts, "km_iters", 20)
        self.tolerance = getattr(opts, "km_tol", 1e-4)
        self.splits_override = getattr(opts, "km_splits", 0)
        self.centroids: Optional[np.ndarray] = None
        #: Max centroid movement per iteration.
        self.shift_history: List[float] = []
        self.iterations_run = 0
        self.inertia = float("nan")

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument("--km-points", dest="km_points", type=int, default=1000)
        parser.add_argument("--km-clusters", dest="km_clusters", type=int, default=4)
        parser.add_argument("--km-dims", dest="km_dims", type=int, default=2)
        parser.add_argument("--km-iters", dest="km_iters", type=int, default=20)
        parser.add_argument("--km-tol", dest="km_tol", type=float, default=1e-4)
        parser.add_argument(
            "--km-splits", dest="km_splits", type=int, default=0,
            help="map task count (0 = implementation default; pin it "
            "to make floating-point sums identical across "
            "implementations with different default parallelism)",
        )
        return parser

    # -- data ---------------------------------------------------------------

    def make_points(self) -> np.ndarray:
        rng = self.numpy_random(DATA_STREAM)
        points, _ = generate_blobs(
            self.n_points, self.n_clusters, self.dims, rng
        )
        return points

    def initial_centroids(self, points: np.ndarray) -> np.ndarray:
        rng = self.numpy_random(INIT_STREAM)
        indices = rng.choice(len(points), size=self.n_clusters, replace=False)
        return points[indices].copy()

    # -- MapReduce functions ----------------------------------------------------

    def map(
        self, key: int, value: Tuple[np.ndarray, np.ndarray]
    ) -> Iterator[Tuple[int, Tuple[np.ndarray, int]]]:
        point, centroids = value
        yield (nearest_centroid(point, centroids), (point.copy(), 1))

    def combine(
        self, key: int, values: Iterator[Tuple[np.ndarray, int]]
    ) -> Iterator[Tuple[np.ndarray, int]]:
        """Partial-sum combiner: (sum_vector, count)."""
        total = None
        count = 0
        for vector, n in values:
            total = vector.copy() if total is None else total + vector
            count += n
        if count:
            yield (total, count)

    # The reduce *is* the combiner (associative partial sums), exactly
    # like WordCount.
    reduce = combine

    # -- driver --------------------------------------------------------------------

    def run(self, job: mrs.Job) -> int:
        points = self.make_points()
        self.centroids = self.initial_centroids(points)
        splits = self.splits_override or max(2, job.backend.default_splits)
        for _ in range(self.max_iters):
            source = job.local_data(
                [(i, (p, self.centroids)) for i, p in enumerate(points)],
                splits=splits,
            )
            intermediate = job.map_data(
                source, self.map, splits=self.n_clusters,
                combiner=self.combine, affinity_group="km_assign",
            )
            output = job.reduce_data(
                intermediate, self.reduce, splits=self.n_clusters,
                affinity_group="km_update",
            )
            job.wait(output)
            new_centroids = self.centroids.copy()
            for index, (total, count) in output.data():
                new_centroids[index] = total / count
            shift = float(np.abs(new_centroids - self.centroids).max())
            self.centroids = new_centroids
            self.shift_history.append(shift)
            self.iterations_run += 1
            job.remove_data(intermediate)
            job.remove_data(output)
            if shift <= self.tolerance:
                break
        self.inertia = inertia(points, self.centroids)
        return 0

    def bypass(self) -> int:
        """Plain NumPy Lloyd iterations, same seeds and update rule."""
        points = self.make_points()
        self.centroids = self.initial_centroids(points)
        for _ in range(self.max_iters):
            distances = (
                (points[:, None, :] - self.centroids[None, :, :]) ** 2
            ).sum(axis=2)
            nearest = distances.argmin(axis=1)
            new_centroids = self.centroids.copy()
            for index in range(self.n_clusters):
                members = points[nearest == index]
                if len(members):
                    new_centroids[index] = members.sum(axis=0) / len(members)
            shift = float(np.abs(new_centroids - self.centroids).max())
            self.centroids = new_centroids
            self.shift_history.append(shift)
            self.iterations_run += 1
            if shift <= self.tolerance:
                break
        self.inertia = inertia(points, self.centroids)
        return 0


class KMeansFile(KMeans):
    """KMeans that also writes its final model to the output directory
    (last positional arg) — gives CLI/service runs a file artifact that
    can be byte-compared across implementations."""

    def _write_model(self) -> None:
        outdir = self.output_dir
        if not outdir or self.centroids is None:
            return
        os.makedirs(outdir, exist_ok=True)
        with open(os.path.join(outdir, "centroids.txt"), "w") as f:
            for row in self.centroids:
                f.write(" ".join(f"{x:.6f}" for x in row) + "\n")
            f.write(f"iterations\t{self.iterations_run}\n")
            f.write(f"inertia\t{self.inertia:.6f}\n")

    def run(self, job: mrs.Job) -> int:
        status = super().run(job)
        if status in (None, 0):
            self._write_model()
        return status

    def bypass(self) -> int:
        status = super().bypass()
        if status in (None, 0):
            self._write_model()
        return status


def inertia(points: np.ndarray, centroids: np.ndarray) -> float:
    """Sum of squared distances to the nearest centroid."""
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return float(distances.min(axis=1).sum())


if __name__ == "__main__":
    mrs.exit_main(KMeans)
