"""Island-model genetic algorithm as iterative MapReduce.

The paper's introduction cites MRPGA ("an extension of MapReduce for
parallelizing genetic algorithms", reference [4]).  The island model is
the GA twin of the Apiary PSO topology: each map task evolves one
island's population through several generations (selection, uniform
crossover, Gaussian mutation), then emits a few *migrants* to the next
island around a ring; the reduce merges migrants into the destination
island.  The same framework machinery carries both: reducemap fusion,
iteration affinity, offset-keyed pseudorandom streams, bit-identical
serial/parallel trajectories.

Fitness: minimize one of the :mod:`repro.apps.pso.functions`
benchmarks (shared with PSO so results are comparable).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

import repro as mrs
from repro.apps.pso.functions import Benchmark, get_function
from repro.apps.pso.topology import apiary_outgoing

#: Stream namespaces.
INIT_STREAM = 40
EVOLVE_STREAM = 41

STATE_TAG = "island"
MIGRANT_TAG = "migrants"

#: Fraction of an island's population replaced by migrants.
MIGRATION_FRACTION = 0.2
#: Tournament size for selection.
TOURNAMENT = 3
#: Per-gene crossover probability (uniform crossover).
CROSSOVER_P = 0.5
#: Per-gene mutation probability and scale.
MUTATION_P = 0.1


class IslandState:
    """One island's population and fitness values."""

    __slots__ = ("island", "generation", "genomes", "fitness", "evals")

    def __init__(self, island: int, genomes: np.ndarray, fitness: np.ndarray):
        self.island = island
        self.generation = 0
        self.genomes = genomes
        self.fitness = fitness
        self.evals = int(fitness.size)

    def copy(self) -> "IslandState":
        fresh = IslandState.__new__(IslandState)
        fresh.island = self.island
        fresh.generation = self.generation
        fresh.genomes = self.genomes.copy()
        fresh.fitness = self.fitness.copy()
        fresh.evals = self.evals
        return fresh

    @property
    def best_fitness(self) -> float:
        return float(self.fitness.min())

    def best_genome(self) -> np.ndarray:
        return self.genomes[int(np.argmin(self.fitness))].copy()

    def __repr__(self) -> str:
        return (
            f"IslandState(island={self.island}, gen={self.generation}, "
            f"best={self.best_fitness:.4g})"
        )


def tournament_select(
    fitness: np.ndarray, rng: np.random.Generator, k: int = TOURNAMENT
) -> int:
    """Index of the fittest of k uniformly drawn candidates."""
    candidates = rng.integers(0, fitness.size, size=k)
    return int(candidates[np.argmin(fitness[candidates])])


def evolve_island(
    state: IslandState,
    function: Benchmark,
    generations: int,
    rng: np.random.Generator,
) -> None:
    """Advance an island in place through ``generations`` generations."""
    lo, hi = function.bounds
    scale = (hi - lo) * 0.05
    population, fitness = state.genomes, state.fitness
    n, dims = population.shape
    for _ in range(generations):
        offspring = np.empty_like(population)
        for child in range(n):
            mother = population[tournament_select(fitness, rng)]
            father = population[tournament_select(fitness, rng)]
            mask = rng.random(dims) < CROSSOVER_P
            genome = np.where(mask, mother, father)
            mutate = rng.random(dims) < MUTATION_P
            genome = genome + mutate * rng.normal(0.0, scale, dims)
            offspring[child] = np.clip(genome, lo, hi)
        offspring_fitness = np.array(
            [function.evaluate(genome) for genome in offspring]
        )
        state.evals += n
        # Elitism: keep the best parent alive by replacing the worst child.
        best_parent = int(np.argmin(fitness))
        worst_child = int(np.argmax(offspring_fitness))
        if fitness[best_parent] < offspring_fitness[worst_child]:
            offspring[worst_child] = population[best_parent]
            offspring_fitness[worst_child] = fitness[best_parent]
        population[:] = offspring
        fitness[:] = offspring_fitness
        state.generation += 1


def merge_migrants(
    state: IslandState,
    migrants: np.ndarray,
    migrant_fitness: np.ndarray,
) -> None:
    """Replace the island's worst members with incoming migrants."""
    if len(migrant_fitness) == 0:
        return
    worst = np.argsort(state.fitness)[-len(migrant_fitness):]
    state.genomes[worst] = migrants
    state.fitness[worst] = migrant_fitness


class IslandGA(mrs.IterativeMR):
    """Genetic algorithm over a ring of islands."""

    iterative_qmax = 2

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.function: Benchmark = get_function(
            getattr(opts, "ga_function", "rastrigin"),
            getattr(opts, "ga_dims", 20),
        )
        self.n_islands = getattr(opts, "ga_islands", 4)
        self.pop_per_island = getattr(opts, "ga_pop", 20)
        self.generations_per_round = getattr(opts, "ga_gens", 5)
        self.max_rounds = getattr(opts, "ga_rounds", 20)
        self.target = getattr(opts, "ga_target", None)
        self.convergence: List[Tuple[int, int, float, float]] = []
        self.best_fitness = float("inf")
        self.best_genome: Optional[np.ndarray] = None
        self._last_dataset = None
        self._rounds_queued = 0
        self._consumed: List[Any] = []
        self._job: Optional[mrs.Job] = None
        self._started_at: Optional[float] = None

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument("--ga-function", dest="ga_function",
                            default="rastrigin")
        parser.add_argument("--ga-dims", dest="ga_dims", type=int, default=20)
        parser.add_argument("--ga-islands", dest="ga_islands", type=int,
                            default=4)
        parser.add_argument("--ga-pop", dest="ga_pop", type=int, default=20)
        parser.add_argument("--ga-gens", dest="ga_gens", type=int, default=5)
        parser.add_argument("--ga-rounds", dest="ga_rounds", type=int,
                            default=20)
        parser.add_argument("--ga-target", dest="ga_target", type=float,
                            default=None)
        return parser

    # -- state ----------------------------------------------------------

    def initial_islands(self) -> List[Tuple[int, IslandState]]:
        lo, hi = self.function.bounds
        islands = []
        for island in range(self.n_islands):
            rng = self.numpy_random(INIT_STREAM, island)
            genomes = rng.uniform(lo, hi, (self.pop_per_island, self.function.dims))
            fitness = np.array(
                [self.function.evaluate(genome) for genome in genomes]
            )
            islands.append((island, IslandState(island, genomes, fitness)))
        return islands

    # -- MapReduce functions -----------------------------------------------

    def mod_partition(self, key: Any, n_splits: int) -> int:
        return int(key) % n_splits

    def map(self, key: int, value: IslandState) -> Iterator[Tuple[int, Tuple[str, Any]]]:
        state = value.copy()
        rng = self.numpy_random(EVOLVE_STREAM, state.island, state.generation)
        evolve_island(
            state, self.function, self.generations_per_round, rng
        )
        yield (state.island, (STATE_TAG, state))
        n_migrants = max(1, int(self.pop_per_island * MIGRATION_FRACTION))
        order = np.argsort(state.fitness)[:n_migrants]
        migrants = (state.genomes[order].copy(), state.fitness[order].copy())
        for target in apiary_outgoing(state.island, self.n_islands):
            yield (target, (MIGRANT_TAG, migrants))

    def reduce(
        self, key: int, values: Iterator[Tuple[str, Any]]
    ) -> Iterator[IslandState]:
        state: Optional[IslandState] = None
        arrivals: List[Tuple[np.ndarray, np.ndarray]] = []
        for tag, payload in values:
            if tag == STATE_TAG:
                state = payload
            elif tag == MIGRANT_TAG:
                arrivals.append(payload)
            else:
                raise ValueError(f"unknown GA record tag {tag!r}")
        if state is None:
            raise ValueError(f"no island state for key {key}")
        state = state.copy()
        for migrants, migrant_fitness in arrivals:
            merge_migrants(state, migrants, migrant_fitness)
        yield state

    # -- driver ------------------------------------------------------------------

    def producer(self, job: mrs.Job) -> List[Any]:
        self._job = job
        if self._started_at is None:
            self._started_at = time.perf_counter()
        if self._rounds_queued >= self.max_rounds:
            return []
        if self._last_dataset is None:
            source = job.local_data(
                self.initial_islands(),
                splits=self.n_islands,
                parter=lambda key, n: int(key) % n,
            )
            dataset = job.map_data(
                source, self.map, splits=self.n_islands,
                parter=self.mod_partition, affinity_group="ga_round",
            )
        else:
            dataset = job.reducemap_data(
                self._last_dataset, self.reduce, self.map,
                splits=self.n_islands, parter=self.mod_partition,
                affinity_group="ga_round",
            )
        self._last_dataset = dataset
        self._rounds_queued += 1
        return [dataset]

    def consumer(self, dataset: Any) -> bool:
        states = [
            payload for _, (tag, payload) in dataset.data()
            if tag == STATE_TAG
        ]
        for state in states:
            if state.best_fitness < self.best_fitness:
                self.best_fitness = state.best_fitness
                self.best_genome = state.best_genome()
        round_index = max(s.generation for s in states)
        evals = sum(s.evals for s in states)
        elapsed = time.perf_counter() - (self._started_at or 0.0)
        self.convergence.append(
            (round_index, evals, elapsed, self.best_fitness)
        )
        self._consumed.append(dataset)
        while len(self._consumed) > 2:
            old = self._consumed.pop(0)
            if self._job is not None and old is not self._last_dataset:
                self._job.remove_data(old)
        if self.target is not None and self.best_fitness <= self.target:
            return False
        return len(self.convergence) < self.max_rounds

    def bypass(self) -> int:
        """Identical dataflow, serially, through the same map/reduce."""
        self._started_at = time.perf_counter()
        islands: Dict[int, IslandState] = dict(self.initial_islands())
        for _ in range(self.max_rounds):
            emissions: Dict[int, List[Tuple[str, Any]]] = {
                island: [] for island in islands
            }
            for island in sorted(islands):
                for key, record in self.map(island, islands[island]):
                    emissions[key].append(record)
            islands = {
                island: next(iter(self.reduce(island, iter(emissions[island]))))
                for island in sorted(emissions)
            }
            states = list(islands.values())
            for state in states:
                if state.best_fitness < self.best_fitness:
                    self.best_fitness = state.best_fitness
                    self.best_genome = state.best_genome()
            self.convergence.append(
                (
                    max(s.generation for s in states),
                    sum(s.evals for s in states),
                    time.perf_counter() - self._started_at,
                    self.best_fitness,
                )
            )
            if self.target is not None and self.best_fitness <= self.target:
                break
        return 0


if __name__ == "__main__":
    mrs.exit_main(IslandGA)
