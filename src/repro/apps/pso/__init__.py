"""Particle Swarm Optimization as iterative MapReduce (Fig 4).

PSO "can be naturally expressed as a MapReduce program, with the map
function performing motion simulation and evaluation of the objective
function and the reduce function calculating the neighborhood best"
(section V-B, citing MRPSO).  For cheap objective functions the paper
coarsens task granularity with subswarms — the "Apiary" approach: each
map task advances one subswarm through several inner iterations, and
the reduce exchanges subswarm bests around an outer ring.

Modules:

* :mod:`repro.apps.pso.functions` — benchmark objectives (Rosenbrock
  et al.).
* :mod:`repro.apps.pso.particle` — constriction-PSO motion (Bratton &
  Kennedy's standard PSO, the paper's reference [9]).
* :mod:`repro.apps.pso.topology` — ring/star neighborhoods and the
  Apiary subswarm layout.
* :mod:`repro.apps.pso.mrpso` — the iterative MapReduce program plus a
  bit-identical serial/bypass implementation (the paper's debugging
  methodology demands all implementations agree even stochastically).
"""

from repro.apps.pso.functions import (
    FUNCTIONS,
    Ackley,
    Benchmark,
    Griewank,
    Rastrigin,
    Rosenbrock,
    Sphere,
    get_function,
)
from repro.apps.pso.particle import CONSTRICTION_CHI, PHI_PERSONAL, PHI_SOCIAL
from repro.apps.pso.topology import ring_neighbors, star_neighbors
from repro.apps.pso.mrpso import ApiaryPSO, SubswarmState, serial_apiary_pso
from repro.apps.pso.mrpso_single import ParticleState, SingleParticlePSO

__all__ = [
    "FUNCTIONS",
    "Benchmark",
    "Rosenbrock",
    "Sphere",
    "Rastrigin",
    "Griewank",
    "Ackley",
    "get_function",
    "CONSTRICTION_CHI",
    "PHI_PERSONAL",
    "PHI_SOCIAL",
    "ring_neighbors",
    "star_neighbors",
    "ApiaryPSO",
    "SubswarmState",
    "serial_apiary_pso",
    "SingleParticlePSO",
    "ParticleState",
]
