"""Apiary PSO as an iterative MapReduce program (Fig 4).

One *outer iteration* is one ReduceMap cycle:

* **map**\\ (hive_id, state): advance the hive through ``inner_iters``
  constriction-PSO steps (star neighborhood inside the hive), then
  emit the updated state to itself and a ``best`` message to the next
  hive around the Apiary ring.
* **reduce**\\ (hive_id, values): merge the hive's state with incoming
  ``best`` messages (the new neighborhood best), yielding the state
  the fused map then advances.

The driver (:class:`ApiaryPSO`, an :class:`~repro.core.IterativeMR`)
keeps two iterations in flight, so the master's convergence check runs
*in parallel* with the computation of subsequent iterations — the
paper's key iterative optimization.  The ``bypass`` implementation
replays the identical dataflow serially by calling the very same map
and reduce methods, so every implementation is bit-identical (the
paper's cross-implementation debugging methodology).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

import repro as mrs
from repro.apps.pso.functions import Benchmark, get_function
from repro.apps.pso.particle import best_of, initialize_swarm, step_swarm
from repro.apps.pso.topology import apiary_outgoing

#: Stream-namespace tags so initialization and motion never share a
#: pseudorandom stream (see core.random_streams).
INIT_STREAM = 0
MOVE_STREAM = 1

STATE_TAG = "state"
BEST_TAG = "best"


class SubswarmState:
    """The full state of one hive, shipped between map and reduce."""

    __slots__ = (
        "hive",
        "outer_iter",
        "positions",
        "velocities",
        "pbest_pos",
        "pbest_val",
        "nbest_val",
        "nbest_pos",
        "evals",
        "compute_seconds",
        "last_best",
        "stale_rounds",
    )

    def __init__(
        self,
        hive: int,
        positions: np.ndarray,
        velocities: np.ndarray,
        pbest_pos: np.ndarray,
        pbest_val: np.ndarray,
    ):
        self.hive = hive
        self.outer_iter = 0
        self.positions = positions
        self.velocities = velocities
        self.pbest_pos = pbest_pos
        self.pbest_val = pbest_val
        value, position = best_of(pbest_val, pbest_pos)
        #: Best attractor known to the hive (own best or neighbor msg).
        self.nbest_val = value
        self.nbest_pos = position
        #: Cumulative objective evaluations in this hive.
        self.evals = int(pbest_val.size)
        #: Cumulative map-side compute time (for overhead accounting).
        self.compute_seconds = 0.0
        #: Stagnation tracking for the Apiary swarming/reinit mechanic.
        self.last_best = value
        self.stale_rounds = 0

    def copy(self) -> "SubswarmState":
        """Deep-enough copy: map tasks must never mutate their input
        (in the serial runtime, input and output datasets share
        objects; an in-place update would corrupt the previous
        iteration's dataset and break cross-implementation
        equivalence)."""
        fresh = SubswarmState.__new__(SubswarmState)
        fresh.hive = self.hive
        fresh.outer_iter = self.outer_iter
        fresh.positions = self.positions.copy()
        fresh.velocities = self.velocities.copy()
        fresh.pbest_pos = self.pbest_pos.copy()
        fresh.pbest_val = self.pbest_val.copy()
        fresh.nbest_val = self.nbest_val
        fresh.nbest_pos = self.nbest_pos.copy()
        fresh.evals = self.evals
        fresh.compute_seconds = self.compute_seconds
        fresh.last_best = self.last_best
        fresh.stale_rounds = self.stale_rounds
        return fresh

    @property
    def best_val(self) -> float:
        """Best personal-best value inside the hive."""
        return float(self.pbest_val.min())

    def offer_nbest(self, value: float, position: np.ndarray) -> None:
        if value < self.nbest_val:
            self.nbest_val = float(value)
            self.nbest_pos = np.array(position, dtype=np.float64)

    def __repr__(self) -> str:
        return (
            f"SubswarmState(hive={self.hive}, iter={self.outer_iter}, "
            f"best={self.best_val:.4g}, evals={self.evals})"
        )


class ConvergenceRecord(Tuple[int, int, float, float]):
    """(outer_iteration, total_evals, elapsed_seconds, best_value)."""

    __slots__ = ()

    def __new__(cls, iteration: int, evals: int, elapsed: float, best: float):
        return super().__new__(cls, (iteration, evals, elapsed, best))

    iteration = property(lambda self: self[0])
    evals = property(lambda self: self[1])
    elapsed = property(lambda self: self[2])
    best = property(lambda self: self[3])


class ApiaryPSO(mrs.IterativeMR):
    """Particle Swarm Optimization with the Apiary subswarm topology."""

    iterative_qmax = 2

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.function: Benchmark = get_function(
            getattr(opts, "pso_function", "rosenbrock"),
            getattr(opts, "pso_dims", 250),
        )
        self.n_subswarms = getattr(opts, "pso_subswarms", 4)
        self.particles_per = getattr(opts, "pso_particles", 5)
        self.inner_iters = getattr(opts, "pso_inner", 10)
        self.max_outer = getattr(opts, "pso_outer", 50)
        self.target = getattr(opts, "pso_target", None)
        self.stagnation_limit = getattr(opts, "pso_stagnation", 0)
        self.fuse_reducemap = not getattr(opts, "pso_no_fuse", False)
        self.iterative_qmax = max(1, getattr(opts, "pso_qmax", 2))
        #: Convergence log, one record per completed outer iteration.
        self.convergence: List[ConvergenceRecord] = []
        self.best_value = float("inf")
        self.best_position: Optional[np.ndarray] = None
        self._iterations_queued = 0
        self._last_dataset = None
        self._consumed: List[Any] = []
        self._job: Optional[mrs.Job] = None
        self._started_at: Optional[float] = None
        #: Hive reinitializations performed (meaningful in in-process
        #: runs; slaves count their own copies).
        self.reinit_count = 0

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument(
            "--pso-function", dest="pso_function", default="rosenbrock",
            help="benchmark function name",
        )
        parser.add_argument(
            "--pso-dims", dest="pso_dims", type=int, default=250,
            help="problem dimensionality (paper: Rosenbrock-250)",
        )
        parser.add_argument(
            "--pso-subswarms", dest="pso_subswarms", type=int, default=4,
            help="number of Apiary hives (one map task each)",
        )
        parser.add_argument(
            "--pso-particles", dest="pso_particles", type=int, default=5,
            help="particles per hive",
        )
        parser.add_argument(
            "--pso-inner", dest="pso_inner", type=int, default=10,
            help="inner PSO iterations per map task",
        )
        parser.add_argument(
            "--pso-outer", dest="pso_outer", type=int, default=50,
            help="maximum outer (MapReduce) iterations",
        )
        parser.add_argument(
            "--pso-target", dest="pso_target", type=float, default=None,
            help="stop once the global best reaches this value",
        )
        parser.add_argument(
            "--pso-stagnation", dest="pso_stagnation", type=int, default=0,
            help="Apiary swarming: reinitialize a hive whose own best "
            "has not improved for this many outer iterations "
            "(0 = off).  The hive's best message still propagates "
            "around the ring before the reset, so knowledge is kept "
            "while diversity is restored",
        )
        parser.add_argument(
            "--pso-no-fuse", dest="pso_no_fuse", action="store_true",
            help="ablation: separate reduce and map operations per "
            "iteration instead of the fused ReduceMap (two barriers "
            "instead of one)",
        )
        parser.add_argument(
            "--pso-qmax", dest="pso_qmax", type=int, default=2,
            help="ablation: iterations kept in flight (1 disables the "
            "producer/consumer pipelining of section IV-A)",
        )
        return parser

    # -- state construction ------------------------------------------------

    def initial_states(self) -> List[Tuple[int, SubswarmState]]:
        states = []
        for hive in range(self.n_subswarms):
            rng = self.numpy_random(INIT_STREAM, hive)
            positions, velocities, pbest_pos, pbest_val = initialize_swarm(
                self.function, self.particles_per, rng
            )
            states.append(
                (hive, SubswarmState(hive, positions, velocities, pbest_pos, pbest_val))
            )
        return states

    # -- MapReduce functions --------------------------------------------------

    def mod_partition(self, key: Any, n_splits: int) -> int:
        """Keep hive *i* in split *i* so iteration affinity lines up."""
        return int(key) % n_splits

    def map(self, key: int, value: SubswarmState) -> Iterator[Tuple[int, Tuple[str, Any]]]:
        state = value.copy()
        started = time.perf_counter()
        rng = self.numpy_random(MOVE_STREAM, state.hive, state.outer_iter)
        for _ in range(self.inner_iters):
            state.evals += step_swarm(
                self.function,
                state.positions,
                state.velocities,
                state.pbest_pos,
                state.pbest_val,
                state.nbest_pos,
                rng,
            )
            # Star neighborhood inside the hive: refresh the attractor
            # after every step.
            state.offer_nbest(*best_of(state.pbest_val, state.pbest_pos))
        state.outer_iter += 1
        # Apiary swarming: a hive that stopped improving is
        # reinitialized after its best has been shared, trading the
        # stale population for fresh diversity.
        hive_best = state.best_val
        if hive_best < state.last_best:
            state.last_best = hive_best
            state.stale_rounds = 0
        else:
            state.stale_rounds += 1
        outgoing_best = (state.nbest_val, state.nbest_pos)
        if (
            self.stagnation_limit
            and state.stale_rounds >= self.stagnation_limit
        ):
            rng = self.numpy_random(
                INIT_STREAM, state.hive, state.outer_iter
            )
            positions, velocities, pbest_pos, pbest_val = initialize_swarm(
                self.function, state.pbest_val.size, rng
            )
            state.positions = positions
            state.velocities = velocities
            state.pbest_pos = pbest_pos
            state.pbest_val = pbest_val
            state.evals += int(pbest_val.size)
            state.last_best = state.best_val
            state.stale_rounds = 0
            self.reinit_count += 1
            # Keep the incoming attractor knowledge.
            state.offer_nbest(*best_of(pbest_val, pbest_pos))
        state.compute_seconds += time.perf_counter() - started
        yield (state.hive, (STATE_TAG, state))
        for target in apiary_outgoing(state.hive, self.n_subswarms):
            yield (target, (BEST_TAG, outgoing_best))

    def reduce(
        self, key: int, values: Iterator[Tuple[str, Any]]
    ) -> Iterator[SubswarmState]:
        state: Optional[SubswarmState] = None
        messages: List[Tuple[float, np.ndarray]] = []
        for tag, payload in values:
            if tag == STATE_TAG:
                state = payload
            elif tag == BEST_TAG:
                messages.append(payload)
            else:
                raise ValueError(f"unknown PSO record tag {tag!r}")
        if state is None:
            raise ValueError(f"no state record for hive {key}")
        state = state.copy()  # never mutate reduce input (see map)
        for value, position in messages:
            state.offer_nbest(value, position)
        yield state

    # -- iterative driver ---------------------------------------------------------

    def producer(self, job: mrs.Job) -> List[Any]:
        self._job = job
        if self._started_at is None:
            self._started_at = time.perf_counter()
        if self._iterations_queued >= self.max_outer:
            return []
        if self._last_dataset is None:
            source = job.local_data(
                self.initial_states(),
                splits=self.n_subswarms,
                parter=lambda key, n: int(key) % n,
                affinity_group="pso_states",
            )
            dataset = job.map_data(
                source,
                self.map,
                splits=self.n_subswarms,
                parter=self.mod_partition,
                affinity_group="pso_iter",
            )
        elif self.fuse_reducemap:
            dataset = job.reducemap_data(
                self._last_dataset,
                self.reduce,
                self.map,
                splits=self.n_subswarms,
                parter=self.mod_partition,
                affinity_group="pso_iter",
            )
        else:
            # Ablation: the classic two-barrier iteration shape.
            reduced = job.reduce_data(
                self._last_dataset,
                self.reduce,
                splits=self.n_subswarms,
                parter=self.mod_partition,
                affinity_group="pso_reduce",
            )
            dataset = job.map_data(
                reduced,
                self.map,
                splits=self.n_subswarms,
                parter=self.mod_partition,
                affinity_group="pso_iter",
            )
        self._last_dataset = dataset
        self._iterations_queued += 1
        return [dataset]

    def consumer(self, dataset: Any) -> bool:
        states = [
            payload
            for _, (tag, payload) in dataset.data()
            if tag == STATE_TAG
        ]
        iteration = max(state.outer_iter for state in states)
        total_evals = sum(state.evals for state in states)
        for state in states:
            if state.best_val < self.best_value:
                value, position = best_of(state.pbest_val, state.pbest_pos)
                self.best_value = value
                self.best_position = position
        elapsed = time.perf_counter() - (self._started_at or time.perf_counter())
        self.convergence.append(
            ConvergenceRecord(iteration, total_evals, elapsed, self.best_value)
        )
        # Release datasets no in-flight operation can still read: the
        # newest queued operation consumes self._last_dataset, so
        # anything consumed at least two rounds ago is garbage.
        self._consumed.append(dataset)
        while len(self._consumed) > 2:
            old = self._consumed.pop(0)
            if self._job is not None and old is not self._last_dataset:
                self._job.remove_data(old)
        if self.target is not None and self.best_value <= self.target:
            return False
        return iteration < self.max_outer

    # -- serial implementation (bypass) ----------------------------------------

    def bypass(self) -> int:
        """Run the identical dataflow serially through map/reduce."""
        self._started_at = time.perf_counter()
        keyed_states: Dict[int, SubswarmState] = dict(self.initial_states())
        for outer in range(self.max_outer):
            emissions: Dict[int, List[Tuple[str, Any]]] = {
                hive: [] for hive in keyed_states
            }
            for hive in sorted(keyed_states):
                for key, record in self.map(hive, keyed_states[hive]):
                    emissions[key].append(record)
            new_states: Dict[int, SubswarmState] = {}
            for hive in sorted(emissions):
                # Match the framework's reduce-input ordering: records
                # sorted by canonical key encoding, stable within key.
                (state,) = self.reduce(hive, iter(emissions[hive]))
                new_states[hive] = state
            keyed_states = new_states
            states = list(keyed_states.values())
            for state in states:
                if state.best_val < self.best_value:
                    value, position = best_of(state.pbest_val, state.pbest_pos)
                    self.best_value = value
                    self.best_position = position
            self.convergence.append(
                ConvergenceRecord(
                    outer + 1,
                    sum(s.evals for s in states),
                    time.perf_counter() - self._started_at,
                    self.best_value,
                )
            )
            if self.target is not None and self.best_value <= self.target:
                break
        return 0


def serial_apiary_pso(
    function: str = "rosenbrock",
    dims: int = 250,
    n_subswarms: int = 4,
    particles_per: int = 5,
    inner_iters: int = 10,
    max_outer: int = 50,
    target: Optional[float] = None,
    seed: int = 42,
) -> ApiaryPSO:
    """Run the bypass (serial) implementation programmatically."""
    from repro.core.main import run_program

    return run_program(
        ApiaryPSO,
        [],
        impl="bypass",
        seed=seed,
        pso_function=function,
        pso_dims=dims,
        pso_subswarms=n_subswarms,
        pso_particles=particles_per,
        pso_inner=inner_iters,
        pso_outer=max_outer,
        pso_target=target,
    )


if __name__ == "__main__":
    mrs.exit_main(ApiaryPSO)
