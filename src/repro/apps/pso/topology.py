"""Swarm topologies: who informs whom.

Classic single-swarm topologies (ring/lbest, star/gbest) plus the
paper's **Apiary** layout [McNabb & Seppi 2012]: the swarm is divided
into subswarms ("hives"); particles within a hive are fully connected
(a star), and hives communicate their best along an outer ring.  One
map task advances one hive for several *inner* iterations, so the task
granularity matches what MapReduce can schedule efficiently even when a
single function evaluation is cheap (section V-B).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def ring_neighbors(index: int, size: int, radius: int = 1) -> List[int]:
    """lbest ring: each node sees itself and ``radius`` nodes each way."""
    if size < 1:
        raise ValueError("size must be positive")
    if not 0 <= index < size:
        raise IndexError(f"index {index} out of range({size})")
    neighborhood = []
    for offset in range(-radius, radius + 1):
        neighbor = (index + offset) % size
        if neighbor not in neighborhood:
            neighborhood.append(neighbor)
    return neighborhood


def star_neighbors(index: int, size: int) -> List[int]:
    """gbest star: everyone sees everyone."""
    if size < 1:
        raise ValueError("size must be positive")
    if not 0 <= index < size:
        raise IndexError(f"index {index} out of range({size})")
    return list(range(size))


def apiary_outgoing(subswarm: int, n_subswarms: int) -> List[int]:
    """Subswarms a hive *sends its best to* each outer iteration.

    The Apiary outer topology is a directed ring: hive i informs hive
    (i+1) mod m.  With m == 1 there is no outer communication.
    """
    if n_subswarms < 1:
        raise ValueError("need at least one subswarm")
    if not 0 <= subswarm < n_subswarms:
        raise IndexError(f"subswarm {subswarm} out of range({n_subswarms})")
    if n_subswarms == 1:
        return []
    return [(subswarm + 1) % n_subswarms]


def partition_swarm(
    n_particles: int, n_subswarms: int
) -> List[Tuple[int, int]]:
    """Split ``n_particles`` into contiguous (start, count) hives.

    Sizes differ by at most one; every hive is non-empty (raises if
    there are more hives than particles).
    """
    if n_subswarms < 1:
        raise ValueError("need at least one subswarm")
    if n_particles < n_subswarms:
        raise ValueError(
            f"cannot split {n_particles} particles into {n_subswarms} "
            "non-empty subswarms"
        )
    base, extra = divmod(n_particles, n_subswarms)
    out = []
    start = 0
    for i in range(n_subswarms):
        count = base + (1 if i < extra else 0)
        out.append((start, count))
        start += count
    return out


def coverage(neighbor_fn, size: int) -> bool:
    """True if the union of all neighborhoods covers every node
    (sanity check used by tests)."""
    seen = set()
    for i in range(size):
        seen.update(neighbor_fn(i, size))
    return seen == set(range(size))
