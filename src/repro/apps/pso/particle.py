"""Constriction PSO motion (standard PSO per Bratton & Kennedy 2007,
the paper's reference [9]).

Velocity update with Clerc's constriction coefficient:

    v <- chi * (v + phi_p*u1*(pbest - x) + phi_s*u2*(nbest - x))
    x <- x + v

with chi = 0.72984, phi_p = phi_s = 2.05 (phi = 4.1 total).  Personal
bests are only updated for in-bounds positions ("let them fly" boundary
handling), which is the standard-PSO recommendation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.apps.pso.functions import Benchmark

#: Clerc constriction coefficient for phi = 4.1.
CONSTRICTION_CHI = 0.72984
PHI_PERSONAL = 2.05
PHI_SOCIAL = 2.05


def velocity_update(
    velocity: np.ndarray,
    position: np.ndarray,
    pbest: np.ndarray,
    nbest: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One constriction velocity update; draws 2 uniform vectors."""
    u_personal = rng.random(position.shape)
    u_social = rng.random(position.shape)
    return CONSTRICTION_CHI * (
        velocity
        + PHI_PERSONAL * u_personal * (pbest - position)
        + PHI_SOCIAL * u_social * (nbest - position)
    )


def step_swarm(
    function: Benchmark,
    positions: np.ndarray,
    velocities: np.ndarray,
    pbest_pos: np.ndarray,
    pbest_val: np.ndarray,
    nbest_pos: np.ndarray,
    rng: np.random.Generator,
) -> int:
    """Advance a whole (sub)swarm one iteration **in place**.

    ``positions``/``velocities``/``pbest_pos`` are (s, d) arrays;
    ``pbest_val`` is (s,); ``nbest_pos`` is the (d,) attractor each
    particle uses this step (the subswarm best under the Apiary star
    neighborhood).  Returns the number of objective evaluations
    actually performed (out-of-bounds particles are not evaluated).

    Particles are processed in index order drawing from the single
    ``rng`` stream, so a serial re-execution with the same stream is
    bit-identical — the cross-implementation equivalence the paper's
    debugging methodology relies on.
    """
    n_particles = positions.shape[0]
    evaluations = 0
    for i in range(n_particles):
        velocities[i] = velocity_update(
            velocities[i], positions[i], pbest_pos[i], nbest_pos, rng
        )
        positions[i] = positions[i] + velocities[i]
        if function.in_bounds(positions[i]):
            value = function.evaluate(positions[i])
            evaluations += 1
            if value < pbest_val[i]:
                pbest_val[i] = value
                pbest_pos[i] = positions[i]
    return evaluations


def best_of(pbest_val: np.ndarray, pbest_pos: np.ndarray) -> Tuple[float, np.ndarray]:
    """The (value, position) of the best personal best in a swarm."""
    index = int(np.argmin(pbest_val))
    return float(pbest_val[index]), pbest_pos[index].copy()


def initialize_swarm(
    function: Benchmark,
    n_particles: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random positions/velocities and evaluated initial personal bests.

    Returns ``(positions, velocities, pbest_pos, pbest_val)``.
    """
    if n_particles < 1:
        raise ValueError("need at least one particle")
    d = function.dims
    positions = np.empty((n_particles, d))
    velocities = np.empty((n_particles, d))
    for i in range(n_particles):
        positions[i] = function.random_position(rng)
        velocities[i] = function.random_velocity(rng)
    pbest_pos = positions.copy()
    pbest_val = np.array([function.evaluate(p) for p in positions])
    return positions, velocities, pbest_pos, pbest_val
