"""Benchmark objective functions.

The paper's headline PSO experiment optimizes "the well-known
Rosenbrock benchmark function in 250 dimensions ('Rosenbrock-250')".
We implement the standard suite used in the PSO literature (Bratton &
Kennedy 2007) so ablations can vary the landscape.  All functions are
minimization problems with optimum value 0.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple, Type

import numpy as np


class Benchmark:
    """Base class: a d-dimensional minimization problem.

    Subclasses define ``bounds`` (symmetric search-space box) and
    ``evaluate``.  Initialization uses the standard asymmetric scheme
    (upper half of the space) to avoid center bias — but we keep the
    plain symmetric box by default for simplicity and determinism;
    the choice is irrelevant to the paper's overhead claims.
    """

    #: (lower, upper) per coordinate; override per function.
    bounds: Tuple[float, float] = (-100.0, 100.0)
    name = "benchmark"

    def __init__(self, dims: int):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims

    def evaluate(self, x: np.ndarray) -> float:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.dims,):
            raise ValueError(
                f"{self.name} expects shape ({self.dims},), got {x.shape}"
            )
        return float(self.evaluate(x))

    def in_bounds(self, x: np.ndarray) -> bool:
        lo, hi = self.bounds
        return bool(np.all(x >= lo) and np.all(x <= hi))

    def random_position(self, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.bounds
        return rng.uniform(lo, hi, self.dims)

    def random_velocity(self, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.bounds
        span = hi - lo
        return rng.uniform(-span, span, self.dims) * 0.5

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dims={self.dims})"


class Sphere(Benchmark):
    """f(x) = sum(x_i^2); the simplest unimodal baseline."""

    name = "sphere"
    bounds = (-100.0, 100.0)

    def evaluate(self, x: np.ndarray) -> float:
        return float(np.dot(x, x))


class Rosenbrock(Benchmark):
    """The banana valley: hard for PSO in high dimensions — the
    paper's Rosenbrock-250 workload."""

    name = "rosenbrock"
    bounds = (-30.0, 30.0)

    def evaluate(self, x: np.ndarray) -> float:
        a = x[1:] - x[:-1] * x[:-1]
        b = 1.0 - x[:-1]
        return float(100.0 * np.dot(a, a) + np.dot(b, b))


class Rastrigin(Benchmark):
    """Highly multimodal with a regular lattice of minima."""

    name = "rastrigin"
    bounds = (-5.12, 5.12)

    def evaluate(self, x: np.ndarray) -> float:
        return float(
            10.0 * x.size + np.sum(x * x - 10.0 * np.cos(2.0 * np.pi * x))
        )


class Griewank(Benchmark):
    """Multimodal with product coupling between coordinates."""

    name = "griewank"
    bounds = (-600.0, 600.0)

    def evaluate(self, x: np.ndarray) -> float:
        indices = np.arange(1, x.size + 1, dtype=np.float64)
        return float(
            np.dot(x, x) / 4000.0
            - np.prod(np.cos(x / np.sqrt(indices)))
            + 1.0
        )


class Ackley(Benchmark):
    """Nearly flat outer region with a deep central funnel."""

    name = "ackley"
    bounds = (-32.0, 32.0)

    def evaluate(self, x: np.ndarray) -> float:
        n = x.size
        return float(
            -20.0 * np.exp(-0.2 * np.sqrt(np.dot(x, x) / n))
            - np.exp(np.sum(np.cos(2.0 * np.pi * x)) / n)
            + 20.0
            + np.e
        )


class SlowSphere(Sphere):
    """Sphere with a fixed per-evaluation delay.

    Stands in for the paper's real workload — objective functions that
    call out to an expensive simulation — so scheduler benchmarks can
    measure overlap and idle time without needing more cores than the
    machine has: a sleeping evaluation parallelizes even when compute
    would not.
    """

    name = "sphere-slow"
    #: Seconds of simulated computation per evaluation.
    delay = 0.002

    def evaluate(self, x: np.ndarray) -> float:
        time.sleep(self.delay)
        return super().evaluate(x)


FUNCTIONS: Dict[str, Type[Benchmark]] = {
    cls.name: cls
    for cls in (Sphere, Rosenbrock, Rastrigin, Griewank, Ackley, SlowSphere)
}


def get_function(name: str, dims: int) -> Benchmark:
    """Instantiate a benchmark by name (e.g. ``rosenbrock``, 250)."""
    try:
        cls = FUNCTIONS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; available: {sorted(FUNCTIONS)}"
        ) from None
    return cls(dims)
