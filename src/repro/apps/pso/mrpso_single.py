"""MRPSO: one particle per map task (the paper's reference [5]).

The original MapReduce PSO formulation, quoted directly in section V-B:
"the map function performing motion simulation and evaluation of the
objective function and the reduce function calculating the neighborhood
best by combining the updated particle with messages from its
neighbors."  Each particle is one record; neighborhoods are an lbest
ring.

This granularity is exactly what the paper then criticizes — "For
computationally trivial objective functions, task granularity can be
too fine if each map task operates on a single particle" — which is why
the Apiary subswarm variant (:mod:`repro.apps.pso.mrpso`) exists.  Both
are provided so the granularity ablation can measure the difference on
the same machinery.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

import repro as mrs
from repro.apps.pso.functions import Benchmark, get_function
from repro.apps.pso.particle import best_of, velocity_update
from repro.apps.pso.topology import ring_neighbors

#: Stream namespaces (distinct from the Apiary variant's).
INIT_STREAM = 2
MOVE_STREAM = 3

PARTICLE_TAG = "particle"
MESSAGE_TAG = "best"


class ParticleState:
    """One particle's full state."""

    __slots__ = (
        "pid", "iteration", "position", "velocity",
        "pbest_pos", "pbest_val", "nbest_pos", "nbest_val",
    )

    def __init__(self, pid: int, position: np.ndarray, velocity: np.ndarray,
                 value: float):
        self.pid = pid
        self.iteration = 0
        self.position = position
        self.velocity = velocity
        self.pbest_pos = position.copy()
        self.pbest_val = value
        self.nbest_pos = position.copy()
        self.nbest_val = value

    def copy(self) -> "ParticleState":
        fresh = ParticleState.__new__(ParticleState)
        fresh.pid = self.pid
        fresh.iteration = self.iteration
        fresh.position = self.position.copy()
        fresh.velocity = self.velocity.copy()
        fresh.pbest_pos = self.pbest_pos.copy()
        fresh.pbest_val = self.pbest_val
        fresh.nbest_pos = self.nbest_pos.copy()
        fresh.nbest_val = self.nbest_val
        return fresh

    def offer(self, value: float, position: np.ndarray) -> None:
        if value < self.nbest_val:
            self.nbest_val = float(value)
            self.nbest_pos = np.array(position, dtype=np.float64)

    def __repr__(self) -> str:
        return (
            f"ParticleState(pid={self.pid}, iter={self.iteration}, "
            f"pbest={self.pbest_val:.4g})"
        )


class SingleParticlePSO(mrs.IterativeMR):
    """lbest-ring PSO, one particle per task (MRPSO [5])."""

    iterative_qmax = 2

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.function: Benchmark = get_function(
            getattr(opts, "sp_function", "sphere"),
            getattr(opts, "sp_dims", 20),
        )
        self.n_particles = getattr(opts, "sp_particles", 20)
        self.max_iters = getattr(opts, "sp_iters", 30)
        self.target = getattr(opts, "sp_target", None)
        self.ring_radius = getattr(opts, "sp_radius", 1)
        self.convergence: List[Tuple[int, float, float]] = []
        self.best_value = float("inf")
        self.best_position: Optional[np.ndarray] = None
        self._last_dataset = None
        self._queued = 0
        self._consumed: List[Any] = []
        self._job = None
        self._started_at: Optional[float] = None

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument("--sp-function", dest="sp_function",
                            default="sphere")
        parser.add_argument("--sp-dims", dest="sp_dims", type=int, default=20)
        parser.add_argument("--sp-particles", dest="sp_particles", type=int,
                            default=20)
        parser.add_argument("--sp-iters", dest="sp_iters", type=int,
                            default=30)
        parser.add_argument("--sp-radius", dest="sp_radius", type=int,
                            default=1)
        parser.add_argument("--sp-target", dest="sp_target", type=float,
                            default=None)
        return parser

    # -- state -----------------------------------------------------------

    def initial_particles(self) -> List[Tuple[int, ParticleState]]:
        out = []
        for pid in range(self.n_particles):
            rng = self.numpy_random(INIT_STREAM, pid)
            position = self.function.random_position(rng)
            velocity = self.function.random_velocity(rng)
            value = self.function.evaluate(position)
            out.append((pid, ParticleState(pid, position, velocity, value)))
        return out

    # -- MapReduce functions ------------------------------------------------

    def mod_partition(self, key: Any, n_splits: int) -> int:
        return int(key) % n_splits

    def map(
        self, key: int, value: ParticleState
    ) -> Iterator[Tuple[int, Tuple[str, Any]]]:
        """Motion simulation + objective evaluation for ONE particle."""
        particle = value.copy()
        rng = self.numpy_random(MOVE_STREAM, particle.pid, particle.iteration)
        particle.velocity = velocity_update(
            particle.velocity,
            particle.position,
            particle.pbest_pos,
            particle.nbest_pos,
            rng,
        )
        particle.position = particle.position + particle.velocity
        if self.function.in_bounds(particle.position):
            fitness = self.function.evaluate(particle.position)
            if fitness < particle.pbest_val:
                particle.pbest_val = float(fitness)
                particle.pbest_pos = particle.position.copy()
        particle.iteration += 1
        particle.offer(particle.pbest_val, particle.pbest_pos)
        yield (particle.pid, (PARTICLE_TAG, particle))
        message = (particle.pbest_val, particle.pbest_pos)
        for neighbor in ring_neighbors(
            particle.pid, self.n_particles, self.ring_radius
        ):
            if neighbor != particle.pid:
                yield (neighbor, (MESSAGE_TAG, message))

    def reduce(
        self, key: int, values: Iterator[Tuple[str, Any]]
    ) -> Iterator[ParticleState]:
        """Combine the updated particle with its neighbors' messages."""
        particle: Optional[ParticleState] = None
        messages: List[Tuple[float, np.ndarray]] = []
        for tag, payload in values:
            if tag == PARTICLE_TAG:
                particle = payload
            elif tag == MESSAGE_TAG:
                messages.append(payload)
            else:
                raise ValueError(f"unknown record tag {tag!r}")
        if particle is None:
            raise ValueError(f"no particle record for pid {key}")
        particle = particle.copy()
        for value, position in messages:
            particle.offer(value, position)
        yield particle

    # -- driver --------------------------------------------------------------------

    def producer(self, job: mrs.Job) -> List[Any]:
        self._job = job
        if self._started_at is None:
            self._started_at = time.perf_counter()
        if self._queued >= self.max_iters:
            return []
        splits = self.n_particles
        if self._last_dataset is None:
            source = job.local_data(
                self.initial_particles(),
                splits=splits,
                parter=lambda key, n: int(key) % n,
            )
            dataset = job.map_data(
                source, self.map, splits=splits,
                parter=self.mod_partition, affinity_group="sp_iter",
            )
        else:
            dataset = job.reducemap_data(
                self._last_dataset, self.reduce, self.map,
                splits=splits, parter=self.mod_partition,
                affinity_group="sp_iter",
            )
        self._last_dataset = dataset
        self._queued += 1
        return [dataset]

    def consumer(self, dataset: Any) -> bool:
        particles = [
            payload for _, (tag, payload) in dataset.data()
            if tag == PARTICLE_TAG
        ]
        for particle in particles:
            if particle.pbest_val < self.best_value:
                self.best_value = particle.pbest_val
                self.best_position = particle.pbest_pos.copy()
        iteration = max(p.iteration for p in particles)
        elapsed = time.perf_counter() - (self._started_at or 0.0)
        self.convergence.append((iteration, elapsed, self.best_value))
        self._consumed.append(dataset)
        while len(self._consumed) > 2:
            old = self._consumed.pop(0)
            if self._job is not None and old is not self._last_dataset:
                self._job.remove_data(old)
        if self.target is not None and self.best_value <= self.target:
            return False
        return iteration < self.max_iters

    def bypass(self) -> int:
        """Identical dataflow through the same map/reduce, serially."""
        self._started_at = time.perf_counter()
        particles: Dict[int, ParticleState] = dict(self.initial_particles())
        for _ in range(self.max_iters):
            emissions: Dict[int, List[Tuple[str, Any]]] = {
                pid: [] for pid in particles
            }
            for pid in sorted(particles):
                for key, record in self.map(pid, particles[pid]):
                    emissions[key].append(record)
            particles = {
                pid: next(iter(self.reduce(pid, iter(emissions[pid]))))
                for pid in sorted(emissions)
            }
            for particle in particles.values():
                if particle.pbest_val < self.best_value:
                    self.best_value = particle.pbest_val
                    self.best_position = particle.pbest_pos.copy()
            self.convergence.append(
                (
                    max(p.iteration for p in particles.values()),
                    time.perf_counter() - self._started_at,
                    self.best_value,
                )
            )
            if self.target is not None and self.best_value <= self.target:
                break
        return 0


if __name__ == "__main__":
    mrs.exit_main(SingleParticlePSO)
