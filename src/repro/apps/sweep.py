"""Monte Carlo parameter sweeps: the prototypical scientific MapReduce.

The paper's motivation (section III) is researchers running "dynamic
research code" — typically *simulate model M at parameter p, with many
random replicates, and aggregate statistics*.  This module provides a
reusable driver for exactly that shape:

* map((param_index, replicate_range)) — run the user's simulation once
  per replicate with an independent random stream per (param,
  replicate), accumulating **streaming moments** (count, mean, M2) via
  Welford's algorithm;
* combine/reduce — merge partial moments with Chan's parallel update,
  which is associative, so any task decomposition yields the same
  statistics (up to floating-point rounding of the merge tree).

Subclass :class:`ParameterSweep` and implement ``simulate(params,
rng)`` returning a float.  The built-in demo estimates the mean path
maximum of a random walk as a function of drift.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

import repro as mrs

#: Stream namespace for replicate RNGs.
SWEEP_STREAM = 60


class Moments:
    """Streaming (count, mean, M2) with Welford update / Chan merge."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self, count: int = 0, mean: float = 0.0, m2: float = 0.0):
        self.count = count
        self.mean = mean
        self.m2 = m2

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "Moments") -> "Moments":
        """Chan et al. parallel combination; associative."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        return self

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); nan with fewer than 2 samples."""
        if self.count < 2:
            return float("nan")
        return self.m2 / (self.count - 1)

    @property
    def std_error(self) -> float:
        if self.count < 2:
            return float("nan")
        return (self.variance / self.count) ** 0.5

    def __repr__(self) -> str:
        return f"Moments(n={self.count}, mean={self.mean:.6g}, var={self.variance:.6g})"


class ParameterSweep(mrs.MapReduce):
    """Generic sweep driver; subclass and implement ``simulate``."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.replicates = getattr(opts, "sweep_replicates", 200)
        self.chunk = getattr(opts, "sweep_chunk", 50)
        #: param_index -> Moments after run().
        self.results: Dict[int, Moments] = {}

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument("--sweep-replicates", dest="sweep_replicates",
                            type=int, default=200)
        parser.add_argument("--sweep-chunk", dest="sweep_chunk", type=int,
                            default=50,
                            help="replicates per map task")
        return parser

    # -- user hook ---------------------------------------------------------

    def parameters(self) -> Sequence[Any]:
        """The parameter grid; override."""
        raise NotImplementedError

    def simulate(self, params: Any, rng: np.random.Generator) -> float:
        """One simulation replicate; override."""
        raise NotImplementedError

    # -- MapReduce functions ------------------------------------------------

    def map(
        self, key: int, value: Tuple[Any, int, int]
    ) -> Iterator[Tuple[int, Tuple[int, float, float]]]:
        params, start, stop = value
        moments = Moments()
        for replicate in range(start, stop):
            rng = self.numpy_random(SWEEP_STREAM, key, replicate)
            moments.add(float(self.simulate(params, rng)))
        yield (key, (moments.count, moments.mean, moments.m2))

    def combine(
        self, key: int, values: Iterator[Tuple[int, float, float]]
    ) -> Iterator[Tuple[int, float, float]]:
        merged = Moments()
        for count, mean, m2 in values:
            merged.merge(Moments(count, mean, m2))
        yield (merged.count, merged.mean, merged.m2)

    reduce = combine

    # -- driver --------------------------------------------------------------------

    def run(self, job: mrs.Job) -> int:
        grid = list(self.parameters())
        records = []
        for index, params in enumerate(grid):
            for start in range(0, self.replicates, self.chunk):
                stop = min(start + self.chunk, self.replicates)
                records.append((index, (params, start, stop)))
        source = job.local_data(
            records, splits=max(2, min(16, len(records))),
        )
        partials = job.map_data(
            source, self.map, splits=4, combiner=self.combine
        )
        totals = job.reduce_data(partials, self.reduce, splits=2)
        job.wait(totals)
        self.results = {
            index: Moments(*triple) for index, triple in totals.data()
        }
        self.grid = grid
        return 0

    def bypass(self) -> int:
        """Sequential replicates, same streams; merge order differs
        (single accumulation instead of a merge tree), so statistics
        agree to rounding, not bitwise."""
        grid = list(self.parameters())
        self.results = {}
        for index, params in enumerate(grid):
            moments = Moments()
            for replicate in range(self.replicates):
                rng = self.numpy_random(SWEEP_STREAM, index, replicate)
                moments.add(float(self.simulate(params, rng)))
            self.results[index] = moments
        self.grid = grid
        return 0


class RandomWalkSweep(ParameterSweep):
    """Demo: mean running maximum of a drifted random walk vs drift."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.steps = getattr(opts, "walk_steps", 100)
        self.drifts = getattr(opts, "walk_drifts", None) or [
            -0.1, -0.05, 0.0, 0.05, 0.1
        ]

    @classmethod
    def update_parser(cls, parser):
        ParameterSweep.update_parser(parser)
        parser.add_argument("--walk-steps", dest="walk_steps", type=int,
                            default=100)
        return parser

    def parameters(self) -> Sequence[float]:
        return self.drifts

    def simulate(self, drift: float, rng: np.random.Generator) -> float:
        steps = rng.normal(drift, 1.0, self.steps)
        return float(np.maximum.accumulate(np.cumsum(steps)).max())


if __name__ == "__main__":
    mrs.exit_main(RandomWalkSweep)
