"""Blocked matrix multiplication as two chained MapReduce operations.

A teaching-classic dataflow that exercises machinery none of the other
apps touch: a *union* input (both matrices tagged into one dataset),
replication in the map (each block is needed by many output blocks),
and a two-stage pipeline where the second stage aggregates the first's
partial products.

    stage 1 map((tag, r, c), block):
        A block (i, k) -> emit ((i, j, k), block) for every j
        B block (k, j) -> emit ((i, j, k), block) for every i
    stage 1 reduce((i, j, k), [A_ik, B_kj]) -> A_ik @ B_kj
    stage 2 (fused reducemap) reduce((i, j, k), [P]) -> P
            map -> ((i, j), P)        # re-key to the output block
    stage 3 reduce((i, j), partials) -> sum

Blocks are NumPy arrays; results match ``A @ B`` up to summation
order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

import repro as mrs

BlockKey = Tuple[str, int, int]   # (matrix tag, block row, block col)
TripleKey = Tuple[int, int, int]  # (i, j, k)


def split_blocks(matrix: np.ndarray, block: int) -> Dict[Tuple[int, int], np.ndarray]:
    """Partition a matrix into <=block x <=block tiles."""
    if block < 1:
        raise ValueError("block size must be >= 1")
    rows, cols = matrix.shape
    out = {}
    for i, r0 in enumerate(range(0, rows, block)):
        for j, c0 in enumerate(range(0, cols, block)):
            out[(i, j)] = matrix[r0:r0 + block, c0:c0 + block].copy()
    return out


def assemble_blocks(blocks: Dict[Tuple[int, int], np.ndarray]) -> np.ndarray:
    """Inverse of :func:`split_blocks`."""
    if not blocks:
        return np.zeros((0, 0))
    n_block_rows = 1 + max(i for i, _ in blocks)
    n_block_cols = 1 + max(j for _, j in blocks)
    rows = [
        np.concatenate(
            [blocks[(i, j)] for j in range(n_block_cols)], axis=1
        )
        for i in range(n_block_rows)
    ]
    return np.concatenate(rows, axis=0)


class BlockMatMul(mrs.MapReduce):
    """C = A @ B over tagged block records."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.block = getattr(opts, "mm_block", 32)
        #: Grid extents, set by ``multiply`` before the job runs (they
        #: ride on self only in the master; the replication counts are
        #: embedded in the records so slaves never need them).
        self.result: Optional[np.ndarray] = None

    @classmethod
    def update_parser(cls, parser):
        parser.add_argument("--mm-block", dest="mm_block", type=int, default=32)
        parser.add_argument("--mm-size", dest="mm_size", type=int, default=96,
                            help="square matrix size for the demo run")
        return parser

    # -- MapReduce functions ------------------------------------------------

    def map(
        self, key: BlockKey, value: Tuple[np.ndarray, int]
    ) -> Iterator[Tuple[TripleKey, Tuple[str, np.ndarray]]]:
        """Replicate each block to every (i, j, k) triple that needs it.

        ``value`` is ``(block, extent)`` where extent is the number of
        block-columns of B (for A blocks) or block-rows of A (for B
        blocks) — i.e. how many times to replicate.
        """
        (tag, r, c) = key
        block, extent = value
        if tag == "A":
            i, k = r, c
            for j in range(extent):
                yield ((i, j, k), ("A", block))
        elif tag == "B":
            k, j = r, c
            for i in range(extent):
                yield ((i, j, k), ("B", block))
        else:
            raise ValueError(f"unknown matrix tag {tag!r}")

    def reduce(
        self, key: TripleKey, values: Iterator[Tuple[str, np.ndarray]]
    ) -> Iterator[np.ndarray]:
        """Multiply the A and B tiles of one (i, j, k) triple."""
        a_block = b_block = None
        for tag, block in values:
            if tag == "A":
                a_block = block
            else:
                b_block = block
        if a_block is None or b_block is None:
            raise ValueError(f"triple {key} missing a factor block")
        yield a_block @ b_block

    def rekey(
        self, key: TripleKey, value: np.ndarray
    ) -> Iterator[Tuple[Tuple[int, int], np.ndarray]]:
        i, j, _ = key
        yield ((i, j), value)

    def sum_blocks(
        self, key: Tuple[int, int], values: Iterator[np.ndarray]
    ) -> Iterator[np.ndarray]:
        total = None
        for partial in values:
            total = partial.copy() if total is None else total + partial
        if total is not None:
            yield total

    # -- driver --------------------------------------------------------------------

    def multiply(self, job: mrs.Job, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if A.shape[1] != B.shape[0]:
            raise ValueError(f"shape mismatch {A.shape} @ {B.shape}")
        a_blocks = split_blocks(A, self.block)
        b_blocks = split_blocks(B, self.block)
        n_i = 1 + max(i for i, _ in a_blocks)
        n_j = 1 + max(j for _, j in b_blocks)
        records: List[Tuple[BlockKey, Tuple[np.ndarray, int]]] = []
        for (i, k), block in a_blocks.items():
            records.append((("A", i, k), (block, n_j)))
        for (k, j), block in b_blocks.items():
            records.append((("B", k, j), (block, n_i)))
        source = job.local_data(records, splits=max(2, min(8, len(records))))
        triples = job.map_data(source, self.map, splits=4)
        partials = job.reducemap_data(triples, self.reduce, self.rekey, splits=4)
        summed = job.reduce_data(partials, self.sum_blocks, splits=2)
        job.wait(summed)
        result_blocks = dict(summed.data())
        return assemble_blocks(result_blocks)

    def run(self, job: mrs.Job) -> int:
        size = getattr(self.opts, "mm_size", 96)
        rng = self.numpy_random(50)
        A = rng.normal(size=(size, size))
        B = rng.normal(size=(size, size))
        self.result = self.multiply(job, A, B)
        self.reference = A @ B
        return 0


if __name__ == "__main__":
    mrs.exit_main(BlockMatMul)
