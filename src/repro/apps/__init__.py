"""Applications from the paper's evaluation (section V).

* :mod:`repro.apps.wordcount` — Program 1, the canonical example.
* :mod:`repro.apps.pi` — the PiEstimator with Halton sequences (Fig 3).
* :mod:`repro.apps.pso` — Particle Swarm Optimization with the Apiary
  subswarm topology (Fig 4).
* :mod:`repro.apps.kmeans` — a bonus iterative workload (cited in the
  paper's introduction as a MapReduce-able scientific algorithm).
"""
