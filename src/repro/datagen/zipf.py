"""Zipf-distributed synthetic vocabulary.

Natural-language word frequencies follow Zipf's law: the r-th most
common word has probability proportional to ``1/r**s`` with s near 1.
WordCount's compute and shuffle profile (many records, few distinct
heavy keys, a long tail) depends on exactly this shape, so the
synthetic corpus samples words from a Zipf model over a generated
vocabulary.
"""

from __future__ import annotations

import string
from typing import List

import numpy as np


def zipf_weights(vocab_size: int, exponent: float = 1.05) -> np.ndarray:
    """Normalized Zipf probabilities for ranks 1..vocab_size."""
    if vocab_size < 1:
        raise ValueError("vocab_size must be >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


_LETTERS = string.ascii_lowercase


def synthetic_word(index: int) -> str:
    """A pronounceable-ish deterministic word for vocabulary rank
    ``index`` (bijective base-26 with alternating structure)."""
    # Bijective base-26: index 0 -> 'a', 25 -> 'z', 26 -> 'aa', ...
    index += 1
    letters: List[str] = []
    while index > 0:
        index, remainder = divmod(index - 1, 26)
        letters.append(_LETTERS[remainder])
    return "".join(reversed(letters))


class ZipfVocabulary:
    """A sampled vocabulary with Zipfian frequencies.

    Deterministic given (vocab_size, exponent, rng): the same stream
    always produces the same corpus — the datagen counterpart of the
    framework's random_streams discipline.
    """

    def __init__(self, vocab_size: int = 10_000, exponent: float = 1.05):
        self.vocab_size = vocab_size
        self.exponent = exponent
        self.words = [synthetic_word(i) for i in range(vocab_size)]
        self.weights = zipf_weights(vocab_size, exponent)
        self._cumulative = np.cumsum(self.weights)

    def sample_indices(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` word ranks (vectorized inverse-CDF)."""
        u = rng.random(count)
        return np.searchsorted(self._cumulative, u, side="right")

    def sample_words(self, count: int, rng: np.random.Generator) -> List[str]:
        return [self.words[i] for i in self.sample_indices(count, rng)]

    def text(self, n_words: int, rng: np.random.Generator, line_words: int = 12) -> str:
        """Generate document text: ``n_words`` tokens, fixed-ish lines."""
        tokens = self.sample_words(n_words, rng)
        lines = [
            " ".join(tokens[i : i + line_words])
            for i in range(0, len(tokens), line_words)
        ]
        return "\n".join(lines) + "\n" if lines else ""
