"""CLI: generate a synthetic Gutenberg-style corpus.

    python -m repro.datagen OUTDIR --files 312 --mean-words 1200 \
        --layout gutenberg --seed 12
"""

from __future__ import annotations

import argparse
import sys

from repro.datagen.corpus import CorpusSpec, count_dirs, generate_corpus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate a synthetic Zipf corpus in the Project "
        "Gutenberg directory layout (one directory per book)."
    )
    parser.add_argument("outdir", help="directory to create the corpus in")
    parser.add_argument("--files", type=int, default=100)
    parser.add_argument("--mean-words", type=int, default=2000)
    parser.add_argument("--sigma", type=float, default=0.6,
                        help="log-normal spread of document lengths")
    parser.add_argument("--vocab", type=int, default=10_000)
    parser.add_argument("--zipf", type=float, default=1.05,
                        help="Zipf exponent")
    parser.add_argument("--layout", choices=("gutenberg", "flat"),
                        default="gutenberg")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    spec = CorpusSpec(
        n_files=args.files,
        mean_words_per_file=args.mean_words,
        sigma=args.sigma,
        vocab_size=args.vocab,
        zipf_exponent=args.zipf,
        layout=args.layout,
        seed=args.seed,
    )
    paths = generate_corpus(args.outdir, spec)
    total_bytes = sum(len(open(p, "rb").read()) for p in paths)
    print(
        f"wrote {len(paths)} files ({total_bytes / 1e6:.1f} MB) in "
        f"{count_dirs(args.outdir)} directories under {args.outdir}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
