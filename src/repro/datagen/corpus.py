"""Synthetic Gutenberg-style corpus generation.

Project Gutenberg's mirror layout nests each ebook in its own numbered
directory (``cache/epub/<id>/pg<id>.txt`` or the older
``1/2/3/1234/1234.txt`` digit tree).  The paper found that this layout
alone makes Hadoop's input loader take nearly nine minutes on the full
corpus, while Mrs ingests an arbitrary file list unharmed.  The
generator reproduces:

* the **digit-tree layout** (``gutenberg`` mode): file ``1234.txt``
  lives at ``1/2/3/1234/1234.txt`` — one directory per book plus the
  shared digit prefix tree; and
* a **flat layout** (``flat`` mode): everything in one directory — the
  only layout the paper says Hadoop's loader is comfortable with.

Document lengths are log-normal (book sizes span orders of magnitude)
and token frequencies are Zipfian.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.random_streams import numpy_stream
from repro.datagen.zipf import ZipfVocabulary

#: Stream namespace for corpus generation.
CORPUS_STREAM = 20


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of a synthetic corpus."""

    n_files: int = 100
    mean_words_per_file: int = 2000
    #: Log-normal sigma for document length (0 = constant size).
    sigma: float = 0.6
    vocab_size: int = 10_000
    zipf_exponent: float = 1.05
    layout: str = "gutenberg"  # or "flat"
    seed: int = 0

    def __post_init__(self):
        if self.n_files < 1:
            raise ValueError("n_files must be >= 1")
        if self.layout not in ("gutenberg", "flat"):
            raise ValueError(f"unknown layout {self.layout!r}")


def gutenberg_path(root: str, book_id: int) -> str:
    """The digit-tree path for a book id, e.g. 1234 ->
    ``<root>/1/2/3/1234/1234.txt`` (ids < 10 live under ``0/``)."""
    digits = str(book_id)
    if len(digits) == 1:
        prefix = ["0"]
    else:
        prefix = list(digits[:-1])
    return os.path.join(root, *prefix, digits, f"{digits}.txt")


def flat_path(root: str, book_id: int) -> str:
    return os.path.join(root, f"{book_id}.txt")


def document_lengths(spec: CorpusSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-file token counts (log-normal, mean ≈ mean_words_per_file)."""
    if spec.sigma <= 0:
        return np.full(spec.n_files, spec.mean_words_per_file, dtype=np.int64)
    mu = np.log(spec.mean_words_per_file) - spec.sigma**2 / 2.0
    lengths = rng.lognormal(mu, spec.sigma, spec.n_files)
    return np.maximum(1, lengths.astype(np.int64))


def generate_corpus(root: str, spec: CorpusSpec) -> List[str]:
    """Write the corpus under ``root``; returns the file paths written.

    Deterministic in ``spec`` (including seed): regenerating into a
    fresh directory produces byte-identical files.
    """
    vocabulary = ZipfVocabulary(spec.vocab_size, spec.zipf_exponent)
    length_rng = numpy_stream(CORPUS_STREAM, spec.seed, 0)
    lengths = document_lengths(spec, length_rng)
    path_fn = gutenberg_path if spec.layout == "gutenberg" else flat_path
    paths: List[str] = []
    for book_id in range(1, spec.n_files + 1):
        doc_rng = numpy_stream(CORPUS_STREAM, spec.seed, 1, book_id)
        path = path_fn(root, book_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="ascii") as f:
            f.write(vocabulary.text(int(lengths[book_id - 1]), doc_rng))
        paths.append(path)
    return paths


def corpus_file_list(root: str) -> List[str]:
    """All .txt files under ``root``, sorted (deterministic input order)."""
    out: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".txt"):
                out.append(os.path.join(dirpath, name))
    return out


def count_dirs(root: str) -> int:
    """Number of directories under ``root`` (inclusive) — drives the
    Hadoop enumeration-cost comparison."""
    total = 0
    for _dirpath, _dirnames, _filenames in os.walk(root):
        total += 1
    return total
