"""Synthetic data generation.

The paper's WordCount benchmark uses the 31,173-file Project Gutenberg
corpus, which is not redistributable inside this offline reproduction.
:mod:`repro.datagen.corpus` generates a synthetic corpus matching the
two properties WordCount performance actually depends on: Zipfian token
statistics and the ragged one-directory-per-book tree layout that
defeats Hadoop's single-directory input loader (section V-B).
"""

from repro.datagen.zipf import ZipfVocabulary, zipf_weights
from repro.datagen.corpus import CorpusSpec, generate_corpus, corpus_file_list

__all__ = [
    "ZipfVocabulary",
    "zipf_weights",
    "CorpusSpec",
    "generate_corpus",
    "corpus_file_list",
]
