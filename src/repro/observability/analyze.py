"""Offline event-log analysis: critical path and slave utilization.

``python -m repro.observability.analyze events.jsonl`` reconstructs,
per job, what the cluster actually did from the crash-safe JSONL event
log (``--mrs-event-log``):

* the **critical path** — the dependency-free chain of tasks that
  bounded the job's wall clock, recovered by walking back greedily from
  the last committed task (each hop lands on the latest task that
  committed before the current one started);
* **per-slave utilization** — committed task-seconds per slave over the
  job window, i.e. how much of each slave's time the scheduler kept
  busy.

Events carry process-local ``perf_counter`` timestamps; the
coordinator re-anchors remote batches into its own clock before
logging, so all ``task.*`` events here are directly comparable.
Service-mode logs interleave jobs — rows are grouped by the ``job-N.``
dataset-id namespace (plain runs land in one "default" group).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, TextIO

from repro.observability import events as events_mod

#: Events that carry a dataset_id/task_index pair we analyze.
_TASK_EVENTS = ("task.started", "task.committed")


def _job_of(dataset_id: str) -> str:
    """The ``job-N`` namespace of a dataset id, or ``default``."""
    if dataset_id.startswith("job-"):
        head, sep, _ = dataset_id.partition(".")
        if sep:
            return head
    return "default"


def _collect_tasks(
    rows: Sequence[Dict[str, Any]]
) -> Dict[str, List[Dict[str, Any]]]:
    """Fold task.committed rows into per-job completed-task records:
    ``{job: [{dataset_id, task_index, slave, start, end, seconds}]}``.

    ``task.committed`` carries its own duration (``seconds``), so the
    start is recovered as ``t - seconds`` even if the corresponding
    ``task.started`` row was lost to a crash.
    """
    jobs: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        if row.get("name") != "task.committed":
            continue
        fields = row.get("fields") or {}
        dataset_id = str(fields.get("dataset_id", ""))
        try:
            end = float(row["t"])
            seconds = float(fields.get("seconds", 0.0))
        except (KeyError, TypeError, ValueError):
            continue
        jobs.setdefault(_job_of(dataset_id), []).append(
            {
                "dataset_id": dataset_id,
                "task_index": fields.get("task_index"),
                "slave": fields.get("slave"),
                "start": end - max(0.0, seconds),
                "end": end,
                "seconds": max(0.0, seconds),
            }
        )
    for tasks in jobs.values():
        tasks.sort(key=lambda t: t["end"])
    return jobs


def critical_path(
    tasks: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Greedy walk-back chain from the last committed task.

    From the final task, repeatedly hop to the latest-committing task
    whose end precedes the current task's start.  The result (in
    execution order) approximates the dependency chain that bounded
    wall clock: shrink these tasks and the job gets faster.
    """
    if not tasks:
        return []
    ordered = sorted(tasks, key=lambda t: t["end"])
    chain = [ordered[-1]]
    cursor = ordered[-1]["start"]
    for task in reversed(ordered[:-1]):
        if task["end"] <= cursor + 1e-9:
            chain.append(task)
            cursor = task["start"]
    chain.reverse()
    return chain


def slave_utilization(
    tasks: Sequence[Dict[str, Any]]
) -> Dict[str, Dict[str, float]]:
    """Per-slave busy seconds / task counts / utilization fraction over
    the job window (first task start to last task end)."""
    if not tasks:
        return {}
    window_start = min(t["start"] for t in tasks)
    window_end = max(t["end"] for t in tasks)
    window = max(1e-9, window_end - window_start)
    out: Dict[str, Dict[str, float]] = {}
    for task in tasks:
        slave = str(task.get("slave", "?"))
        entry = out.setdefault(
            slave, {"busy_seconds": 0.0, "tasks": 0.0, "utilization": 0.0}
        )
        entry["busy_seconds"] += task["seconds"]
        entry["tasks"] += 1
    for entry in out.values():
        entry["utilization"] = entry["busy_seconds"] / window
    return out


def analyze(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The full report: per-job critical path + slave utilization."""
    jobs = _collect_tasks(rows)
    report: Dict[str, Any] = {"version": 1, "jobs": {}}
    for job, tasks in sorted(jobs.items()):
        window_start = min(t["start"] for t in tasks)
        window_end = max(t["end"] for t in tasks)
        chain = critical_path(tasks)
        report["jobs"][job] = {
            "tasks": len(tasks),
            "wall_seconds": window_end - window_start,
            "critical_path": {
                "tasks": len(chain),
                "seconds": sum(t["seconds"] for t in chain),
                "chain": [
                    {
                        "dataset_id": t["dataset_id"],
                        "task_index": t["task_index"],
                        "slave": t["slave"],
                        "seconds": t["seconds"],
                    }
                    for t in chain
                ],
            },
            "slaves": slave_utilization(tasks),
        }
    return report


def _print_text(report: Dict[str, Any], out: TextIO) -> None:
    jobs = report.get("jobs") or {}
    if not jobs:
        print("no committed tasks found in the event log", file=out)
        return
    for job, summary in jobs.items():
        print(f"== {job} ==", file=out)
        print(
            f"  tasks={summary['tasks']} "
            f"wall={summary['wall_seconds']:.2f}s",
            file=out,
        )
        path = summary["critical_path"]
        wall = max(1e-9, summary["wall_seconds"])
        print(
            f"  critical path: {path['tasks']} tasks, "
            f"{path['seconds']:.2f}s "
            f"({100.0 * path['seconds'] / wall:.0f}% of wall)",
            file=out,
        )
        for hop in path["chain"]:
            print(
                f"    {hop['dataset_id']}[{hop['task_index']}] "
                f"on {hop['slave']}: {hop['seconds']:.2f}s",
                file=out,
            )
        print("  slave utilization:", file=out)
        for slave, entry in sorted(summary["slaves"].items()):
            print(
                f"    {slave}: {entry['busy_seconds']:.2f}s busy over "
                f"{int(entry['tasks'])} tasks "
                f"({100.0 * entry['utilization']:.0f}%)",
                file=out,
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.analyze",
        description="Reconstruct per-job critical path and per-slave "
        "utilization from a --mrs-event-log JSONL file.",
    )
    parser.add_argument("event_log", help="path to the JSONL event log")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON instead of text",
    )
    opts = parser.parse_args(argv)
    try:
        rows = events_mod.read_jsonl(opts.event_log)
    except (OSError, ValueError) as exc:
        print(f"cannot read {opts.event_log}: {exc}", file=sys.stderr)
        return 1
    report = analyze(rows)
    if opts.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        _print_text(report, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
