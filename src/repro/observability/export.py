"""JSON emission and parsing for runtime metrics reports.

The report written by ``--mrs-metrics-json PATH`` is a single JSON
object (schema below, versioned) so the same numbers the paper's
evaluation discusses — startup seconds, per-phase wall clock, per-task
spans, per-operation overhead — are available to scripts, benchmarks,
and dashboards from any real run::

    {
      "version": 1,
      "role": "serial",
      "startup": {"seconds": 0.01},
      "phases": {"map": 0.2, "reduce": 0.1},
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "spans": [{"dataset_id": ..., "task_index": 0, "events": [...],
                 "durations": {...}, "total_seconds": ...}, ...],
      "operations": [{"dataset_id": ..., "kind": "map", "tasks": 4,
                      "wall_seconds": ..., "compute_seconds": ...,
                      "serialize_seconds": ..., "transfer_seconds": ...,
                      "overhead_seconds": ...}, ...],
      "summary": {"startup_seconds": ..., "compute_seconds": ...,
                  "overhead_seconds": ..., "task_count": ...}
    }

Writes are atomic (tmp file + rename) so a crash mid-dump never leaves
a truncated report behind.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

REPORT_VERSION = 1


def render_json(report: Dict[str, Any]) -> str:
    """Canonical JSON text for a report (sorted keys, stable layout)."""
    return json.dumps(report, indent=2, sort_keys=True)


def parse_json(text: str) -> Dict[str, Any]:
    report = json.loads(text)
    if not isinstance(report, dict):
        raise ValueError("metrics report must be a JSON object")
    version = report.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ValueError(
            f"metrics report has no integer 'version' field (got "
            f"{version!r}); not a report this reader understands"
        )
    if version > REPORT_VERSION:
        raise ValueError(
            f"metrics report version {version} is newer than this "
            f"reader (understands <= {REPORT_VERSION}); upgrade the "
            f"reader or re-run the job with this version"
        )
    return report


def write_json(report: Dict[str, Any], path: str) -> str:
    """Atomically write ``report`` to ``path``; returns ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as f:
        f.write(render_json(report))
        f.write("\n")
    os.replace(tmp_path, path)
    return path


def read_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as f:
        return parse_json(f.read())


def startup_seconds(report: Dict[str, Any]) -> float:
    """The measured startup time, 0.0 when the run recorded none."""
    return float((report.get("startup") or {}).get("seconds") or 0.0)


def phase_seconds(report: Dict[str, Any], phase: str) -> float:
    return float((report.get("phases") or {}).get(phase, 0.0))


def span_count(report: Dict[str, Any]) -> int:
    return len(report.get("spans") or [])


def operation_overhead_seconds(report: Dict[str, Any]) -> float:
    """Total framework overhead across operations (wall minus compute)."""
    return sum(
        float(op.get("overhead_seconds") or 0.0)
        for op in report.get("operations") or []
    )
