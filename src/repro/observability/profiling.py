"""Targeted per-task profiling: ``--mrs-profile-tasks N``.

``--mrs-profile DIR`` (serial only) profiles *every* task, which is the
right tool for a 5-task debug run and the wrong one for a 1000-task
job.  :class:`TaskProfiler` keeps only the ``.pstats`` files of the N
slowest tasks seen so far: every task runs under ``cProfile`` while the
flag is on, but a task's profile is persisted only if it ranks among
the N slowest at the moment it finishes (evicting — and deleting — the
fastest retained profile).  Retained paths are attached to the task's
span (``profile_path``) and announced with a ``task.profiled`` event,
so the report and the event log both point at the evidence for the
job's worst tasks.

Each process profiles independently (one profiler per slave/worker),
so "N slowest" is per-process; the directory is shared and file names
carry the pid.
"""

from __future__ import annotations

import cProfile
import heapq
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple


class TaskProfiler:
    """Run tasks under cProfile, retaining the N slowest profiles."""

    def __init__(self, keep: int, directory: str):
        self.keep = int(keep)
        self.directory = directory
        self._lock = threading.Lock()
        #: Min-heap of (seconds, path): the root is the fastest
        #: retained profile, i.e. the eviction candidate.
        self._slowest: List[Tuple[float, str]] = []
        #: path -> the span that points at it, so eviction can clear
        #: the span's profile_path instead of leaving it dangling.
        self._owners: Dict[str, Any] = {}

    def run(
        self,
        fn: Callable,
        *args: Any,
        profile_dataset_id: str,
        profile_task_index: int,
        profile_span: Any = None,
        profile_events: Any = None,
        **kwargs: Any,
    ) -> Any:
        """Execute ``fn(*args, **kwargs)`` under the profiler.

        The ``profile_*`` keywords are consumed here (namespaced so they
        can never collide with ``fn``'s own keywords): they identify the
        task, and name the span/event log that should learn about a
        retained dump.
        """
        profiler = cProfile.Profile()
        started = time.perf_counter()
        try:
            return profiler.runcall(fn, *args, **kwargs)
        finally:
            seconds = time.perf_counter() - started
            path = self._retain(
                profiler,
                profile_dataset_id,
                profile_task_index,
                seconds,
                profile_span,
            )
            if path is not None:
                if profile_span is not None:
                    profile_span.profile_path = path
                if profile_events is not None:
                    profile_events.emit(
                        "task.profiled",
                        dataset_id=profile_dataset_id,
                        task_index=profile_task_index,
                        path=path,
                        seconds=seconds,
                    )

    def _retain(
        self,
        profiler: cProfile.Profile,
        dataset_id: str,
        task_index: int,
        seconds: float,
        span: Any = None,
    ) -> Optional[str]:
        """Persist the profile if it ranks in the N slowest; returns
        its path, or None when it was discarded.  Evicting a profile
        deletes its file and clears the evicted task's
        ``span.profile_path`` so spans never dangle."""
        if self.keep <= 0:
            return None
        with self._lock:
            if len(self._slowest) >= self.keep and seconds <= self._slowest[0][0]:
                return None  # faster than everything retained
            os.makedirs(self.directory, exist_ok=True)
            path = os.path.join(
                self.directory,
                f"{dataset_id}_{task_index}_{os.getpid()}.pstats",
            )
            profiler.dump_stats(path)
            if len(self._slowest) >= self.keep:
                _, evicted = heapq.heapreplace(self._slowest, (seconds, path))
                if evicted and evicted != path:
                    try:
                        os.unlink(evicted)
                    except OSError:
                        pass
                    owner = self._owners.pop(evicted, None)
                    if owner is not None and owner.profile_path == evicted:
                        owner.profile_path = None
            else:
                heapq.heappush(self._slowest, (seconds, path))
            if span is not None:
                self._owners[path] = span
        return path

    def retained(self) -> List[Tuple[float, str]]:
        """(seconds, path) for every retained profile, slowest first."""
        with self._lock:
            return sorted(self._slowest, reverse=True)


def profiler_from_opts(opts: Any) -> Optional[TaskProfiler]:
    """Build a TaskProfiler from ``--mrs-profile-tasks`` (or None)."""
    keep = int(getattr(opts, "profile_tasks", 0) or 0)
    if keep <= 0:
        return None
    import tempfile

    base = getattr(opts, "tmpdir", None) or tempfile.gettempdir()
    return TaskProfiler(keep, os.path.join(base, "mrs_task_profiles"))
