"""Cluster telemetry: health time-series, stragglers, and surfacing.

The metrics/events planes (PRs 1 and 4) answer *per-job* questions.
This module answers *cluster* questions — is a slave slow, is a bucket
fat, is a task an outlier relative to its siblings — the inputs the
ROADMAP's speculative-execution tentpole needs to pick victims.

Four pieces:

* :class:`HealthSampler` — cheap process-health snapshots (CPU time,
  RSS, open fds, disk free on the run dir, task throughput) built from
  ``/proc``/``os``/``shutil`` with graceful fallbacks, **no psutil**.
  Samples piggyback on the heartbeat/completion RPCs already flowing.
* :class:`TimeSeriesStore` — the master-side ring-buffered store:
  per-source series with fixed-interval downsampling (samples landing
  in the same interval slot merge; the ring bounds memory).
* :class:`StragglerScorer` — per-dataset runtime distributions from
  live task timings; a running task exceeding ``factor`` × the running
  median of its dataset's completed tasks is a straggler candidate.
  The scheduler embeds one and exposes
  :meth:`~repro.runtime.scheduler.Scheduler.straggler_candidates`.
* :func:`render_prometheus` / :func:`render_dashboard` — the live
  ``GET /metrics`` (Prometheus text exposition) and ``GET /dashboard``
  (self-refreshing HTML, no external assets) views grown onto the
  ``--mrs-status-http`` surface.

Everything hangs off ``Observability.telemetry`` behind
``--mrs-telemetry on|off``; when off the attribute is ``None`` and
every call site costs one attribute check (the events discipline).
"""

from __future__ import annotations

import html
import os
import re
import shutil
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

#: Default seconds between health samples (and the downsampling slot
#: width of the master-side store); ``--mrs-telemetry-interval``.
DEFAULT_INTERVAL = 5.0

#: Default ring capacity per source: 240 slots x 5 s = 20 minutes.
DEFAULT_CAPACITY = 240

#: Default straggler threshold multiple; ``--mrs-straggler-factor``.
DEFAULT_STRAGGLER_FACTOR = 1.5

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ---------------------------------------------------------------------------
# Health sampling (no psutil: /proc + os + shutil, fallbacks everywhere)
# ---------------------------------------------------------------------------


def _cpu_seconds() -> float:
    """User+system CPU seconds of this process."""
    times = os.times()
    return float(times.user + times.system)


def _rss_bytes() -> Optional[float]:
    """Resident set size, from /proc/self/statm (Linux) or getrusage."""
    try:
        with open("/proc/self/statm") as f:
            pages = int(f.read().split()[1])
        return float(pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, ValueError, IndexError, AttributeError):
        pass
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB; macOS reports bytes.  Either way it is a
        # peak, which is an acceptable degraded answer.
        return float(rss * 1024 if rss < 1 << 32 else rss)
    except Exception:
        return None


def _open_fds() -> Optional[float]:
    try:
        return float(len(os.listdir("/proc/self/fd")))
    except OSError:
        return None


def _disk_free_bytes(path: Optional[str]) -> Optional[float]:
    try:
        return float(shutil.disk_usage(path or os.getcwd()).free)
    except OSError:
        return None


def sample_health(rundir: Optional[str] = None) -> Dict[str, float]:
    """One health snapshot of the calling process (dict of floats).

    Keys whose underlying source is unavailable on this platform are
    simply absent — consumers treat the sample as a sparse record.
    """
    sample: Dict[str, float] = {
        "t": time.time(),
        "cpu_seconds": _cpu_seconds(),
    }
    for key, value in (
        ("rss_bytes", _rss_bytes()),
        ("open_fds", _open_fds()),
        ("disk_free_bytes", _disk_free_bytes(rundir)),
    ):
        if value is not None:
            sample[key] = value
    return sample


class HealthSampler:
    """Throttled health snapshots for one process.

    ``task_counter`` (a zero-argument callable returning the process's
    cumulative completed-task count) turns consecutive samples into a
    ``task_throughput`` rate.  :meth:`maybe_sample` returns ``None``
    when called again within ``interval`` seconds — the piggyback call
    sites (every done RPC, every ping) stay O(1) between samples.
    """

    def __init__(
        self,
        rundir: Optional[str] = None,
        interval: float = DEFAULT_INTERVAL,
        task_counter: Optional[Callable[[], float]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rundir = rundir
        self.interval = float(interval)
        self.task_counter = task_counter
        self._clock = clock
        self._lock = threading.Lock()
        self._last_at: Optional[float] = None
        self._last_tasks: Optional[float] = None

    def sample(self) -> Dict[str, float]:
        """An unconditional sample (also resets the throttle window)."""
        now = self._clock()
        sample = sample_health(self.rundir)
        if self.task_counter is not None:
            try:
                tasks = float(self.task_counter())
            except Exception:
                tasks = None
            if tasks is not None:
                sample["tasks_completed"] = tasks
                with self._lock:
                    if (
                        self._last_at is not None
                        and self._last_tasks is not None
                        and now > self._last_at
                    ):
                        sample["task_throughput"] = max(
                            0.0,
                            (tasks - self._last_tasks) / (now - self._last_at),
                        )
                    self._last_tasks = tasks
        with self._lock:
            self._last_at = now
        return sample

    def maybe_sample(self) -> Optional[Dict[str, float]]:
        """A sample, or ``None`` while the throttle window is open."""
        with self._lock:
            last = self._last_at
        if last is not None and self._clock() - last < self.interval:
            return None
        return self.sample()


# ---------------------------------------------------------------------------
# Master-side time-series store
# ---------------------------------------------------------------------------


class TimeSeriesStore:
    """Ring-buffered per-source health series with fixed-interval
    downsampling.

    Samples are slotted by ``floor(t / interval)``; a sample landing in
    the occupied newest slot *merges into it* (later fields win) rather
    than appending, so a chatty source — pings every 2 s, completions
    every 50 ms — still costs one entry per interval.  Each source's
    series is a ``deque(maxlen=capacity)``: memory is bounded no matter
    how long the job runs.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.interval = max(1e-6, float(interval))
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._series: Dict[str, deque] = {}

    def record(
        self,
        source: str,
        sample: Optional[Dict[str, float]] = None,
        rtt_seconds: Optional[float] = None,
    ) -> None:
        """Fold one sample (and/or a measured ping RTT) into a series."""
        entry: Dict[str, float] = dict(sample or {})
        if rtt_seconds is not None:
            entry["rtt_seconds"] = float(rtt_seconds)
        if not entry:
            return
        entry.setdefault("t", time.time())
        slot = int(entry["t"] // self.interval)
        with self._lock:
            series = self._series.get(source)
            if series is None:
                series = self._series[source] = deque(maxlen=self.capacity)
            if series and int(series[-1]["t"] // self.interval) == slot:
                series[-1].update(entry)
            else:
                series.append(entry)

    def series(self) -> Dict[str, List[Dict[str, float]]]:
        with self._lock:
            return {
                source: [dict(s) for s in samples]
                for source, samples in sorted(self._series.items())
            }

    def latest(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                source: dict(samples[-1])
                for source, samples in sorted(self._series.items())
                if samples
            }

    def sources(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._series.values())


# ---------------------------------------------------------------------------
# Straggler scoring
# ---------------------------------------------------------------------------


def running_median(values: List[float]) -> float:
    """Median of a non-empty list (n=1 returns the single value)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class StragglerScorer:
    """Flags running tasks that exceed ``factor`` × the running median
    of their dataset's completed-task durations.

    The scheduler drives it under the backend lock: ``task_started``
    when a task is assigned, ``task_finished`` on completion,
    ``task_abandoned`` on failure/requeue (its timing would poison the
    distribution).  ``candidates()`` needs at least one completed
    sample per dataset — with n=1 the median *is* that sample, and an
    all-equal distribution flags only genuinely slower tasks.
    """

    def __init__(
        self,
        factor: float = DEFAULT_STRAGGLER_FACTOR,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.factor = float(factor)
        self._clock = clock
        self._lock = threading.Lock()
        #: (dataset_id, task_index) -> (slave_id, start time).
        self._running: Dict[Any, Any] = {}
        #: dataset_id -> completed durations.
        self._durations: Dict[str, List[float]] = {}
        #: (dataset_id, task_index) keys already reported once.
        self._flagged: set = set()
        self.flagged_total = 0

    def task_started(
        self, dataset_id: str, task_index: int, slave_id: Any = None
    ) -> None:
        with self._lock:
            self._running[(dataset_id, task_index)] = (
                slave_id,
                self._clock(),
            )

    def task_finished(self, dataset_id: str, task_index: int) -> None:
        with self._lock:
            entry = self._running.pop((dataset_id, task_index), None)
            if entry is None:
                return
            self._durations.setdefault(dataset_id, []).append(
                max(0.0, self._clock() - entry[1])
            )

    def task_abandoned(self, dataset_id: str, task_index: int) -> None:
        with self._lock:
            self._running.pop((dataset_id, task_index), None)
            self._flagged.discard((dataset_id, task_index))

    def forget_dataset(self, dataset_id: str) -> None:
        with self._lock:
            self._durations.pop(dataset_id, None)
            for key in [k for k in self._running if k[0] == dataset_id]:
                del self._running[key]
            self._flagged = {
                k for k in self._flagged if k[0] != dataset_id
            }

    def candidates(self) -> List[Dict[str, Any]]:
        """Running tasks currently over the straggler threshold, most
        severe first.  Each entry names the task, its slave, elapsed
        seconds, the dataset median, and the elapsed/median ratio —
        exactly what a speculative re-launcher needs to pick victims.
        """
        now = self._clock()
        out: List[Dict[str, Any]] = []
        with self._lock:
            for (dataset_id, task_index), (slave_id, started) in (
                self._running.items()
            ):
                completed = self._durations.get(dataset_id)
                if not completed:
                    continue
                median = running_median(completed)
                elapsed = max(0.0, now - started)
                if median <= 0.0 or elapsed <= self.factor * median:
                    continue
                first_flag = (dataset_id, task_index) not in self._flagged
                if first_flag:
                    self._flagged.add((dataset_id, task_index))
                    self.flagged_total += 1
                out.append(
                    {
                        "dataset_id": dataset_id,
                        "task_index": task_index,
                        "slave": slave_id,
                        "elapsed_seconds": elapsed,
                        "median_seconds": median,
                        "ratio": elapsed / median,
                        "first_flag": first_flag,
                    }
                )
        out.sort(key=lambda c: c["ratio"], reverse=True)
        return out


# ---------------------------------------------------------------------------
# The per-backend bundle
# ---------------------------------------------------------------------------


class Telemetry:
    """One backend's telemetry plane: a sampler for its own process, a
    store for the cluster's series, a skew tracker, and the straggler
    knobs.  Attached as ``Observability.telemetry`` when
    ``--mrs-telemetry`` is on.
    """

    def __init__(
        self,
        role: str,
        interval: float = DEFAULT_INTERVAL,
        straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
        rundir: Optional[str] = None,
        task_counter: Optional[Callable[[], float]] = None,
    ):
        from repro.observability.skew import SkewTracker

        self.role = role
        self.interval = float(interval)
        self.straggler_factor = float(straggler_factor)
        self.sampler = HealthSampler(
            rundir=rundir, interval=interval, task_counter=task_counter
        )
        self.store = TimeSeriesStore(interval=interval)
        self.skew = SkewTracker()

    def set_rundir(self, rundir: str) -> None:
        """Late-bind the directory whose disk-free the sampler reports
        (backends create their tmpdir after constructing telemetry)."""
        self.sampler.rundir = rundir

    def record_remote(
        self,
        source: str,
        sample: Optional[Dict[str, float]] = None,
        rtt_seconds: Optional[float] = None,
    ) -> None:
        """Fold a piggybacked remote health sample (and/or ping RTT)
        into the store."""
        self.store.record(source, sample, rtt_seconds=rtt_seconds)

    def snapshot(
        self, stragglers: Optional[List[Dict[str, Any]]] = None,
        flagged_total: int = 0,
    ) -> Dict[str, Any]:
        """The ``job.telemetry()`` payload.

        Records a fresh self-sample first, so even a single-process
        backend reports a non-empty series under its own role name.
        """
        own = self.sampler.maybe_sample()
        if own is not None:
            self.store.record(self.role, own)
        return {
            "version": 1,
            "role": self.role,
            "interval": self.interval,
            "series": self.store.series(),
            "latest": self.store.latest(),
            "skew": self.skew.summary(),
            "stragglers": {
                "factor": self.straggler_factor,
                "candidates": list(stragglers or []),
                "flagged_total": int(flagged_total),
            },
        }


def telemetry_from_opts(
    opts: Any, role: str, rundir: Optional[str] = None,
    task_counter: Optional[Callable[[], float]] = None,
) -> Optional[Telemetry]:
    """Build a :class:`Telemetry` per ``--mrs-telemetry``; ``None`` when
    off (one attribute check at every call site, the events discipline).
    """
    if opts is not None and getattr(opts, "telemetry", "on") == "off":
        return None
    interval = DEFAULT_INTERVAL
    factor = DEFAULT_STRAGGLER_FACTOR
    if opts is not None:
        try:
            interval = float(
                getattr(opts, "telemetry_interval", None) or DEFAULT_INTERVAL
            )
        except (TypeError, ValueError):
            interval = DEFAULT_INTERVAL
        try:
            factor = float(
                getattr(opts, "straggler_factor", None)
                or DEFAULT_STRAGGLER_FACTOR
            )
        except (TypeError, ValueError):
            factor = DEFAULT_STRAGGLER_FACTOR
    return Telemetry(
        role=role,
        interval=interval,
        straggler_factor=factor,
        rundir=rundir,
        task_counter=task_counter,
    )


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: latest-sample health keys -> (metric suffix, prometheus type).
_HEALTH_METRICS = (
    ("cpu_seconds", "mrs_slave_cpu_seconds_total", "counter"),
    ("rss_bytes", "mrs_slave_rss_bytes", "gauge"),
    ("open_fds", "mrs_slave_open_fds", "gauge"),
    ("disk_free_bytes", "mrs_slave_disk_free_bytes", "gauge"),
    ("task_throughput", "mrs_slave_task_throughput", "gauge"),
    ("tasks_completed", "mrs_slave_tasks_completed_total", "counter"),
    ("rtt_seconds", "mrs_slave_ping_rtt_seconds", "gauge"),
)


def _metric_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: Any) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _PromWriter:
    """Accumulates exposition lines, emitting each # TYPE once."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def add(
        self,
        name: str,
        value: Any,
        labels: Optional[Dict[str, Any]] = None,
        mtype: str = "gauge",
    ) -> None:
        if name not in self._typed:
            self._typed.add(name)
            self.lines.append(f"# TYPE {name} {mtype}")
        label_text = ""
        if labels:
            inner = ",".join(
                f'{key}="{_escape_label(val)}"'
                for key, val in sorted(labels.items())
            )
            label_text = "{" + inner + "}"
        self.lines.append(f"{name}{label_text} {_fmt_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _dataset_rows(status: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Normalize the two backend status shapes for ``datasets``:
    the master's list of row dicts and the multiprocess backend's
    ``{id: state}`` map."""
    raw = status.get("datasets")
    if isinstance(raw, list):
        return [row for row in raw if isinstance(row, dict) and "id" in row]
    if isinstance(raw, dict):
        return [
            {
                "id": dataset_id,
                "complete": state == "complete",
                "error": state if state == "error" else None,
                "progress": 1.0 if state == "complete" else 0.0,
            }
            for dataset_id, state in raw.items()
        ]
    return []


def render_prometheus(backend: Any) -> str:
    """The ``GET /metrics`` body: Prometheus text exposition of the
    backend's live status, registry, and telemetry plane."""
    writer = _PromWriter()
    try:
        status = backend.status() or {}
    except Exception:
        status = {}
    telemetry: Dict[str, Any] = {}
    if hasattr(backend, "telemetry"):
        try:
            telemetry = backend.telemetry() or {}
        except Exception:
            telemetry = {}

    writer.add("mrs_up", 1)
    tasks = status.get("tasks") or {}
    writer.add("mrs_tasks_total", tasks.get("total", 0))
    writer.add("mrs_tasks_done", tasks.get("done", 0))
    writer.add("mrs_tasks_running", tasks.get("running", 0))

    for row in status.get("slaves") or []:
        if not isinstance(row, dict):
            continue
        labels = {"slave": f"slave-{row.get('id')}"}
        writer.add("mrs_slave_up", 1 if row.get("alive") else 0, labels)
        writer.add("mrs_slave_busy", 1 if row.get("busy") else 0, labels)

    for source, sample in (telemetry.get("latest") or {}).items():
        if not isinstance(sample, dict):
            continue
        labels = {"slave": source}
        for key, metric, mtype in _HEALTH_METRICS:
            if key in sample:
                writer.add(metric, sample[key], labels, mtype)

    for row in _dataset_rows(status):
        labels = {"dataset": row["id"]}
        writer.add("mrs_dataset_progress", row.get("progress") or 0.0, labels)
        writer.add(
            "mrs_dataset_complete", 1 if row.get("complete") else 0, labels
        )

    for dataset_id, summary in (telemetry.get("skew") or {}).items():
        if not isinstance(summary, dict):
            continue
        labels = {"dataset": dataset_id}
        ratio = summary.get("max_over_median_bytes")
        if ratio is not None:
            writer.add("mrs_skew_max_over_median", ratio, labels)
        gini = summary.get("gini_bytes")
        if gini is not None:
            writer.add("mrs_skew_gini", gini, labels)
        writer.add(
            "mrs_skew_bytes_total",
            summary.get("bytes_total", 0),
            labels,
            "counter",
        )

    stragglers = telemetry.get("stragglers") or {}
    writer.add(
        "mrs_straggler_candidates",
        len(stragglers.get("candidates") or ()),
    )
    writer.add(
        "mrs_stragglers_flagged_total",
        stragglers.get("flagged_total", 0),
        mtype="counter",
    )

    observability = getattr(backend, "observability", None)
    if observability is not None:
        snapshot = observability.registry.snapshot()
        for name, value in sorted((snapshot.get("counters") or {}).items()):
            writer.add(
                f"mrs_{_metric_name(name)}_total", value, mtype="counter"
            )
        for name, value in sorted((snapshot.get("gauges") or {}).items()):
            writer.add(f"mrs_{_metric_name(name)}", value)
        for name, hist in sorted(
            (snapshot.get("histograms") or {}).items()
        ):
            base = f"mrs_{_metric_name(name)}"
            writer.add(f"{base}_count", hist.get("count", 0), mtype="counter")
            writer.add(f"{base}_sum", hist.get("total", 0.0), mtype="counter")
    return writer.text()


# ---------------------------------------------------------------------------
# HTML dashboard (self-refreshing, zero external assets)
# ---------------------------------------------------------------------------

_DASHBOARD_CSS = """
body{font-family:system-ui,sans-serif;margin:1.5rem;background:#111;
     color:#ddd}
h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.4rem;color:#9cf}
table{border-collapse:collapse;margin:.4rem 0}
th,td{border:1px solid #333;padding:.25rem .6rem;font-size:.85rem;
      text-align:left}
th{background:#1c2733}
.bar{background:#223;width:16rem;height:1rem;display:inline-block;
     vertical-align:middle;border:1px solid #345}
.bar i{background:#2b8a3e;height:100%;display:block}
.bad{color:#f66}.ok{color:#6d6}.dim{color:#777}
""".strip()


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "-"
    number = float(value)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(number) < 1024 or unit == "TiB":
            return f"{number:.1f} {unit}"
        number /= 1024
    return f"{number:.1f} TiB"


def _h(value: Any) -> str:
    return html.escape(str(value))


def _progress_bar(fraction: float) -> str:
    percent = max(0.0, min(1.0, float(fraction or 0.0))) * 100.0
    return (
        f'<span class="bar"><i style="width:{percent:.0f}%"></i></span> '
        f"{percent:.0f}%"
    )


def render_dashboard(
    backend: Any,
    control: Any = None,
    refresh_seconds: int = 2,
) -> str:
    """The ``GET /dashboard`` body: one self-refreshing HTML page with
    the slave table, per-dataset progress bars, skew and straggler
    panels, and (on a job server) the jobs table — inline CSS only."""
    try:
        status = backend.status() or {}
    except Exception:
        status = {}
    telemetry: Dict[str, Any] = {}
    if hasattr(backend, "telemetry"):
        try:
            telemetry = backend.telemetry() or {}
        except Exception:
            telemetry = {}
    latest = telemetry.get("latest") or {}

    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<meta http-equiv='refresh' content='{int(refresh_seconds)}'>",
        "<title>mrs dashboard</title>",
        f"<style>{_DASHBOARD_CSS}</style></head><body>",
        "<h1>mrs cluster dashboard</h1>",
        f"<p class='dim'>role={_h(status.get('role', '?'))} "
        f"refresh={int(refresh_seconds)}s</p>",
    ]

    # -- slave table ----------------------------------------------------
    parts.append("<h2>Slaves</h2>")
    slave_rows = status.get("slaves") or []
    workers = status.get("workers")
    if slave_rows:
        parts.append(
            "<table><tr><th>slave</th><th>address</th><th>state</th>"
            "<th>cpu s</th><th>rss</th><th>fds</th><th>disk free</th>"
            "<th>ping rtt</th><th>tasks/s</th></tr>"
        )
        for row in slave_rows:
            source = f"slave-{row.get('id')}"
            sample = latest.get(source) or {}
            state = (
                "<span class='ok'>alive</span>"
                if row.get("alive")
                else "<span class='bad'>lost</span>"
            )
            if row.get("busy"):
                state += " (busy)"
            rtt = sample.get("rtt_seconds")
            parts.append(
                f"<tr><td>{_h(source)}</td>"
                f"<td>{_h(row.get('address', '-'))}</td>"
                f"<td>{state}</td>"
                f"<td>{sample.get('cpu_seconds', 0.0):.1f}</td>"
                f"<td>{_fmt_bytes(sample.get('rss_bytes'))}</td>"
                f"<td>{int(sample.get('open_fds', 0))}</td>"
                f"<td>{_fmt_bytes(sample.get('disk_free_bytes'))}</td>"
                f"<td>{'-' if rtt is None else f'{rtt * 1000:.1f} ms'}</td>"
                f"<td>{sample.get('task_throughput', 0.0):.2f}</td></tr>"
            )
        parts.append("</table>")
    elif isinstance(workers, dict):
        parts.append(
            "<table><tr><th>alive</th><th>ready</th><th>busy</th>"
            "<th>respawns</th></tr>"
            f"<tr><td>{_h(workers.get('alive', 0))}</td>"
            f"<td>{_h(workers.get('ready', 0))}</td>"
            f"<td>{_h(workers.get('busy', 0))}</td>"
            f"<td>{_h(workers.get('respawns', 0))}</td></tr></table>"
        )
    else:
        parts.append("<p class='dim'>no slaves signed in</p>")

    # -- jobs (service mode) --------------------------------------------
    if control is not None and hasattr(control, "jobs_view"):
        try:
            jobs = control.jobs_view() or {}
        except Exception:
            jobs = {}
        parts.append("<h2>Jobs</h2>")
        rows = jobs.get("jobs") or []
        if rows:
            parts.append(
                "<table><tr><th>job</th><th>program</th><th>state</th>"
                "</tr>"
            )
            for job in rows:
                state = _h(job.get("state", "?"))
                css = "ok" if job.get("state") == "done" else (
                    "bad" if job.get("state") in ("failed", "canceled")
                    else ""
                )
                parts.append(
                    f"<tr><td>{_h(job.get('id'))}</td>"
                    f"<td>{_h(job.get('program'))}</td>"
                    f"<td class='{css}'>{state}</td></tr>"
                )
            parts.append("</table>")
        else:
            parts.append("<p class='dim'>no jobs submitted</p>")

    # -- dataset progress -----------------------------------------------
    parts.append("<h2>Datasets</h2>")
    dataset_rows = _dataset_rows(status)
    if dataset_rows:
        parts.append("<table><tr><th>dataset</th><th>progress</th></tr>")
        for row in dataset_rows:
            cell = (
                "<span class='bad'>error</span>"
                if row.get("error")
                else _progress_bar(row.get("progress") or 0.0)
            )
            parts.append(
                f"<tr><td>{_h(row['id'])}</td><td>{cell}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p class='dim'>no datasets yet</p>")

    # -- skew panel -----------------------------------------------------
    parts.append("<h2>Shuffle skew</h2>")
    skew = telemetry.get("skew") or {}
    if skew:
        parts.append(
            "<table><tr><th>dataset</th><th>buckets</th><th>bytes</th>"
            "<th>max/median</th><th>gini</th></tr>"
        )
        for dataset_id, summary in sorted(skew.items()):
            ratio = summary.get("max_over_median_bytes")
            gini = summary.get("gini_bytes")
            ratio_cell = "-" if ratio is None else f"{ratio:.2f}"
            if ratio is not None and ratio > 2.0:
                ratio_cell = f"<span class='bad'>{ratio_cell}</span>"
            parts.append(
                f"<tr><td>{_h(dataset_id)}</td>"
                f"<td>{summary.get('buckets', 0)}</td>"
                f"<td>{_fmt_bytes(summary.get('bytes_total'))}</td>"
                f"<td>{ratio_cell}</td>"
                f"<td>{'-' if gini is None else f'{gini:.3f}'}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p class='dim'>no shuffle data yet</p>")

    # -- straggler panel ------------------------------------------------
    parts.append("<h2>Stragglers</h2>")
    stragglers = telemetry.get("stragglers") or {}
    candidates = stragglers.get("candidates") or []
    parts.append(
        f"<p class='dim'>factor={stragglers.get('factor', '-')} "
        f"flagged so far={stragglers.get('flagged_total', 0)}</p>"
    )
    if candidates:
        parts.append(
            "<table><tr><th>task</th><th>slave</th><th>elapsed</th>"
            "<th>median</th><th>ratio</th></tr>"
        )
        for cand in candidates:
            parts.append(
                f"<tr><td>{_h(cand.get('dataset_id'))}"
                f"[{_h(cand.get('task_index'))}]</td>"
                f"<td>{_h(cand.get('slave'))}</td>"
                f"<td>{cand.get('elapsed_seconds', 0.0):.2f}s</td>"
                f"<td>{cand.get('median_seconds', 0.0):.2f}s</td>"
                f"<td class='bad'>{cand.get('ratio', 0.0):.2f}x</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p class='dim'>no straggler candidates</p>")

    parts.append("</body></html>")
    return "".join(parts)
