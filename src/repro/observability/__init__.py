"""Runtime observability: metrics, task spans, and JSON export.

Every execution backend owns one :class:`Observability` instance
bundling the three primitives the runtime instruments itself with:

* a :class:`~repro.observability.metrics.MetricsRegistry` of counters,
  gauges, and histograms,
* a :class:`~repro.observability.tracing.Tracer` holding one
  :class:`~repro.observability.tracing.TaskSpan` per task,
* a :class:`~repro.util.timing.PhaseTimer` accumulating per-phase
  (map / reduce / shuffle) wall clock.

``Observability.report()`` assembles the whole-job view that
``Job.metrics()`` returns and ``--mrs-metrics-json`` dumps; slaves ship
registry snapshots and span durations to the master on the existing
task-completion RPC, so the master's report covers the entire cluster.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import EVENTS, TaskSpan, Tracer
from repro.observability.events import EventLog
from repro.observability import export
from repro.util.timing import PhaseTimer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EVENTS",
    "EventLog",
    "TaskSpan",
    "Tracer",
    "Observability",
    "PIGGYBACK_PHASES",
    "export",
]

#: Span duration keys that count as user compute.
_COMPUTE_EVENTS = ("map", "reduce")

#: Remote-reported span durations that fold into a coordinating
#: backend's phase timer (slave->master and worker->pool piggybacks).
PIGGYBACK_PHASES = ("map", "reduce", "serialize", "transfer")

#: Roles whose startup means "boot to first task" rather than
#: "coordinator ready" (they do not own a job; they serve one).
_EXECUTOR_ROLES = frozenset({"slave", "worker"})


class Observability:
    """Per-backend bundle of registry + tracer + phase timer + events."""

    def __init__(self, role: str = "serial"):
        self.role = role
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.phases = PhaseTimer()
        #: Structured event log; None until a consumer asks for events
        #: (so the hot emit path ``events = obs.events; if events is
        #: not None: ...`` costs one attribute check when disabled).
        self.events: Optional[EventLog] = None
        #: Cluster telemetry plane (health series, skew, stragglers);
        #: None when --mrs-telemetry off — same one-attribute-check
        #: discipline as the event log.
        self.telemetry: Optional[Any] = None
        self._created_at = time.perf_counter()
        #: Seconds from backend construction to ready-to-run, set once
        #: by :meth:`mark_startup_complete` (the paper's "~2 s" number).
        self.startup_seconds: Optional[float] = None
        #: What the startup number measures for this role: coordinators
        #: report construction→ready; slaves/workers report their own
        #: boot→first-task latency.
        self.startup_kind = (
            "boot_to_first_task" if role in _EXECUTOR_ROLES else "ready"
        )
        #: dataset id -> operation kind ("map"/"reduce"/"reducemap").
        self._operation_kinds: Dict[str, str] = {}
        #: Per-source registries accumulated by :meth:`merge_remote`
        #: (one per slave/worker), so the report can break the job down
        #: by contributing process without double-counting the main
        #: registry.
        self._sources: Dict[str, MetricsRegistry] = {}

    # -- lifecycle ------------------------------------------------------

    def enable_events(
        self,
        path: Optional[str] = None,
        unbounded: bool = False,
    ) -> EventLog:
        """Turn on the structured event log (idempotent).

        ``path`` adds the crash-safe JSONL sink (``--mrs-event-log``);
        ``unbounded=True`` keeps the full stream in memory instead of a
        bounded ring (needed when a trace will be built from it at job
        end).
        """
        if self.events is None:
            from repro.observability.events import DEFAULT_RING_SIZE

            self.events = EventLog(
                self.role,
                path=path,
                ring_size=None if unbounded else DEFAULT_RING_SIZE,
            )
        return self.events

    def enable_telemetry(
        self, opts: Any = None, rundir: Optional[str] = None
    ) -> Optional[Any]:
        """Attach the cluster telemetry plane per ``--mrs-telemetry``
        (idempotent; returns None and stays disabled when off).

        The sampler's task-throughput rate is derived from this
        bundle's ``tasks.completed`` counter, which every executor role
        already maintains.
        """
        if self.telemetry is None:
            from repro.observability import telemetry as telemetry_mod

            counter = self.registry.counter("tasks.completed")
            self.telemetry = telemetry_mod.telemetry_from_opts(
                opts,
                role=self.role,
                rundir=rundir,
                task_counter=lambda: counter.value,
            )
        return self.telemetry

    def configure_from_opts(self, opts: Any) -> None:
        """Wire the observability CLI flags into this bundle.

        Called by every backend constructor; a missing/None ``opts``
        (programmatic construction) leaves everything disabled.
        """
        if opts is None:
            return
        event_log = getattr(opts, "event_log", None)
        trace = getattr(opts, "trace", None)
        if event_log or trace:
            # A requested trace is built from memory at job end, so the
            # ring must keep the whole stream.
            self.enable_events(path=event_log, unbounded=bool(trace))
        # The transfer plane (--mrs-fetch-* knobs) is process-global;
        # mirror its counters into this backend's registry so fetch
        # traffic performed by this process shows up in the report.
        from repro.comm import transfer

        transfer.configure(opts)
        transfer.install_registry(self.registry)
        self.enable_telemetry(opts, rundir=getattr(opts, "tmpdir", None))

    def mark_startup_complete(self) -> float:
        """Record startup as complete (idempotent); returns the time."""
        if self.startup_seconds is None:
            self.startup_seconds = time.perf_counter() - self._created_at
            self.registry.gauge("startup.seconds").set(self.startup_seconds)
            events = self.events
            if events is not None:
                events.emit(
                    "job.startup",
                    seconds=self.startup_seconds,
                    kind=self.startup_kind,
                )
        return self.startup_seconds

    def note_operation(self, dataset_id: str, kind: str) -> None:
        """Remember a dataset's operation kind for the report."""
        self._operation_kinds[dataset_id] = kind
        self.registry.counter(f"operations.{kind}").inc()

    def merge_remote(
        self, snapshot: Dict[str, Any], source: Optional[str] = None
    ) -> None:
        """Fold a remote process's registry snapshot into this one.

        ``source``, when given, names the contributing process (e.g.
        ``"slave-3"`` or ``"worker-1"``); the snapshot is additionally
        accumulated into a per-source registry so the report can
        attribute work to individual slaves/workers.  Each snapshot is
        merged into the main registry exactly once regardless.
        """
        self.registry.merge_snapshot(snapshot)
        if source:
            registry = self._sources.get(source)
            if registry is None:
                registry = self._sources[source] = MetricsRegistry()
            registry.merge_snapshot(snapshot)

    # -- reporting ------------------------------------------------------

    def operations_breakdown(self) -> list:
        """Per-dataset wall/compute/overhead rows derived from spans."""
        rows = []
        by_dataset: Dict[str, list] = {}
        for span in self.tracer.spans():
            by_dataset.setdefault(span.dataset_id, []).append(span)
        for dataset_id, spans in sorted(by_dataset.items()):
            wall = sum(s.total_seconds for s in spans)
            durations: Dict[str, float] = {}
            for span in spans:
                for event, seconds in span.durations_dict().items():
                    durations[event] = durations.get(event, 0.0) + seconds
            compute = sum(durations.get(e, 0.0) for e in _COMPUTE_EVENTS)
            rows.append(
                {
                    "dataset_id": dataset_id,
                    "kind": self._operation_kinds.get(dataset_id),
                    "tasks": len(spans),
                    "wall_seconds": wall,
                    "compute_seconds": compute,
                    "serialize_seconds": durations.get("serialize", 0.0),
                    "transfer_seconds": durations.get("transfer", 0.0),
                    "overhead_seconds": max(0.0, wall - compute),
                }
            )
        return rows

    def status_view(
        self, dataset_prefix: Optional[str] = None
    ) -> Dict[str, Any]:
        """A cheap live snapshot for tickers and status endpoints.

        Derived from the tracer and registry only (no remote calls):
        tasks done/total, an ETA extrapolated from the task-duration
        histogram, and the live overhead fraction — the in-flight
        version of the report's summary numbers.

        ``dataset_prefix`` restricts the span scan to datasets whose id
        starts with it — the per-job view a multi-job server exposes at
        ``GET /jobs/<id>`` (job namespaces prefix every dataset id).
        """
        spans = self.tracer.spans()
        if dataset_prefix is not None:
            spans = [
                span
                for span in spans
                if span.dataset_id.startswith(dataset_prefix)
            ]
        total = len(spans)
        done = 0
        running = 0
        wall = 0.0
        compute = 0.0
        for span in spans:
            durations = span.durations_dict()
            if "committed" in durations or span.has_event("committed"):
                done += 1
                wall += span.total_seconds
                compute += sum(
                    durations.get(e, 0.0) for e in _COMPUTE_EVENTS
                )
            elif span.has_event("started"):
                running += 1
        mean = self.registry.histogram("task.seconds").mean
        remaining = max(0, total - done)
        status: Dict[str, Any] = {
            "role": self.role,
            "startup_seconds": self.startup_seconds,
            "tasks": {"total": total, "done": done, "running": running},
            "eta_seconds": (remaining * mean) if (mean and remaining) else None,
            "overhead_fraction": (
                max(0.0, wall - compute) / wall if wall > 0 else None
            ),
            "phases": dict(self.phases.breakdown()),
        }
        events = self.events
        if events is not None:
            status["events"] = {
                "last_seq": events.last_seq,
                "log_path": events.path,
            }
        return status

    def report(self) -> Dict[str, Any]:
        """The aggregate whole-job view (see export module docstring)."""
        operations = self.operations_breakdown()
        compute = sum(op["compute_seconds"] for op in operations)
        overhead = sum(op["overhead_seconds"] for op in operations)
        return {
            "version": export.REPORT_VERSION,
            "role": self.role,
            "startup": {
                "seconds": self.startup_seconds,
                "kind": self.startup_kind,
            },
            "phases": dict(self.phases.breakdown()),
            "metrics": self.registry.snapshot(),
            "sources": {
                name: registry.snapshot()
                for name, registry in sorted(self._sources.items())
            },
            "spans": self.tracer.snapshot(),
            "operations": operations,
            "summary": {
                "startup_seconds": self.startup_seconds or 0.0,
                "compute_seconds": compute,
                "overhead_seconds": overhead,
                "task_count": len(self.tracer),
            },
        }
