"""Shuffle-skew accounting.

The partition function decides how evenly a dataset's records spread
across its reduce buckets; a fat bucket makes its reduce task a
straggler by construction.  Skew-resistant partitioning (Goodrich et
al., PAPERS.md) needs this measured before it can be eliminated, so the
task runners report per-bucket emitted sizes — ``[split, records,
bytes]`` triples piggybacked on the done RPC — and the coordinator
rolls them into per-dataset summaries here.

Two standard dispersion statistics per dataset:

* **max/median bucket ratio** — how much fatter the worst bucket is
  than the typical one (1.0 = perfectly balanced; the direct proxy for
  "the slowest reduce task's input is N× the median").
* **Gini coefficient** — overall inequality of the bucket-size
  distribution in [0, 1) (0 = uniform).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence


def gini(values: Sequence[float]) -> Optional[float]:
    """Gini coefficient of a non-negative distribution, or ``None`` for
    an empty/all-zero one.  Sorted-values formula:
    ``G = (2 * sum(i * x_i)) / (n * sum(x)) - (n + 1) / n`` (1-based i).
    """
    xs = sorted(float(v) for v in values)
    n = len(xs)
    total = sum(xs)
    if n == 0 or total <= 0.0:
        return None
    weighted = sum(i * x for i, x in enumerate(xs, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def max_over_median(values: Sequence[float]) -> Optional[float]:
    """Max/median ratio of a distribution, or ``None`` when undefined
    (empty input or zero median)."""
    xs = sorted(float(v) for v in values)
    n = len(xs)
    if n == 0:
        return None
    mid = n // 2
    median = xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])
    if median <= 0.0:
        return None
    return xs[-1] / median


class SkewTracker:
    """Per-dataset bucket accounting, fed from task completions.

    ``record_emitted`` sums each map task's per-bucket output — many
    tasks contribute to the same split, so values accumulate.
    ``record_fetched`` accounts the reduce side: how many bytes task
    ``split`` actually pulled over the data plane.  Thread-safe (the
    coordinator folds results under its own lock, but the status
    surface reads concurrently).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: dataset_id -> split -> {"records": float, "bytes": float}
        self._emitted: Dict[str, Dict[int, Dict[str, float]]] = {}
        #: dataset_id -> split -> {"bytes": float, "records": float}
        self._fetched: Dict[str, Dict[int, Dict[str, float]]] = {}

    def record_emitted(
        self, dataset_id: str, buckets: Sequence[Sequence[Any]]
    ) -> None:
        """Fold one task's ``[split, records, bytes]`` triples in."""
        if not buckets:
            return
        with self._lock:
            per_split = self._emitted.setdefault(dataset_id, {})
            for triple in buckets:
                try:
                    split = int(triple[0])
                    records = float(triple[1])
                    nbytes = float(triple[2])
                except (TypeError, ValueError, IndexError):
                    continue
                entry = per_split.setdefault(
                    split, {"records": 0.0, "bytes": 0.0}
                )
                entry["records"] += records
                entry["bytes"] += nbytes

    def record_fetched(
        self,
        dataset_id: str,
        split: int,
        nbytes: float,
        records: Optional[float] = None,
    ) -> None:
        with self._lock:
            per_split = self._fetched.setdefault(dataset_id, {})
            entry = per_split.setdefault(
                int(split), {"records": 0.0, "bytes": 0.0}
            )
            entry["bytes"] += float(nbytes)
            if records is not None:
                entry["records"] += float(records)

    def forget_dataset(self, dataset_id: str) -> None:
        with self._lock:
            self._emitted.pop(dataset_id, None)
            self._fetched.pop(dataset_id, None)

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-dataset skew rollup over the emitted-side accounting
        (the authoritative per-bucket view), with fetched-side totals
        attached when present."""
        with self._lock:
            emitted = {
                dataset_id: {
                    split: dict(entry) for split, entry in per_split.items()
                }
                for dataset_id, per_split in self._emitted.items()
            }
            fetched_bytes = {
                dataset_id: sum(e["bytes"] for e in per_split.values())
                for dataset_id, per_split in self._fetched.items()
            }
        out: Dict[str, Dict[str, Any]] = {}
        for dataset_id, per_split in emitted.items():
            byte_sizes = [entry["bytes"] for entry in per_split.values()]
            record_counts = [
                entry["records"] for entry in per_split.values()
            ]
            row: Dict[str, Any] = {
                "buckets": len(per_split),
                "bytes_total": sum(byte_sizes),
                "records_total": sum(record_counts),
                "bytes_max": max(byte_sizes) if byte_sizes else 0.0,
                "max_over_median_bytes": max_over_median(byte_sizes),
                "max_over_median_records": max_over_median(record_counts),
                "gini_bytes": gini(byte_sizes),
                "gini_records": gini(record_counts),
            }
            if dataset_id in fetched_bytes:
                row["fetched_bytes_total"] = fetched_bytes[dataset_id]
            out[dataset_id] = row
        # Fetch-only datasets (e.g. reduce inputs whose emit side was
        # never reported) still show their transfer totals.
        for dataset_id, total in fetched_bytes.items():
            if dataset_id not in out:
                out[dataset_id] = {
                    "buckets": 0,
                    "bytes_total": 0.0,
                    "records_total": 0.0,
                    "bytes_max": 0.0,
                    "max_over_median_bytes": None,
                    "max_over_median_records": None,
                    "gini_bytes": None,
                    "gini_records": None,
                    "fetched_bytes_total": total,
                }
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(set(self._emitted) | set(self._fetched))
