"""Per-task span tracing.

Every task moves through a fixed lifecycle::

    queued -> started -> map|reduce -> serialize -> transfer -> committed

``queued`` is stamped when the operation is submitted, ``started`` when
a runtime begins executing the task, ``map``/``reduce`` when the user
function finishes, ``serialize`` when output buckets are persisted,
``transfer`` when output URLs are published (distributed runs), and
``committed`` when the owning dataset accepts the buckets.

A span's events are timestamps on the *recording process's* monotonic
clock, so cross-process phases cannot be stitched from raw stamps.
Instead, a slave derives phase *durations* from its local span and
piggybacks them on the task-completion RPC; the master attaches them to
its own span for the task via :meth:`TaskSpan.add_duration`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

#: Canonical lifecycle event names, in order.
EVENTS = (
    "queued",
    "started",
    "map",
    "reduce",
    "serialize",
    "transfer",
    "committed",
)


class TaskSpan:
    """The recorded lifecycle of one task of one dataset."""

    def __init__(self, dataset_id: str, task_index: int):
        self.dataset_id = dataset_id
        self.task_index = int(task_index)
        #: (event, monotonic timestamp) in arrival order.
        self.events: List[Tuple[str, float]] = []
        #: Phase durations in seconds, either derived locally from
        #: consecutive events or attached from another process.
        self.durations: Dict[str, float] = {}
        #: Path of a retained ``--mrs-profile-tasks`` .pstats dump for
        #: this task, when it ranked among the slowest.
        self.profile_path: Optional[str] = None
        #: Transfer-plane fetch sub-spans: ``(start, end, fields)`` on
        #: this process's monotonic clock, recorded by the reduce-side
        #: prefetcher (one per fetched remote bucket).
        self.fetch_spans: List[Tuple[float, float, Dict[str, Any]]] = []
        self._lock = threading.Lock()

    def mark(self, event: str, timestamp: Optional[float] = None) -> None:
        """Record ``event`` now; derives the duration since the
        previous event and attributes it to ``event``."""
        now = time.perf_counter() if timestamp is None else timestamp
        with self._lock:
            if self.events:
                previous_time = self.events[-1][1]
                elapsed = max(0.0, now - previous_time)
                self.durations[event] = self.durations.get(event, 0.0) + elapsed
            self.events.append((event, now))

    def add_duration(self, event: str, seconds: float) -> None:
        """Attach an externally measured phase duration (piggybacked
        from another process's span)."""
        with self._lock:
            self.durations[event] = self.durations.get(event, 0.0) + float(
                seconds
            )

    def add_fetch_span(self, start: float, end: float, **fields: Any) -> None:
        """Record one remote-bucket fetch (local monotonic stamps).

        Called from prefetcher threads while the task runs; rendered as
        sub-lanes under the task's trace track so fetch/merge overlap
        is visible (see :mod:`repro.observability.timeline`).
        """
        with self._lock:
            self.fetch_spans.append(
                (float(start), max(float(start), float(end)), dict(fields))
            )

    def has_event(self, event: str) -> bool:
        with self._lock:
            return any(name == event for name, _ in self.events)

    def event_time(self, event: str) -> Optional[float]:
        """Timestamp of the first ``event`` mark (local monotonic
        clock), or None; the anchor cross-process event merging uses."""
        with self._lock:
            for name, timestamp in self.events:
                if name == event:
                    return timestamp
            return None

    @property
    def total_seconds(self) -> float:
        with self._lock:
            if len(self.events) < 2:
                return 0.0
            return self.events[-1][1] - self.events[0][1]

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            first = self.events[0][1] if self.events else 0.0
            span = {
                "dataset_id": self.dataset_id,
                "task_index": self.task_index,
                "events": [
                    {"event": name, "offset": t - first}
                    for name, t in self.events
                ],
                "durations": dict(self.durations),
                "total_seconds": (
                    self.events[-1][1] - first if len(self.events) >= 2 else 0.0
                ),
            }
            if self.profile_path is not None:
                span["profile"] = self.profile_path
            if self.fetch_spans:
                span["fetches"] = [
                    {
                        "offset": start - first,
                        "seconds": end - start,
                        **{k: v for k, v in fields.items() if v is not None},
                    }
                    for start, end, fields in self.fetch_spans
                ]
            return span

    def durations_dict(self) -> Dict[str, float]:
        with self._lock:
            return dict(self.durations)

    def __repr__(self) -> str:
        names = "->".join(name for name, _ in self.events)
        return (
            f"TaskSpan({self.dataset_id}[{self.task_index}], {names or '<empty>'})"
        )


class Tracer:
    """Get-or-create registry of task spans, keyed by (dataset, task)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: Dict[Tuple[str, int], TaskSpan] = {}

    def span(self, dataset_id: str, task_index: int) -> TaskSpan:
        key = (dataset_id, int(task_index))
        with self._lock:
            span = self._spans.get(key)
            if span is None:
                span = self._spans[key] = TaskSpan(dataset_id, task_index)
            return span

    def get(self, dataset_id: str, task_index: int) -> Optional[TaskSpan]:
        with self._lock:
            return self._spans.get((dataset_id, int(task_index)))

    def spans(self) -> List[TaskSpan]:
        with self._lock:
            return [span for _, span in sorted(self._spans.items())]

    def spans_for(self, dataset_id: str) -> List[TaskSpan]:
        with self._lock:
            return [
                span
                for (did, _), span in sorted(self._spans.items())
                if did == dataset_id
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def snapshot(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans()]
