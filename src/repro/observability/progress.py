"""Live progress: the ``--mrs-progress`` stderr ticker.

The paper's users run iterative jobs that queue thousands of tasks
ahead; without a live view the only signal is the shell cursor
blinking.  :class:`ProgressTicker` re-renders one status line every
interval from ``backend.status()`` — tasks done/total, percentage, an
ETA extrapolated from the task-duration histogram, and the live
overhead fraction (framework seconds over wall seconds so far), the
in-flight version of the numbers the paper's evaluation reports.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, List, Optional, Tuple


def _dataset_states(status: dict) -> List[Tuple[str, bool]]:
    """Normalize the two dataset-status shapes — the master's list of
    row dicts and the multiprocess backend's ``{id: state}`` dict — to
    ``(dataset_id, complete)`` pairs."""
    datasets = status.get("datasets")
    if isinstance(datasets, dict):
        return [
            (str(ds_id), state == "complete")
            for ds_id, state in datasets.items()
        ]
    if isinstance(datasets, list):
        return [
            (str(row["id"]), bool(row.get("complete")))
            for row in datasets
            if isinstance(row, dict) and "id" in row
        ]
    return []


def _job_key(job_id: str) -> Tuple[int, str]:
    try:
        return int(job_id.split("-", 1)[1]), job_id
    except (IndexError, ValueError):
        return 1 << 30, job_id


def job_segments(status: dict) -> List[str]:
    """Per-job dataset progress segments for service mode, grouped by
    the ``job-N.`` dataset-id namespace prefix (empty for plain jobs)."""
    groups: dict = {}
    for ds_id, complete in _dataset_states(status):
        prefix, dot, _ = ds_id.partition(".")
        if not dot or not prefix.startswith("job-"):
            continue
        done, total = groups.get(prefix, (0, 0))
        groups[prefix] = (done + (1 if complete else 0), total + 1)
    return [
        f"{job} {done}/{total} ds"
        for job, (done, total) in sorted(
            groups.items(), key=lambda item: _job_key(item[0])
        )
    ]


def format_status_line(status: dict) -> str:
    """One human-readable line from a ``Job.status()`` snapshot.

    In service mode, dataset ids carry a ``job-N.`` namespace prefix;
    the line then appends one ``job-N done/total ds`` segment per live
    job so concurrent submissions are tellable apart.
    """
    tasks = status.get("tasks") or {}
    done = int(tasks.get("done", 0))
    total = int(tasks.get("total", 0))
    percent = (100.0 * done / total) if total else 0.0
    parts = [f"[mrs] {done}/{total} tasks ({percent:.0f}%)"]
    eta = status.get("eta_seconds")
    if eta is not None:
        parts.append(f"eta {eta:.1f}s")
    overhead = status.get("overhead_fraction")
    if overhead is not None:
        parts.append(f"overhead {100.0 * overhead:.0f}%")
    running = tasks.get("running")
    if running:
        parts.append(f"{running} running")
    parts.extend(job_segments(status))
    return "  ".join(parts)


class ProgressTicker:
    """Background thread that repaints a status line on stderr."""

    def __init__(
        self,
        backend: Any,
        interval: float = 1.0,
        stream=None,
    ):
        self.backend = backend
        self.interval = float(interval)
        self.stream = stream if stream is not None else sys.stderr
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_width = 0

    def start(self) -> "ProgressTicker":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="mrs-progress", daemon=True
            )
            self._thread.start()
        return self

    def _render_once(self) -> None:
        try:
            status = self.backend.status()
        except Exception:
            return  # a torn-down backend must never crash the ticker
        line = format_status_line(status)
        pad = max(0, self._last_width - len(line))
        self._last_width = len(line)
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):
            pass  # closed stream (interpreter teardown)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._render_once()

    def stop(self) -> None:
        """Stop the thread and finish the line with a newline."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self._render_once()
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def __enter__(self) -> "ProgressTicker":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
