"""Structured runtime event log: the live counterpart of the report.

The one-shot ``--mrs-metrics-json`` report answers "what did the job
cost" *after* it finishes; the event log answers "what is the job doing
*right now*" and "in what order did things happen".  Every backend
emits typed, monotonic-timestamped events — job/dataset/task lifecycle,
scheduler decisions, spills, worker/slave death and requeue, heartbeats
— into an :class:`EventLog`:

* an in-memory ring buffer feeds the live status plane
  (``Job.status()``, ``--mrs-progress``, ``--mrs-status-http``) and the
  end-of-job timeline conversion (:mod:`repro.observability.timeline`),
* with ``--mrs-event-log PATH``, every event is also appended to a
  crash-safe JSONL stream: one complete line per event, written with a
  single ``write`` call and flushed, so a crash can at worst truncate
  the final line (which :func:`read_jsonl` tolerates).  Lines carry a
  per-process sequence number plus ``pid``/``role`` fields, so several
  processes may append to the *same* file and readers can still
  reconstruct each process's exact emission order.

Cost discipline: when no consumer asked for events, a backend's
``observability.events`` is ``None`` and every emission site is a
single attribute check — no allocation, no locking, no clock read.

Event envelope (one JSON object per line)::

    {"seq": 17, "t": 3.4183, "name": "task.started",
     "pid": 4242, "role": "master", "fields": {"dataset_id": "...",
     "task_index": 0, "worker": 2}}

``t`` is ``time.perf_counter()`` of the *emitting* process — monotonic
but process-local.  Cross-process merging therefore never compares raw
stamps: a slave/worker ships its per-task events as *offsets* from its
own task start (:func:`piggyback_events_from_span`), and the
coordinator re-anchors them at its local dispatch timestamp for the
same task (:meth:`EventLog.emit_anchored`) — the same skew-tolerant
model ``TaskSpan.add_duration`` uses for durations.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "EventLog",
    "read_jsonl",
    "piggyback_events_from_span",
    "span_phase_marks",
    "PHASE_MARKS",
]

#: Default ring-buffer capacity when the full stream need not be kept.
DEFAULT_RING_SIZE = 4096

#: Span marks that delimit task phases, in lifecycle order.  The phase
#: *ending* at mark ``m`` spans from the previous mark to ``m``; the
#: pair ending at "started" is the input fetch.
PHASE_MARKS = ("started", "map", "reduce", "serialize", "transfer")

#: Display name for the phase that ends at each mark ("started" means
#: "inputs became ready", so the phase before it is the fetch).
PHASE_LABELS = {"started": "fetch"}


class EventLog:
    """Ring buffer + optional append-only JSONL sink for typed events.

    Thread-safe; emission is a lock, a counter bump, a deque append,
    and (with a sink) one buffered line write + flush.
    """

    def __init__(
        self,
        role: str,
        path: Optional[str] = None,
        ring_size: Optional[int] = DEFAULT_RING_SIZE,
        pid: Optional[int] = None,
    ):
        self.role = role
        self.pid = int(pid if pid is not None else os.getpid())
        self.path = path
        self._seq = 0
        self._lock = threading.Lock()
        #: ring_size=None keeps the full stream (needed when a trace
        #: will be built from memory at job end).
        self._ring: deque = deque(maxlen=ring_size)
        self._file = None
        if path:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            # Append mode: several processes (slaves sharing a tmpdir,
            # pool workers) may target one file; each line is written
            # with a single write() on an O_APPEND descriptor.
            self._file = open(path, "a", encoding="utf-8")

    # -- emission -------------------------------------------------------

    def emit(
        self, name: str, t: Optional[float] = None, **fields: Any
    ) -> Dict[str, Any]:
        """Record one event; returns the event dict.

        ``t`` overrides the timestamp (still on this process's
        monotonic clock) for events whose true time is already known —
        e.g. a phase boundary derived from a span mark.
        """
        stamp = time.perf_counter() if t is None else float(t)
        event: Dict[str, Any] = {
            "seq": 0,  # patched under the lock
            "t": stamp,
            "name": name,
            "pid": self.pid,
            "role": self.role,
        }
        if fields:
            event["fields"] = fields
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._ring.append(event)
            if self._file is not None:
                # One complete line per write call: a crash mid-job
                # leaves at most one truncated trailing line behind.
                self._file.write(
                    json.dumps(event, separators=(",", ":"), sort_keys=True)
                    + "\n"
                )
                self._file.flush()
        return event

    def emit_anchored(
        self,
        remote_events: Iterable[Dict[str, Any]],
        anchor_t: float,
        role: str,
        pid: Optional[int] = None,
        **extra_fields: Any,
    ) -> int:
        """Merge another process's piggybacked events into this log.

        ``remote_events`` carry ``offset`` seconds relative to the
        remote task start; each is re-stamped at ``anchor_t + offset``
        on *this* process's clock (``anchor_t`` is normally the local
        span's "started" mark for the same task, so clock skew between
        processes never leaks into the merged stream).  Returns the
        number of events merged.
        """
        count = 0
        for remote in remote_events:
            name = remote.get("name")
            if not name:
                continue
            try:
                offset = float(remote.get("offset", 0.0))
            except (TypeError, ValueError):
                continue
            fields = dict(remote.get("fields") or {})
            fields.update(extra_fields)
            event: Dict[str, Any] = {
                "seq": 0,
                "t": anchor_t + offset,
                "name": str(name),
                # Default to *this* process's pid: merged events then
                # share a trace lane with the coordinator's own
                # task.started/committed markers for the same worker.
                "pid": int(remote.get("pid", pid if pid is not None else self.pid)),
                "role": str(remote.get("role", role)),
            }
            if fields:
                event["fields"] = fields
            with self._lock:
                self._seq += 1
                event["seq"] = self._seq
                self._ring.append(event)
                if self._file is not None:
                    self._file.write(
                        json.dumps(event, separators=(",", ":"), sort_keys=True)
                        + "\n"
                    )
                    self._file.flush()
            count += 1
        return count

    # -- reading --------------------------------------------------------

    def snapshot(
        self,
        since_seq: int = 0,
        dataset_prefix: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Events currently in the ring with ``seq > since_seq``.

        ``dataset_prefix`` keeps only events whose ``dataset_id`` or
        ``job_id`` field falls under the prefix — the per-job event
        slice a multi-job server serves at ``GET /jobs/<id>/events``
        (job namespaces prefix every dataset id, so ``"job-3."``
        matches exactly job 3's task/dataset lifecycle).
        """
        with self._lock:
            events = [e for e in self._ring if e["seq"] > since_seq]
        if dataset_prefix is None:
            return events
        job_id = dataset_prefix.rstrip(".")
        matched = []
        for event in events:
            fields = event.get("fields") or {}
            dataset_id = fields.get("dataset_id")
            if isinstance(dataset_id, str) and dataset_id.startswith(
                dataset_prefix
            ):
                matched.append(event)
            elif fields.get("job_id") == job_id:
                matched.append(event)
        return matched

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def last_seq(self) -> int:
        return self._seq

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.flush()
                    self._file.close()
                finally:
                    self._file = None


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse an event-log JSONL file back into event dicts.

    A crash mid-write can truncate the *final* line; that line is
    silently dropped.  A malformed line anywhere else means the file
    was not produced by :class:`EventLog` (or was corrupted in place)
    and raises ``ValueError``.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().split("\n")
    # A well-formed file ends with "\n", so the final split element is
    # empty; anything non-empty there is a truncated trailing write.
    complete, trailing = lines[:-1], lines[-1]
    for lineno, line in enumerate(complete, start=1):
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(complete) and not trailing:
                # Truncated final line without a newline elsewhere in
                # the file (crash between the bytes and the "\n").
                break
            raise ValueError(
                f"{path}:{lineno}: malformed event line: {line[:80]!r}"
            ) from exc
        if isinstance(event, dict):
            events.append(event)
    return events


def span_phase_marks(span: Any, include_fetch: bool) -> List[Dict[str, Any]]:
    """Phase boundaries from a span's recorded marks.

    Returns ``[{"phase": name, "offset": end_offset, "seconds": dur}]``
    where offsets are relative to the span's first mark.  Consecutive
    marks delimit phases; the pair ending at "started" (everything
    between task receipt and inputs-ready) is the input *fetch* and is
    only meaningful on the executing process — coordinators pass
    ``include_fetch=False`` because their queued→started gap is
    scheduler wait, not work.
    """
    marks = span.to_dict()["events"]
    phases: List[Dict[str, Any]] = []
    for previous, current in zip(marks, marks[1:]):
        name = current["event"]
        if name not in PHASE_MARKS:
            continue
        if name == "started" and not include_fetch:
            continue
        phases.append(
            {
                "phase": PHASE_LABELS.get(name, name),
                "offset": current["offset"],
                "seconds": max(0.0, current["offset"] - previous["offset"]),
            }
        )
    return phases


def piggyback_events_from_span(span: Any) -> List[Dict[str, Any]]:
    """The per-task event batch a slave/worker ships on its done RPC.

    Offsets are relative to the remote task start (the span's first
    mark), so the coordinator can re-anchor them on its own clock with
    :meth:`EventLog.emit_anchored`.  Kept deliberately tiny — a handful
    of dicts of scalars per task — because it rides the existing
    task-completion message.
    """
    batch: List[Dict[str, Any]] = [
        {
            "name": "task.phase",
            "offset": phase["offset"],
            "fields": {"phase": phase["phase"], "seconds": phase["seconds"]},
        }
        for phase in span_phase_marks(span, include_fetch=True)
    ]
    # Transfer-plane fetch sub-spans (reduce-side prefetcher), shipped
    # as end-offset + duration like task.phase so the coordinator's
    # timeline can draw them overlapping the merge.
    for fetch in span.to_dict().get("fetches", ()):
        batch.append(
            {
                "name": "fetch.span",
                "offset": fetch["offset"] + fetch["seconds"],
                "fields": {
                    "seconds": fetch["seconds"],
                    "thread": fetch.get("thread", 0),
                    "source": fetch.get("source"),
                },
            }
        )
    return batch
