"""Chrome/Perfetto ``trace_event`` conversion for merged event streams.

``--mrs-trace PATH`` turns a job's event stream into a JSON file that
``chrome://tracing`` and https://ui.perfetto.dev open directly: one
track per executing worker/slave (serial backends get a single track),
a ``B``/``E`` span per task with nested spans for its phases
(fetch/map/reduce/serialize/transfer), per-prefetch-thread sub-lanes
showing transfer-plane bucket fetches overlapping the reduce merge, and
instant events for failures, requeues, and worker/slave deaths — so a
1000-task job is inspectable as a flame-style timeline instead of a
1000-row table.

Input is either a live :class:`~repro.observability.events.EventLog`
snapshot, a JSONL file written with ``--mrs-event-log``
(:func:`trace_from_jsonl`), or — degraded, structure-only — a finished
metrics report (:func:`trace_from_report`; spans keep their internal
phase layout but each task is re-based at its own zero because the
report stores only per-span offsets).

Output schema (the "JSON Array Format" plus process/thread metadata)::

    {"traceEvents": [
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": "master"}},
        {"ph": "B", "pid": 1, "tid": 2, "ts": 1834.0,
         "name": "wordcount_map_0[3]", "cat": "task"},
        {"ph": "E", "pid": 1, "tid": 2, "ts": 20210.5},
        {"ph": "i", "pid": 1, "tid": 2, "ts": 9000.0, "s": "g",
         "name": "task.failed", ...},
     ],
     "displayTimeUnit": "ms"}

``ts`` is microseconds from the earliest event in the stream.  Every
``B`` has a matching ``E`` on the same ``pid``/``tid``; tasks that
never committed are rendered as instants rather than unterminated
spans, so the pairing invariant holds for crashy jobs too.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "trace_from_events",
    "trace_from_jsonl",
    "trace_from_report",
    "write_trace",
]

#: Event names rendered as instant markers.
INSTANT_EVENTS = frozenset(
    {
        "task.failed",
        "task.requeued",
        "slave.lost",
        "worker.lost",
        "slave.signin",
        "worker.spawned",
        "spill.bucket",
        "task.profiled",
        "job.startup",
        "dataset.complete",
        "dataset.failed",
    }
)

_MICROS = 1e6


def _task_key(fields: Dict[str, Any]) -> Optional[Tuple[str, int]]:
    dataset_id = fields.get("dataset_id")
    task_index = fields.get("task_index")
    if dataset_id is None or task_index is None:
        return None
    return str(dataset_id), int(task_index)


class _Track:
    """One (pid, tid) lane plus its human-readable labels."""

    def __init__(self, pid: int, tid: int, process: str, thread: str):
        self.pid = pid
        self.tid = tid
        self.process = process
        self.thread = thread


def _track_for(event: Dict[str, Any]) -> Tuple[int, int, str, str]:
    """Assign an event to a (pid, tid, process label, thread label).

    Work attributed to a specific worker/slave gets its own lane
    (``tid`` = worker/slave id + 1); everything else lands on the
    emitting process's lane 0.
    """
    fields = event.get("fields") or {}
    pid = int(event.get("pid", 0))
    role = str(event.get("role", "mrs"))
    worker = fields.get("worker")
    if worker is not None:
        return pid, int(worker) + 1, role, f"worker-{worker}"
    slave = fields.get("slave")
    if slave is not None:
        return pid, int(slave) + 1, role, f"slave-{slave}"
    return pid, 0, role, role


def trace_from_events(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Build a trace_event document from a merged event stream."""
    events = [e for e in events if isinstance(e, dict) and "t" in e]
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(float(e["t"]) for e in events)

    def ts(t: float) -> float:
        return max(0.0, (float(t) - t0) * _MICROS)

    trace: List[Dict[str, Any]] = []
    tracks: Dict[Tuple[int, int], _Track] = {}

    def track(event: Dict[str, Any]) -> _Track:
        pid, tid, process, thread = _track_for(event)
        key = (pid, tid)
        if key not in tracks:
            tracks[key] = _Track(pid, tid, process, thread)
        return tracks[key]

    # Pass 1: collect per-task lifecycle boundaries and phases so each
    # task renders as one properly nested B/E group on its lane.
    started: Dict[Tuple[str, int], Dict[str, Any]] = {}
    phases: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
    fetches: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
    committed: Dict[Tuple[str, int], Dict[str, Any]] = {}
    for event in events:
        name = event.get("name")
        fields = event.get("fields") or {}
        key = _task_key(fields)
        if key is None:
            continue
        if name == "task.started":
            # Requeued tasks start more than once; the last start wins
            # (earlier attempts end in task.failed/requeued instants).
            started[key] = event
            phases[key] = []
            fetches[key] = []
        elif name == "task.phase":
            phases.setdefault(key, []).append(event)
        elif name == "fetch.span":
            fetches.setdefault(key, []).append(event)
        elif name == "task.committed":
            committed[key] = event

    for key, start_event in sorted(started.items()):
        end_event = committed.get(key)
        if end_event is None:
            continue  # rendered as instants only; keeps B/E paired
        lane = track(start_event)
        dataset_id, task_index = key
        begin_ts = ts(start_event["t"])
        end_ts = max(ts(end_event["t"]), begin_ts)
        sub: List[Tuple[float, float, str]] = []
        for phase_event in phases.get(key, ()):
            pf = phase_event.get("fields") or {}
            seconds = float(pf.get("seconds", 0.0))
            phase_end = ts(phase_event["t"])
            phase_begin = max(begin_ts, phase_end - seconds * _MICROS)
            phase_end = max(phase_begin, phase_end)
            end_ts = max(end_ts, phase_end)
            sub.append((phase_begin, phase_end, str(pf.get("phase", "phase"))))
        trace.append(
            {
                "ph": "B",
                "pid": lane.pid,
                "tid": lane.tid,
                "ts": begin_ts,
                "name": f"{dataset_id}[{task_index}]",
                "cat": "task",
                "args": {"dataset_id": dataset_id, "task_index": task_index},
            }
        )
        for phase_begin, phase_end, phase_name in sorted(sub):
            trace.append(
                {
                    "ph": "B",
                    "pid": lane.pid,
                    "tid": lane.tid,
                    "ts": phase_begin,
                    "name": phase_name,
                    "cat": "phase",
                }
            )
            trace.append(
                {
                    "ph": "E",
                    "pid": lane.pid,
                    "tid": lane.tid,
                    "ts": phase_end,
                }
            )
        trace.append(
            {"ph": "E", "pid": lane.pid, "tid": lane.tid, "ts": end_ts}
        )
        # Transfer-plane fetches: each prefetch thread gets its own
        # sub-lane under the worker's track (tid offset keeps the main
        # lane's B/E nesting intact), so fetch spans visibly overlap
        # the task's merge/reduce phases.
        for fetch_event in sorted(
            fetches.get(key, ()), key=lambda e: float(e["t"])
        ):
            ff = fetch_event.get("fields") or {}
            seconds = float(ff.get("seconds", 0.0))
            thread = int(ff.get("thread", 0))
            fetch_end = max(ts(fetch_event["t"]), begin_ts)
            fetch_begin = max(begin_ts, fetch_end - seconds * _MICROS)
            fetch_tid = (thread + 1) * 10000 + lane.tid
            track_key = (lane.pid, fetch_tid)
            if track_key not in tracks:
                tracks[track_key] = _Track(
                    lane.pid, fetch_tid, lane.process,
                    f"{lane.thread} fetch#{thread}",
                )
            trace.append(
                {
                    "ph": "B",
                    "pid": lane.pid,
                    "tid": fetch_tid,
                    "ts": fetch_begin,
                    "name": f"fetch source {ff.get('source')}",
                    "cat": "fetch",
                    "args": {
                        "dataset_id": dataset_id,
                        "task_index": task_index,
                        "source": ff.get("source"),
                    },
                }
            )
            trace.append(
                {
                    "ph": "E",
                    "pid": lane.pid,
                    "tid": fetch_tid,
                    "ts": max(fetch_begin, fetch_end),
                }
            )

    # Pass 2: instants (failures, requeues, deaths, spills, markers).
    for event in events:
        name = event.get("name")
        if name not in INSTANT_EVENTS:
            continue
        lane = track(event)
        trace.append(
            {
                "ph": "i",
                "pid": lane.pid,
                "tid": lane.tid,
                "ts": ts(event["t"]),
                "s": "g",
                "name": str(name),
                "cat": "marker",
                "args": dict(event.get("fields") or {}),
            }
        )

    # Metadata last: label every process/thread lane that appeared.
    for lane in tracks.values():
        trace.append(
            {
                "ph": "M",
                "pid": lane.pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": lane.process},
            }
        )
        trace.append(
            {
                "ph": "M",
                "pid": lane.pid,
                "tid": lane.tid,
                "name": "thread_name",
                "args": {"name": lane.thread},
            }
        )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def trace_from_jsonl(path: str) -> Dict[str, Any]:
    """Build a trace from a ``--mrs-event-log`` JSONL file."""
    from repro.observability.events import read_jsonl

    return trace_from_events(read_jsonl(path))


def trace_from_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """Structure-only trace from a finished metrics report.

    The report keeps only per-span *offsets*, so absolute alignment
    across tasks is lost: each task is re-based at zero on its own
    lane (``tid`` = task index).  Useful for inspecting relative phase
    layout of an already-collected report; for a true timeline, record
    an event log.
    """
    from repro.observability.events import PHASE_LABELS, PHASE_MARKS

    trace: List[Dict[str, Any]] = []
    role = str(report.get("role", "mrs"))
    for span in report.get("spans") or []:
        dataset_id = span.get("dataset_id")
        task_index = int(span.get("task_index", 0))
        marks = span.get("events") or []
        if len(marks) < 2:
            continue
        begin = float(marks[0]["offset"]) * _MICROS
        end = float(marks[-1]["offset"]) * _MICROS
        trace.append(
            {
                "ph": "B",
                "pid": 1,
                "tid": task_index,
                "ts": begin,
                "name": f"{dataset_id}[{task_index}]",
                "cat": "task",
                "args": {"dataset_id": dataset_id, "task_index": task_index},
            }
        )
        for previous, current in zip(marks, marks[1:]):
            name = current.get("event")
            if name not in PHASE_MARKS:
                continue
            trace.append(
                {
                    "ph": "B",
                    "pid": 1,
                    "tid": task_index,
                    "ts": float(previous["offset"]) * _MICROS,
                    "name": PHASE_LABELS.get(name, name),
                    "cat": "phase",
                }
            )
            trace.append(
                {
                    "ph": "E",
                    "pid": 1,
                    "tid": task_index,
                    "ts": float(current["offset"]) * _MICROS,
                }
            )
        trace.append({"ph": "E", "pid": 1, "tid": task_index, "ts": end})
    trace.append(
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"{role} (report, per-task offsets)"},
        }
    )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_trace(trace: Dict[str, Any], path: str) -> str:
    """Atomically write a trace document to ``path``; returns ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as f:
        json.dump(trace, f)
        f.write("\n")
    os.replace(tmp_path, path)
    return path
