"""Counters, gauges, and histograms for the runtime.

The paper's evaluation is built on overhead numbers — ~2 s startup,
~0.3 s per-iteration MapReduce overhead, ≥30 s per Hadoop operation —
so the runtime must be able to *measure itself* in production, not only
inside ad-hoc benchmark timers.  A :class:`MetricsRegistry` is cheap,
thread-safe, and fully serializable: a slave snapshots its registry,
ships the snapshot over the control plane, and the master merges it
into the whole-job view.

Three instrument kinds cover everything the runtime needs:

* :class:`Counter` — monotonically increasing event counts
  (tasks completed, RPC calls, failures).
* :class:`Gauge` — last-written values (slaves alive, queue depth).
* :class:`Histogram` — mergeable summaries of a distribution
  (task seconds, RPC latency): count / total / min / max.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

SNAPSHOT_VERSION = 1


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down; reports the last write."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A mergeable summary of observed values.

    Keeps count / total / min / max rather than buckets: the summary
    merges exactly (slave -> master aggregation) and is enough for the
    mean/extremes the paper's tables report.
    """

    __slots__ = ("count", "total", "min", "max", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count if self.count else 0.0,
            }

    def merge_dict(self, other: Dict[str, Any]) -> None:
        count = int(other.get("count", 0))
        if not count:
            return
        total = float(other.get("total", 0.0))
        omin = other.get("min")
        omax = other.get("max")
        with self._lock:
            self.count += count
            self.total += total
            if omin is not None:
                self.min = omin if self.min is None else min(self.min, omin)
            if omax is not None:
                self.max = omax if self.max is None else max(self.max, omax)


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Instrument names are dotted paths (``rpc.client.done``,
    ``tasks.completed``); the registry is flat — no label dimensions —
    because the runtime's cardinality is tiny and flat names serialize
    trivially over XML-RPC.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge()
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram()
            return inst

    # -- serialization / aggregation ------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data copy safe to ship over the control plane."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another process's snapshot into this registry.

        Counters and histograms add; gauges take the incoming value
        (last write wins, which is what "slaves alive"-style gauges
        want when each snapshot is newer than the last).
        """
        if not snapshot:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(float(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, summary in (snapshot.get("histograms") or {}).items():
            self.histogram(name).merge_dict(summary)
