"""Thin submission client for a running job server.

Usage::

    python -m repro.service.submit --server http://HOST:PORT \
        wordcount in.txt out/
    python -m repro.service.submit --server ... --status job-3
    python -m repro.service.submit --server ... --cancel job-3
    python -m repro.service.submit --server ... --list

A submission POSTs the program name and its argument list to
``/jobs``, then polls ``GET /jobs/<id>`` and streams progress lines to
stderr until the job is terminal.  Exit status: 0 done, 1 failed,
3 canceled, 2 usage/transport error.

The server address can also come from ``MRS_SERVER``; the auth token
(for submit/cancel against a token-protected server) from ``--token``
or ``MRS_AUTH_TOKEN``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple


class SubmitError(Exception):
    """Transport or protocol failure talking to the server."""


def _request(
    method: str,
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    token: Optional[str] = None,
    timeout: float = 30.0,
) -> Dict[str, Any]:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if token:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            detail = json.loads(body.decode("utf-8")).get("error", "")
        except Exception:
            detail = body.decode("utf-8", "replace")[:200]
        raise SubmitError(f"{method} {url}: HTTP {exc.code}: {detail}")
    except (urllib.error.URLError, OSError) as exc:
        raise SubmitError(f"{method} {url}: {exc}")
    try:
        return json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise SubmitError(f"{method} {url}: bad JSON response: {exc}")


def _progress_line(view: Dict[str, Any]) -> str:
    state = view.get("state", "?")
    parts = [f"{view.get('id', '?')} {state}"]
    datasets = view.get("datasets") or []
    if datasets:
        done = sum(1 for d in datasets if d.get("complete"))
        parts.append(f"datasets {done}/{len(datasets)}")
        active = [
            d for d in datasets if not d.get("complete") and not d.get("error")
        ]
        if active:
            current = active[0]
            parts.append(
                f"{current['id']} {current.get('progress', 0.0) * 100:.0f}%"
            )
    dispatched = view.get("dispatched_tasks")
    if dispatched:
        parts.append(f"tasks {dispatched}")
    if view.get("error"):
        parts.append(f"error: {view['error']}")
    return "  ".join(parts)


def watch(
    server: str,
    job_id: str,
    token: Optional[str] = None,
    poll_interval: float = 0.5,
    out=sys.stderr,
) -> Dict[str, Any]:
    """Poll one job until terminal, streaming progress; returns the
    final view."""
    last_line = None
    while True:
        view = _request("GET", f"{server}/jobs/{job_id}", token=token)
        line = _progress_line(view)
        if line != last_line:
            print(line, file=out, flush=True)
            last_line = line
        if view.get("state") in ("done", "failed", "canceled"):
            return view
        time.sleep(poll_interval)


def _exit_code(state: str) -> int:
    return {"done": 0, "failed": 1, "canceled": 3}.get(state, 2)


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="mrs-submit",
        description="Submit a job to a running Mrs job server.",
    )
    parser.add_argument(
        "--server",
        default=os.environ.get("MRS_SERVER"),
        help="control URL, e.g. http://127.0.0.1:8123 (or $MRS_SERVER)",
    )
    parser.add_argument(
        "--token",
        default=os.environ.get("MRS_AUTH_TOKEN"),
        help="auth token for submit/cancel (or $MRS_AUTH_TOKEN)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between progress polls (default 0.5)",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="submit and print the job id without waiting",
    )
    parser.add_argument(
        "--list", action="store_true", help="list jobs and exit"
    )
    parser.add_argument(
        "--status", metavar="JOB_ID", help="print one job's view and exit"
    )
    parser.add_argument(
        "--cancel", metavar="JOB_ID", help="cancel one job and exit"
    )
    parser.add_argument(
        "program",
        nargs="?",
        help="registered program name (e.g. wordcount)",
    )
    parser.add_argument(
        "args",
        nargs=argparse.REMAINDER,
        help="arguments passed to the program (inputs, output dir, flags)",
    )
    return parser.parse_args(argv)


def _run(ns: argparse.Namespace) -> int:
    if not ns.server:
        print(
            "error: no server (use --server or $MRS_SERVER)",
            file=sys.stderr,
        )
        return 2
    server = ns.server.rstrip("/")
    if ns.list:
        view = _request("GET", f"{server}/jobs", token=ns.token)
        print(json.dumps(view, indent=2))
        return 0
    if ns.status:
        view = _request("GET", f"{server}/jobs/{ns.status}", token=ns.token)
        print(json.dumps(view, indent=2))
        return _exit_code(view.get("state", "?")) if view.get(
            "state"
        ) in ("done", "failed", "canceled") else 0
    if ns.cancel:
        view = _request(
            "DELETE", f"{server}/jobs/{ns.cancel}", token=ns.token
        )
        print(json.dumps(view, indent=2))
        return 0
    if not ns.program:
        print(
            "error: a program name is required (or --list/--status/--cancel)",
            file=sys.stderr,
        )
        return 2
    view = _request(
        "POST",
        f"{server}/jobs",
        payload={"program": ns.program, "args": list(ns.args)},
        token=ns.token,
    )
    job_id = view.get("id")
    if not job_id:
        print(f"error: submission returned no job id: {view}", file=sys.stderr)
        return 2
    print(job_id, flush=True)
    if ns.no_wait:
        return 0
    final = watch(
        server, job_id, token=ns.token, poll_interval=ns.poll_interval
    )
    return _exit_code(final.get("state", "?"))


def main(argv: Optional[List[str]] = None) -> int:
    ns = parse_args(argv)
    try:
        return _run(ns)
    except SubmitError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted (job keeps running; --cancel to stop it)",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
