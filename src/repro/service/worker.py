"""The program-agnostic program a service slave boots with.

A classic slave binds one program class at boot; a service-pool slave
must run whatever jobs arrive, so it boots with this empty placeholder
and resolves the *real* program per task from the descriptor's
``program_spec`` (see ``Slave._program_for``).  Spawn one with::

    python -m repro.runtime.slave_boot repro.service.worker:ServiceWorker \
        --mrs slave --mrs-master HOST:PORT --mrs-tmpdir DIR
"""

from __future__ import annotations

from repro.core.program import MapReduce


class ServiceWorker(MapReduce):
    """Placeholder program for service-pool slaves.

    Its map/reduce are never called: every task descriptor a job
    server builds carries a ``program_spec``, and the slave resolves
    and runs that program instead.
    """

    def map(self, key, value):  # pragma: no cover - never dispatched
        raise RuntimeError(
            "ServiceWorker received a task without a program_spec; "
            "only a job server should drive this slave"
        )

    def reduce(self, key, values):  # pragma: no cover - never dispatched
        raise RuntimeError(
            "ServiceWorker received a task without a program_spec; "
            "only a job server should drive this slave"
        )


if __name__ == "__main__":  # pragma: no cover - manual slave launch
    from repro.core.main import exit_main

    exit_main(ServiceWorker)
