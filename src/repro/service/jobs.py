"""Job records and the namespaced Job facade used by the server.

A :class:`JobRecord` is the server-side state machine of one submitted
job (queued -> running -> done/failed/canceled); a :class:`ServiceJob`
is the :class:`~repro.core.job.Job` the job's program actually runs
against — identical to the classic facade except that every dataset it
creates is namespaced by the job id and that a set cancel event makes
further dataset creation and waits raise immediately.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.core import dataset as ds
from repro.core.job import Backend, Job, JobError

#: Job states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELED = "canceled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELED})


class JobRecord:
    """Server-side bookkeeping for one submitted job.

    The record's ``id`` doubles as the dataset/metric namespace: every
    dataset the job creates has an id like ``job-3.map_17``, so
    isolation falls out of plain string prefixes everywhere (run dirs,
    events, registries, the scheduler's fair share).
    """

    def __init__(self, job_id: str, program: str, args: List[str]):
        self.id = job_id
        self.program = program
        self.args = list(args)
        self.state = QUEUED
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cancel_event = threading.Event()
        #: The thread running the job's program, once admitted.
        self.thread: Optional[threading.Thread] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def view(self) -> Dict[str, Any]:
        """The JSON shape served at ``GET /jobs/<id>`` (sans the live
        backend slice the server merges in)."""
        return {
            "id": self.id,
            "program": self.program,
            "args": list(self.args),
            "state": self.state,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "latency_seconds": self.latency_seconds,
        }


class ServiceJob(Job):
    """A namespaced Job that honours a cancel event.

    Cancellation has two edges: datasets already queued are failed by
    ``MasterBackend.cancel_namespace`` (waiters wake with the error),
    and *future* dataset creation/waits raise here — so a canceled
    program unwinds promptly wherever it happens to be.
    """

    def __init__(
        self,
        backend: Backend,
        program: Any,
        namespace: str,
        cancel_event: Optional[threading.Event] = None,
    ):
        super().__init__(backend, program, namespace=namespace)
        self._cancel_event = cancel_event

    def _check_canceled(self) -> None:
        if self._cancel_event is not None and self._cancel_event.is_set():
            raise JobError(f"job {self.namespace} canceled")

    def _register(self, dataset: ds.BaseDataset) -> ds.BaseDataset:
        self._check_canceled()
        return super()._register(dataset)

    def wait(
        self,
        *datasets: ds.BaseDataset,
        timeout: Optional[float] = None,
    ) -> List[ds.BaseDataset]:
        self._check_canceled()
        return super().wait(*datasets, timeout=timeout)
