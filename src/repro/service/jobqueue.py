"""Admission control for the shared slave pool.

A :class:`JobQueue` is a pure data structure (no threads, no I/O — the
:class:`~repro.service.server.JobServer` drives it under its own lock,
the same discipline the task scheduler follows): at most
``max_concurrent`` jobs run at once, further submissions wait FIFO.

Fairness *between admitted jobs* is the scheduler's round-robin
``next_task``; fairness *into admission* is this queue's strict FIFO —
no job can jump the line, and a finishing job always admits the oldest
waiter.
"""

from __future__ import annotations

from typing import List


class JobQueue:
    """FIFO admission queue with a concurrent-jobs cap."""

    def __init__(self, max_concurrent: int = 8):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.max_concurrent = max_concurrent
        self._queued: List[str] = []
        self._running: List[str] = []

    # -- mutation ------------------------------------------------------

    def submit(self, job_id: str) -> None:
        """Enqueue a job for admission."""
        if job_id in self._queued or job_id in self._running:
            raise ValueError(f"job {job_id!r} already queued or running")
        self._queued.append(job_id)

    def admit(self) -> List[str]:
        """Move waiting jobs into the running set while capacity
        remains; returns the newly admitted job ids in FIFO order."""
        admitted: List[str] = []
        while self._queued and len(self._running) < self.max_concurrent:
            job_id = self._queued.pop(0)
            self._running.append(job_id)
            admitted.append(job_id)
        return admitted

    def finish(self, job_id: str) -> bool:
        """Remove a job from the running set (done/failed/canceled);
        returns False for unknown ids (idempotent)."""
        try:
            self._running.remove(job_id)
        except ValueError:
            return False
        return True

    def withdraw(self, job_id: str) -> bool:
        """Remove a still-waiting job (canceled before admission);
        returns False if it was not queued."""
        try:
            self._queued.remove(job_id)
        except ValueError:
            return False
        return True

    # -- introspection -------------------------------------------------

    def running(self) -> List[str]:
        return list(self._running)

    def queued(self) -> List[str]:
        return list(self._queued)

    @property
    def active(self) -> int:
        return len(self._running)

    @property
    def waiting(self) -> int:
        return len(self._queued)

    def __repr__(self) -> str:
        return (
            f"JobQueue(running={self._running}, queued={self._queued}, "
            f"cap={self.max_concurrent})"
        )
