"""Multi-job service mode: a persistent job server over a shared pool.

The paper's core argument against Hadoop is per-job overhead — a Mrs
job starts in seconds because there is almost nothing to start.  This
package removes even that: a :class:`~repro.service.server.JobServer`
wraps one long-lived :class:`~repro.runtime.master.MasterBackend` (and
its slave pool) and multiplexes many *jobs* over it, so job N+1 pays
zero slave-signin or process-spawn cost.

* Submissions arrive over the grown ``--mrs-status-http`` control
  surface (``POST /jobs`` / ``GET /jobs/<id>`` / ``DELETE /jobs/<id>``),
* a :class:`~repro.service.jobqueue.JobQueue` admits up to
  ``--mrs-max-concurrent-jobs`` jobs at once (FIFO beyond that),
* the scheduler round-robins across admitted jobs at ``next_task``
  granularity, so a big job cannot starve a small one,
* every dataset id, metric, event, and run directory is namespaced by
  job id, so jobs are isolated: one erroring or being canceled leaves
  the others (and the server) untouched.

Entry points: ``--mrs serve`` on any program's command line, and the
thin client ``python -m repro.service.submit``.
"""

from repro.service.jobqueue import JobQueue
from repro.service.jobs import JobRecord, ServiceJob
from repro.service.registry import ProgramRegistry

__all__ = ["JobQueue", "JobRecord", "ServiceJob", "ProgramRegistry"]
