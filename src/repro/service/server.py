"""The persistent job server: one master, many jobs.

A :class:`JobServer` wraps a single long-lived
:class:`~repro.runtime.master.MasterBackend` (and whatever slave pool
has signed in to it) and multiplexes submitted *jobs* over it.  Each
job runs the ``run`` of a registered program in its own driver thread
against a :class:`~repro.service.jobs.ServiceJob` facade, so every
dataset/metric/event it produces is namespaced by the job id; the
scheduler's round-robin keeps concurrent jobs fair, and the
:class:`~repro.service.jobqueue.JobQueue` caps how many run at once.

The control surface is the grown ``--mrs-status-http`` endpoint: the
server passes itself as the ``control`` object of a
:class:`~repro.comm.dataserver.StatusServer` and answers
``POST /jobs`` / ``GET /jobs[/<id>[/events]]`` / ``DELETE /jobs/<id>``
through :meth:`JobServer.handle`.

``run_serve`` is the ``--mrs serve`` entry point; the matching client
is ``python -m repro.service.submit``.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import options as options_mod
from repro.core.job import JobError
from repro.runtime.master import MasterBackend
from repro.service.jobqueue import JobQueue
from repro.service.jobs import (
    CANCELED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    ServiceJob,
)
from repro.service.registry import ProgramRegistry, RegistryError

logger = logging.getLogger("repro.service")

#: The program-agnostic spec service-pool slaves boot with.
WORKER_SPEC = "repro.service.worker:ServiceWorker"

#: Seconds ``shutdown(drain=True)`` waits for running jobs to finish.
DRAIN_TIMEOUT = 60.0


class JobServer:
    """A persistent job server multiplexing a shared slave pool."""

    def __init__(
        self,
        registry: ProgramRegistry,
        opts: Any,
        host: Optional[str] = None,
    ):
        self.registry = registry
        self.opts = opts
        # The master never touches its ``program`` in service mode:
        # every dataset is namespaced, so descriptors always carry an
        # explicit program_spec for slaves to resolve.
        self.backend = MasterBackend(None, opts)
        self.queue = JobQueue(
            max_concurrent=getattr(opts, "max_concurrent_jobs", None) or 8
        )
        self._jobs: Dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._accepting = True
        self._spawned: List[Any] = []

        registry_metrics = self.backend.observability.registry
        self._submitted = registry_metrics.counter("jobs.submitted")
        self._completed = registry_metrics.counter("jobs.completed")
        self._failed = registry_metrics.counter("jobs.failed")
        self._canceled = registry_metrics.counter("jobs.canceled")
        self._active_gauge = registry_metrics.gauge("jobs.active")
        self._queued_gauge = registry_metrics.gauge("jobs.queued")

        from repro.comm.dataserver import StatusServer

        token = getattr(opts, "auth_token", None) or os.environ.get(
            "MRS_AUTH_TOKEN"
        )
        self.status_server = StatusServer(
            self.backend,
            host=host or getattr(opts, "host", None) or "127.0.0.1",
            port=getattr(opts, "status_http", None) or 0,
            control=self,
            auth_token=token,
        )
        logger.info("job server control surface at %s", self.control_url)
        self._announce_in_runfile()

    # -- addresses -----------------------------------------------------

    @property
    def control_url(self) -> str:
        return self.status_server.url

    def _announce_in_runfile(self) -> None:
        """Append the control URL to the runfile (the master already
        wrote its RPC address as the first line), so scripts that
        launched the server can find both planes in one file."""
        runfile = getattr(self.opts, "runfile", None)
        if not runfile:
            return
        try:
            with open(runfile, "a") as f:
                f.write(f"control={self.control_url}\n")
        except OSError:  # pragma: no cover - best-effort announce
            logger.warning("could not append control URL to %s", runfile)

    # -- slave pool helpers --------------------------------------------

    def spawn_slaves(self, count: int, wait: bool = True) -> int:
        """Spawn ``count`` program-agnostic pool slaves as subprocesses
        (test/benchmark convenience; production pools are launched by
        the operator's scripts against the runfile address).  Returns
        how many slaves are alive after the optional wait."""
        from repro.runtime.cluster import spawn_slave

        target = len(self.backend.alive_slaves()) + count
        for _ in range(count):
            self._spawned.append(
                spawn_slave(
                    WORKER_SPEC,
                    self.backend.rpc.address,
                    [],
                    self.backend.tmpdir,
                    data_plane=getattr(self.opts, "data_plane", None)
                    or "file",
                )
            )
        if not wait:
            return len(self.backend.alive_slaves())
        return self.backend.wait_for_slaves(target)

    # -- submission / lifecycle ----------------------------------------

    def submit_job(self, program: str, args: Sequence[str]) -> JobRecord:
        """Queue one job; starts immediately if under the cap."""
        spec = self.registry.spec(program)  # raises RegistryError early
        with self._lock:
            if not self._accepting:
                raise JobError("server is shutting down")
            record = JobRecord(f"job-{next(self._ids)}", program, list(args))
            self._jobs[record.id] = record
            self.queue.submit(record.id)
            self._submitted.inc()
            started = self._admit_locked()
        logger.info(
            "submitted %s (%s %s)%s",
            record.id,
            program,
            " ".join(record.args),
            "" if record.id in started else " [queued]",
        )
        return record

    def _admit_locked(self) -> List[str]:
        """Start driver threads for every job the queue admits (caller
        holds the lock)."""
        admitted = self.queue.admit()
        for job_id in admitted:
            record = self._jobs[job_id]
            record.thread = threading.Thread(
                target=self._run_job,
                args=(record,),
                name=f"mrs-{job_id}",
                daemon=True,
            )
            record.thread.start()
        self._active_gauge.set(self.queue.active)
        self._queued_gauge.set(self.queue.waiting)
        return admitted

    def _run_job(self, record: JobRecord) -> None:
        """Driver thread: run one job's program against the shared
        backend, isolated under its namespace."""
        record.state = RUNNING
        record.started_at = time.time()
        try:
            if record.cancel_event.is_set():
                raise JobError(f"job {record.id} canceled")
            program_class = self.registry.resolve(record.program)
            spec = self.registry.spec(record.program)
            popts, positional = options_mod.parse_options(
                program_class, list(record.args)
            )
            program = program_class(popts, positional)
            self.backend.register_job(record.id, spec, record.args)
            if not self.backend.alive_slaves():
                # Satellite semantics: an empty pool is a *condition*,
                # not an error — the job waits for slaves to sign in
                # rather than failing.
                logger.warning(
                    "%s submitted with no live slaves; it will wait "
                    "until the pool repopulates",
                    record.id,
                )
            job = ServiceJob(
                self.backend,
                program,
                namespace=record.id,
                cancel_event=record.cancel_event,
            )
            status = program.run(job)
            if record.cancel_event.is_set():
                # Cancel raced the final wait; the outputs are not
                # trustworthy, so the job reports canceled, not done.
                raise JobError(f"job {record.id} canceled")
            if status not in (None, 0):
                raise JobError(f"{record.program} exited with {status}")
            record.state = DONE
        except BaseException as exc:  # noqa: BLE001 - job isolation wall
            if record.cancel_event.is_set():
                record.state = CANCELED
                logger.info("%s canceled", record.id)
            else:
                record.state = FAILED
                record.error = repr(exc)
                logger.warning("%s failed: %r", record.id, exc)
        finally:
            record.finished_at = time.time()
            try:
                self.backend.release_namespace(record.id)
            except Exception:  # pragma: no cover - best-effort cleanup
                logger.exception("releasing %s", record.id)
            if record.state == DONE:
                self._completed.inc()
            elif record.state == CANCELED:
                self._canceled.inc()
            else:
                self._failed.inc()
            with self._lock:
                self.queue.finish(record.id)
                self._admit_locked()

    def cancel_job(self, job_id: str) -> Tuple[bool, str]:
        """Cancel one job; returns ``(changed, state)``.

        A still-queued job goes terminal immediately; a running job has
        its cancel event set and its datasets failed, and goes terminal
        once its driver thread unwinds.
        """
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.terminal:
                return False, record.state
            record.cancel_event.set()
            if self.queue.withdraw(job_id):
                record.state = CANCELED
                record.finished_at = time.time()
                self._canceled.inc()
                self._queued_gauge.set(self.queue.waiting)
                return True, record.state
        # Running: fail its datasets so waiters (and in-flight task
        # results) unwind without touching any other job.
        self.backend.cancel_namespace(job_id, reason=f"{job_id} canceled")
        return True, RUNNING

    # -- views ---------------------------------------------------------

    def job_view(self, job_id: str) -> Dict[str, Any]:
        """The full ``GET /jobs/<id>`` payload: the record's lifecycle
        view plus the backend's live per-namespace slice."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise KeyError(job_id)
            view = record.view()
        if record.started_at is not None:
            backend_view = self.backend.job_status(job_id)
            backend_view.update(view)
            return backend_view
        return view

    def jobs_view(self) -> Dict[str, Any]:
        with self._lock:
            jobs = [r.view() for r in self._jobs.values()]
            return {
                "jobs": jobs,
                "running": self.queue.running(),
                "queued": self.queue.queued(),
                "max_concurrent": self.queue.max_concurrent,
                "programs": self.registry.names(),
                "slaves": len(self.backend.alive_slaves()),
            }

    def _events_view(self, job_id: str, query: Dict[str, Any]) -> Dict[str, Any]:
        events = self.backend.observability.events
        if events is None:
            return {"enabled": False, "events": []}
        try:
            since = int(query.get("since", ["0"])[0])
        except (TypeError, ValueError):
            since = 0
        return {
            "enabled": True,
            "last_seq": events.last_seq,
            "events": events.snapshot(
                since_seq=since, dataset_prefix=f"{job_id}."
            ),
        }

    # -- HTTP control surface ------------------------------------------

    def handle(
        self,
        method: str,
        route: str,
        body: bytes,
        query: Dict[str, Any],
    ) -> Tuple[int, Any]:
        """Dispatch one control request; returns ``(status, payload)``.

        Called by the status server's request handler for every path
        under ``/jobs`` (auth already checked for mutating methods).
        """
        parts = [p for p in route.split("/") if p]  # ["jobs", id?, sub?]
        if method == "POST" and parts == ["jobs"]:
            return self._handle_submit(body)
        if method == "GET" and parts == ["jobs"]:
            return 200, self.jobs_view()
        if len(parts) < 2:
            return 404, {"error": f"no such route {route!r}"}
        job_id = parts[1]
        try:
            if method == "GET" and len(parts) == 3 and parts[2] == "events":
                with self._lock:
                    if job_id not in self._jobs:
                        raise KeyError(job_id)
                return 200, self._events_view(job_id, query)
            if method == "GET" and len(parts) == 2:
                return 200, self.job_view(job_id)
            if method == "DELETE" and len(parts) == 2:
                changed, state = self.cancel_job(job_id)
                return 200, {
                    "id": job_id,
                    "state": state,
                    "changed": changed,
                }
        except KeyError:
            return 404, {"error": f"no such job {job_id!r}"}
        return 405, {"error": f"{method} not allowed on {route!r}"}

    def _handle_submit(self, body: bytes) -> Tuple[int, Any]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}
        program = payload.get("program")
        args = payload.get("args", [])
        if not isinstance(program, str) or not isinstance(args, list):
            return 400, {
                "error": 'body must be {"program": NAME, "args": [...]}'
            }
        try:
            record = self.submit_job(program, [str(a) for a in args])
        except RegistryError as exc:
            return 404, {"error": str(exc)}
        except JobError as exc:
            return 503, {"error": str(exc)}
        return 202, record.view()

    # -- shutdown ------------------------------------------------------

    def shutdown(
        self, drain: bool = True, timeout: float = DRAIN_TIMEOUT
    ) -> None:
        """Stop the server: refuse new submissions, optionally wait for
        running jobs, cancel whatever remains, and close everything.
        """
        with self._lock:
            self._accepting = False
            for job_id in self.queue.queued():
                record = self._jobs[job_id]
                if self.queue.withdraw(job_id):
                    record.cancel_event.set()
                    record.state = CANCELED
                    record.finished_at = time.time()
            threads = [
                self._jobs[job_id].thread
                for job_id in self.queue.running()
                if self._jobs[job_id].thread is not None
            ]
        if drain:
            deadline = time.monotonic() + timeout
            for thread in threads:
                thread.join(max(0.1, deadline - time.monotonic()))
        with self._lock:
            running = list(self.queue.running())
        for job_id in running:
            try:
                self.cancel_job(job_id)
            except KeyError:  # pragma: no cover - finished meanwhile
                pass
        for thread in threads:
            thread.join(5.0)
        self.status_server.shutdown()
        for process in self._spawned:
            if process.poll() is None:
                process.terminate()
        for process in self._spawned:
            try:
                process.wait(timeout=5)
            except Exception:  # pragma: no cover - stubborn slave
                process.kill()
        self._spawned = []
        self.backend.close()
        from repro.core.main import _close_transfer_pool

        _close_transfer_pool()

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def run_serve(
    program_class: Optional[type], opts: Any, args: Sequence[str]
) -> int:
    """``--mrs serve`` entry point: serve jobs until signaled.

    The class the script passed to ``main`` registers under its
    lowercased name; ``--mrs-register NAME=MODULE:CLASS`` adds more.
    Positional args are ignored in serve mode (jobs bring their own).
    """
    from repro.util.signals import GracefulExit, install_graceful_exit, restore

    if args:
        logger.warning(
            "serve mode ignores positional arguments %r (jobs carry "
            "their own)",
            list(args),
        )
    # Install before the server boots: a SIGTERM during (or right
    # after) startup must already drain instead of killing us.
    previous = install_graceful_exit()
    server = None
    ticker = None
    try:
        registry = ProgramRegistry.from_opts(program_class, opts)
        server = JobServer(registry, opts)
        if getattr(opts, "progress", False):
            # The ticker reads the shared backend's status, so its rows
            # carry the ``job-N`` namespace segments of every live job.
            from repro.observability.progress import ProgressTicker

            ticker = ProgressTicker(server.backend).start()
        print(
            f"mrs job server: control={server.control_url} "
            f"rpc={server.backend.rpc.address} "
            f"programs={','.join(registry.names())}",
            flush=True,
        )
        while True:
            time.sleep(3600)
    except GracefulExit as exc:
        logger.warning(
            "received signal %d; draining jobs and shutting down",
            exc.signum,
        )
        return 0
    finally:
        restore(previous)
        if ticker is not None:
            ticker.stop()
        if server is not None:
            server.shutdown(drain=True)
