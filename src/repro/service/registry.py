"""Submittable-program registry for the job server.

A job submission names a program, not code: the server resolves the
name to a ``module:Class`` spec it was configured with, and that spec
(never the code) travels to slaves inside task descriptors — the same
"only names cross the wire" rule the classic master/slave protocol
follows.
"""

from __future__ import annotations

import importlib
import logging
import sys
from typing import Any, Dict, List, Optional, Union

from repro.runtime.slave_boot import resolve_program


class RegistryError(Exception):
    """Unknown program name or malformed registration."""


def _real_main_module(target: type) -> Optional[str]:
    """The importable name behind ``__main__``, when there is one.

    ``python -m pkg.mod`` executes ``pkg.mod`` *as* ``__main__`` but
    records the real name in ``__main__.__spec__`` — good enough for
    slaves to re-import the class, provided the class really is an
    attribute of that module (guards against unrelated ``__main__``
    specs such as test runners).  A plain ``python script.py`` run has
    no such name and stays unresolvable.
    """
    spec = getattr(sys.modules.get("__main__"), "__spec__", None)
    name = getattr(spec, "name", None)
    if not name or name == "__main__":
        return None
    try:
        module = importlib.import_module(name)
    except ImportError:
        return None
    found = getattr(module, target.__qualname__, None)
    if found is None or found.__qualname__ != target.__qualname__:
        return None
    return name


def spec_for(target: Union[str, type]) -> str:
    """Normalize a registration target to a ``module:Class`` spec."""
    if isinstance(target, str):
        if ":" not in target:
            raise RegistryError(
                f"program spec must be module:Class, got {target!r}"
            )
        return target
    module = target.__module__
    if module == "__main__":
        module = _real_main_module(target)
    if module in (None, "__main__", "builtins"):
        raise RegistryError(
            f"{target.__name__} must live in an importable module to be "
            "served (slaves re-import it by name)"
        )
    return f"{module}:{target.__qualname__}"


class ProgramRegistry:
    """Name -> ``module:Class`` map of programs a server will run."""

    def __init__(self) -> None:
        self._specs: Dict[str, str] = {}

    def register(self, name: str, target: Union[str, type]) -> None:
        self._specs[name] = spec_for(target)

    def names(self) -> List[str]:
        return sorted(self._specs)

    def spec(self, name: str) -> str:
        try:
            return self._specs[name]
        except KeyError:
            raise RegistryError(
                f"unknown program {name!r}; registered: {self.names()}"
            ) from None

    def resolve(self, name: str) -> Any:
        """Import and return the program class for ``name``."""
        return resolve_program(self.spec(name))

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    @classmethod
    def from_opts(
        cls, program_class: Optional[type], opts: Any
    ) -> "ProgramRegistry":
        """Build the server's registry from the CLI.

        The class handed to ``main()`` registers under its lowercased
        class name; each ``--mrs-register NAME=MODULE:CLASS`` adds one
        more.
        """
        registry = cls()
        if program_class is not None:
            try:
                registry.register(
                    program_class.__name__.lower(), program_class
                )
            except RegistryError as exc:
                # A plain `python script.py` run has no importable name
                # for its own class; the server can still serve every
                # --mrs-register program.
                logging.getLogger("repro.service").warning(
                    "not auto-registering %s: %s",
                    program_class.__name__, exc,
                )
        for entry in getattr(opts, "register", None) or []:
            name, sep, spec = entry.partition("=")
            if not sep or not name or not spec:
                raise RegistryError(
                    f"--mrs-register expects NAME=MODULE:CLASS, got {entry!r}"
                )
            registry.register(name.strip(), spec.strip())
        return registry
