"""Runtime implementations (section IV-A).

Five execution contexts run the *same* program with identical results:

* ``serial`` — everything sequential and deterministic in one process.
* ``bypass`` — calls the program's ``bypass`` method, skipping Mrs.
* ``mockparallel`` — the master/slave task decomposition on one
  processor, with all intermediate data forced through files.
* ``multiprocess`` — a local worker pool of ``--mrs-procs`` processes
  (queue control plane, shared-tmpdir file data plane): true
  single-node parallelism without any cluster setup.
* ``master``/``slave`` — the distributed implementation (XML-RPC
  control plane, file or HTTP data plane).

"Differences in behavior between any two implementations, even in
stochastic algorithms, indicate a bug in the program or possibly in
Mrs" — the test suite enforces exactly this equivalence.
"""
