"""Task-failure policy shared by the parallel runtimes.

The cluster master and the multiprocess worker pool apply the same
rules when a task attempt dies: retry it elsewhere until a per-task
budget is exhausted, then fail the owning dataset and transitively
everything that depends on it, so a ``Job.wait`` on any affected
dataset raises instead of hanging forever.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

TaskId = Tuple[str, int]

#: A task is retried on another worker/slave this many times before the
#: whole dataset is declared failed.
MAX_TASK_FAILURES = 3


class FailureTracker:
    """Per-task strike counter with a fixed budget.

    Not thread-safe on its own; callers mutate it under their backend
    lock, the same discipline the scheduler requires.
    """

    def __init__(self, budget: int = MAX_TASK_FAILURES):
        self.budget = budget
        self._counts: Dict[TaskId, int] = {}

    def record(self, task: TaskId) -> bool:
        """Count one strike; returns True when the budget is exhausted."""
        self._counts[task] = self._counts.get(task, 0) + 1
        return self._counts[task] >= self.budget

    def count(self, task: TaskId) -> int:
        return self._counts.get(task, 0)

    def forget_dataset(self, dataset_id: str) -> None:
        """Drop all strike state for one dataset (a long-lived server
        releases finished jobs; their counts must not accumulate)."""
        self._counts = {
            task: count
            for task, count in self._counts.items()
            if task[0] != dataset_id
        }


def propagate_error(
    datasets: Dict[str, object], failed_id: str, message: Optional[str] = None
) -> None:
    """Mark every (transitive) dependent of ``failed_id`` as failed.

    ``datasets`` maps dataset id -> dataset; dependents are found
    through ``input_id`` and ``blocking_ids``.  Caller holds whatever
    lock guards the dataset table.
    """
    frontier = [failed_id]
    while frontier:
        current = frontier.pop()
        for dataset in datasets.values():
            if dataset.error or dataset.complete:
                continue
            deps = {getattr(dataset, "input_id", None)} | set(
                getattr(dataset, "blocking_ids", ())
            )
            if current in deps:
                dataset.error = message or f"input dataset {current} failed"
                frontier.append(dataset.id)
