"""Task execution shared by every runtime.

A *task* is the unit of scheduling: task *j* of an operation consumes
split column *j* of the input dataset and produces one output bucket
per output split.  The same three execution paths (map, reduce,
reduce+map) are used by the serial runtime, the mock-parallel runtime,
slave worker processes, and the Hadoop simulator's tasktrackers — so a
program is guaranteed to compute the same thing everywhere.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.dataset import ComputedData
from repro.core.operations import (
    MapOperation,
    Operation,
    ReduceMapOperation,
    ReduceOperation,
)
from repro.io.bucket import (
    Bucket,
    FileBucket,
    bucket_sorted_records,
    group_sorted_records,
    merge_sorted_records,
    native_merge_plan,
    native_merged_groups,
    record_key,
)
from repro.io import urls as url_io
from repro.io.partition import hash_partition
from repro.native import kernels as _nk
from repro.util.hashing import _MASK, _MIX, _crc32, key_to_bytes

KeyValue = Tuple[Any, Any]
BucketFactory = Callable[[int], Bucket]


class TaskError(Exception):
    """A user function or the task plumbing raised; carries context."""

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.cause = cause


def memory_bucket_factory(source: int) -> BucketFactory:
    def factory(split: int) -> Bucket:
        return Bucket(source=source, split=split)

    return factory


#: Formats that faithfully round-trip arbitrary key-value pairs.
LOSSLESS_EXTS = frozenset({"mrsb", "mrsx"})


def file_bucket_factory(
    directory: str,
    dataset_id: str,
    source: int,
    ext: str = "mrsb",
    sidecar: bool = False,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
) -> BucketFactory:
    """Output buckets as files: ``<dir>/<dataset>_source_split.<ext>``.

    With ``sidecar=True`` and a lossy ``ext`` (e.g. text), each bucket
    also writes a hidden lossless ``.mrsb`` sidecar and reports *that*
    as its URL, so user-facing output stays readable while the master
    can still fetch authoritative pairs.  ``key_serializer``/
    ``value_serializer`` name registered codecs for the binary format.
    """
    from repro.io.bucket import SidecarFileBucket

    def factory(split: int) -> Bucket:
        path = os.path.join(directory, f"{dataset_id}_{source}_{split}.{ext}")
        if sidecar and ext not in LOSSLESS_EXTS:
            return SidecarFileBucket(
                path, source=source, split=split,
                key_serializer=key_serializer,
                value_serializer=value_serializer,
            )
        return FileBucket(
            path, source=source, split=split,
            key_serializer=key_serializer,
            value_serializer=value_serializer,
        )

    return factory


def _resolve_parter(program: Any, op: Operation) -> Callable[[Any, int], int]:
    parter = op.resolve(program, op.parter_name)
    assert parter is not None
    return parter


def _emit(
    pairs: Iterable[KeyValue],
    parter: Callable[[Any, int], int],
    n_splits: int,
    out: List[Bucket],
) -> None:
    """Partition emitted pairs into ``out``, encoding each key ONCE.

    The canonical key bytes computed here ride into the bucket with the
    pair and are reused by every later hop (sort, group, merge).  This
    is the *custom partitioner* path — the default hash partitioner
    goes through :func:`make_hash_emitter` instead.  Partitioners with
    a ``partition_bytes`` fast path get the cached bytes; others get
    the live key.
    """
    bytes_parter = getattr(parter, "partition_bytes", None)
    for pair in pairs:
        if not isinstance(pair, tuple) or len(pair) != 2:
            raise TaskError(
                f"map function must yield (key, value) tuples, got {pair!r}"
            )
        keybytes = key_to_bytes(pair[0])
        if bytes_parter is not None:
            split = bytes_parter(keybytes, n_splits)
        else:
            split = parter(pair[0], n_splits)
        if not 0 <= split < n_splits:
            raise TaskError(
                f"partitioner returned {split} for key {pair[0]!r}, "
                f"outside range(0, {n_splits})"
            )
        out[split].addpair(pair, keybytes)


#: Records the batch emitter accumulates before a native scatter.
_EMIT_BATCH = 8192


class _CollectorEmitter:
    """The pure-Python emit fast path (default hash partitioner only).

    Exactly the hoisted-collectors loop of :func:`_emit`:
    :func:`repro.io.partition.route` unrolled over per-bucket collector
    closures — encode, place, two C-level appends per record.  This is
    the ``MRS_NATIVE=off`` path, byte- and speed-identical to the
    pre-native emit loop.
    """

    __slots__ = ("_collectors", "_n")

    def __init__(self, staging: List[Bucket], n_splits: int):
        self._collectors = [bucket.collector() for bucket in staging]
        self._n = n_splits

    def emit(self, pairs: Iterable[KeyValue]) -> None:
        n = self._n
        collectors = self._collectors
        for pair in pairs:
            if not isinstance(pair, tuple) or len(pair) != 2:
                raise TaskError(
                    f"map function must yield (key, value) tuples, got {pair!r}"
                )
            key = pair[0]
            if type(key) is str:
                keybytes = b"s:" + key.encode("utf-8")
            else:
                keybytes = key_to_bytes(key)
            add_key, add_pair = collectors[
                ((_crc32(keybytes) * _MIX) & _MASK) % n
            ]
            add_key(keybytes)
            add_pair(pair)

    def flush(self) -> None:
        pass


class _NativeHashEmitter:
    """Batch emit through the native partition-scatter kernel.

    Emitted records accumulate in two parallel columns; every
    ``_EMIT_BATCH`` records one C call hashes, places, and stably
    groups the whole batch by split, and each split's slice lands in
    its staging bucket with two list ``extend`` calls.  The scatter is
    stable, so every bucket receives its records in emit order —
    exactly what the sequential loop produces.
    """

    __slots__ = ("_staging", "_n", "_native", "_keys", "_pairs")

    def __init__(self, staging: List[Bucket], n_splits: int, native) -> None:
        self._staging = staging
        self._n = n_splits
        self._native = native
        self._keys: List[bytes] = []
        self._pairs: List[KeyValue] = []

    def emit(self, pairs: Iterable[KeyValue]) -> None:
        keys = self._keys
        out = self._pairs
        add_key = keys.append
        add_pair = out.append
        for pair in pairs:
            if not isinstance(pair, tuple) or len(pair) != 2:
                raise TaskError(
                    f"map function must yield (key, value) tuples, got {pair!r}"
                )
            key = pair[0]
            if type(key) is str:
                add_key(b"s:" + key.encode("utf-8"))
            else:
                add_key(key_to_bytes(key))
            add_pair(pair)
        if len(keys) >= _EMIT_BATCH:
            self.flush()

    def flush(self) -> None:
        keys = self._keys
        if not keys:
            return
        pairs = self._pairs
        self._keys = []
        self._pairs = []
        staging = self._staging
        n = self._n
        if len(keys) < _nk.MIN_BATCH:
            for keybytes, pair in zip(keys, pairs):
                staging[((_crc32(keybytes) * _MIX) & _MASK) % n].addpair(
                    pair, keybytes
                )
            return
        order, bounds = self._native.partition_scatter(keys, n)
        kget = keys.__getitem__
        pget = pairs.__getitem__
        for split in range(n):
            lo, hi = bounds[split], bounds[split + 1]
            if lo != hi:
                chunk = order[lo:hi]
                staging[split].extend_columns(
                    list(map(kget, chunk)), list(map(pget, chunk))
                )


def make_hash_emitter(staging: List[Bucket], n_splits: int):
    """The per-task emitter for the default hash partitioner.

    Chosen once per task: the native batch emitter when the shuffle
    kernels are loaded (and placement is non-trivial), else the pure
    collectors loop.  Both produce identical bucket contents.
    """
    native = _nk.get()
    if native is not None and n_splits > 1:
        return _NativeHashEmitter(staging, n_splits, native)
    return _CollectorEmitter(staging, n_splits)


def _emit_one_key(
    keybytes: bytes,
    key: Any,
    values: Iterable[Any],
    parter: Callable[[Any, int], int],
    bytes_parter: Optional[Callable[[bytes, int], int]],
    n_splits: int,
    out: List[Bucket],
) -> None:
    """Emit a reducer's output for one key group.

    Every pair shares the group's key, so the partitioner runs once per
    group (its contract makes the split a pure function of the key) and
    the cached key bytes are reused for every value.
    """
    if bytes_parter is not None:
        split = bytes_parter(keybytes, n_splits)
    else:
        split = parter(key, n_splits)
    if not 0 <= split < n_splits:
        raise TaskError(
            f"partitioner returned {split} for key {key!r}, "
            f"outside range(0, {n_splits})"
        )
    bucket = out[split]
    for value in values:
        bucket.addpair((key, value), keybytes)


def _apply_combiner(
    program: Any, combine_name: Optional[str], op: Operation, buckets: List[Bucket]
) -> List[Bucket]:
    """Run a local reduce over each bucket's groups (the combiner).

    Returns fresh in-memory buckets; callers persist them afterwards so
    that only combined data hits disk/network — that is the entire
    point of a combiner (section V-A).  Grouping is hash-based
    (:meth:`~repro.io.bucket.Bucket.hash_grouped_records`): a combiner
    needs equal keys brought together, not global order, so instead of
    sorting every staged record we group with one dict pass and sort
    only the combined *group list* — which keeps map spills key-sorted
    for the reduce side's streaming merge.  The group's cached key
    bytes flow straight into the fresh bucket, so combining re-encodes
    nothing.
    """
    if combine_name is None:
        return buckets
    combiner = op.resolve(program, combine_name)
    combined: List[Bucket] = []
    for bucket in buckets:
        # Group with one pass and sort only the (much smaller) group
        # list by cached key bytes, then stream the combiner output
        # straight into the fresh bucket in that order — no per-record
        # sort ever runs on either side.  With native kernels the
        # grouping and group sort fuse into one C call.
        groups = bucket.sorted_grouped_lists()
        fresh = Bucket(source=bucket.source, split=bucket.split)
        add_key, add_pair = fresh.collector()
        for keybytes, key, values in groups:
            for value in combiner(key, values):
                add_key(keybytes)
                add_pair((key, value))
        combined.append(fresh)
    return combined


def _merged_records(input_buckets: Sequence[Bucket], span: Any = None):
    """The reduce-side merge: one key-sorted decorated record stream
    over every source bucket.

    Local files stream where their sort order is known (see
    :func:`bucket_sorted_records`); buckets behind HTTP URLs are routed
    through the transfer plane's prefetch pipeline
    (:func:`repro.comm.transfer.bucket_record_streams`), so network
    transfer overlaps the merge instead of serializing ahead of it.
    Stream order matches bucket order, keeping the merged stream — and
    therefore the reduce output — identical to a sequential fetch.
    """
    from repro.comm.transfer import bucket_record_streams

    streams, prefetcher = bucket_record_streams(input_buckets, span=span)
    merged = merge_sorted_records(streams)
    if prefetcher is None:
        return merged
    return _closing_stream(merged, prefetcher)


def _merged_groups(input_buckets: Sequence[Bucket], span: Any = None):
    """Key-ordered ``(keybytes, key, values)`` groups over all sources.

    When every input bucket qualifies (URL-only local sorted binary
    files with a canonical key serializer — see
    :func:`repro.io.bucket.native_merge_plan`), the merge *and* the
    grouping run in the native fused path, with one key decode per
    group.  Otherwise this is :func:`group_sorted_records` over the
    pure streaming merge, unchanged.
    """
    plan = native_merge_plan(input_buckets)
    if plan is not None:
        first = input_buckets[0]
        return native_merged_groups(
            plan, first.key_serializer, first.value_serializer
        )
    return group_sorted_records(_merged_records(input_buckets, span=span))


def _closing_stream(merged, prefetcher):
    """Drive a prefetched merge, releasing the fetch pipeline however
    the consumer finishes (exhaustion, reducer error, abandonment)."""
    try:
        yield from merged
    finally:
        prefetcher.close()


def run_map_task(
    program: Any,
    op: MapOperation,
    input_pairs: Iterable[KeyValue],
    bucket_factory: BucketFactory,
    span: Any = None,
) -> List[Bucket]:
    mapper = op.resolve(program, op.map_name)
    parter = _resolve_parter(program, op)
    n = op.splits
    # Map into memory first; the combiner (if any) must see the data
    # before it is persisted.
    staging = [Bucket(split=s) for s in range(n)]
    # Hoist the per-bucket append fast path out of the per-record loop;
    # only the default partitioner's placement is safe to unroll.
    emitter = make_hash_emitter(staging, n) if parter is hash_partition else None
    for key, value in input_pairs:
        result = mapper(key, value)
        if result is not None:
            if emitter is not None:
                emitter.emit(result)
            else:
                _emit(result, parter, n, staging)
    if emitter is not None:
        emitter.flush()
    staging = _apply_combiner(program, op.combine_name, op, staging)
    if span is not None:
        span.mark("map")
    out = _persist(staging, bucket_factory, n)
    if span is not None:
        span.mark("serialize")
    return out


def run_reduce_task(
    program: Any,
    op: ReduceOperation,
    input_buckets: Sequence[Bucket],
    bucket_factory: BucketFactory,
    span: Any = None,
) -> List[Bucket]:
    reducer = op.resolve(program, op.reduce_name)
    parter = _resolve_parter(program, op)
    bytes_parter = getattr(parter, "partition_bytes", None)
    n = op.splits
    staging = [Bucket(split=s) for s in range(n)]
    for keybytes, key, values in _merged_groups(input_buckets, span=span):
        result = reducer(key, values)
        if result is not None:
            _emit_one_key(keybytes, key, result, parter, bytes_parter, n, staging)
    if span is not None:
        span.mark("reduce")
    out = _persist(staging, bucket_factory, n)
    if span is not None:
        span.mark("serialize")
    return out


def run_reducemap_task(
    program: Any,
    op: ReduceMapOperation,
    input_buckets: Sequence[Bucket],
    bucket_factory: BucketFactory,
    span: Any = None,
) -> List[Bucket]:
    reducer = op.resolve(program, op.reduce_name)
    mapper = op.resolve(program, op.map_name)
    parter = _resolve_parter(program, op)
    n = op.splits
    staging = [Bucket(split=s) for s in range(n)]
    emitter = make_hash_emitter(staging, n) if parter is hash_partition else None
    for _, key, values in _merged_groups(input_buckets, span=span):
        reduced = reducer(key, values)
        if reduced is None:
            continue
        for value in reduced:
            mapped = mapper(key, value)
            if mapped is not None:
                if emitter is not None:
                    emitter.emit(mapped)
                else:
                    _emit(mapped, parter, n, staging)
    if emitter is not None:
        emitter.flush()
    staging = _apply_combiner(program, op.combine_name, op, staging)
    if span is not None:
        # The fused operation's compute is reduce-dominated; attribute
        # it to "reduce" so phase totals stay two-bucket (map/reduce).
        span.mark("reduce")
    out = _persist(staging, bucket_factory, n)
    if span is not None:
        span.mark("serialize")
    return out


def _persist(
    staging: List[Bucket], bucket_factory: BucketFactory, n_splits: int
) -> List[Bucket]:
    """Move staged pairs into factory-made buckets (possibly files).

    ``absorb`` transfers the staging bucket's cached key bytes and its
    already-known sort state wholesale — no per-pair sorted-flag
    re-tracking — and file buckets batch-write the whole staged load
    through the buffered spill path instead of one writer call per
    pair.
    """
    out: List[Bucket] = []
    for split in range(n_splits):
        bucket = bucket_factory(split)
        bucket.absorb(staging[split])
        if isinstance(bucket, FileBucket):
            # Open even when empty so the file (with its format header)
            # exists for downstream readers and HTTP serving; also
            # flushes the spill buffer and records the file's sort
            # order for downstream streaming merges.
            bucket.open_writer()
            bucket.close_writer()
        out.append(bucket)
    return out


def materialize_input_buckets(
    dataset: Any, task_index: int, streaming: bool = False
) -> List[Bucket]:
    """Resolve split column ``task_index`` of ``dataset`` into buckets
    with in-memory pairs (fetching any URL-only buckets), decoding with
    the dataset's declared serializers.

    With ``streaming=True`` (reduce-side inputs), URL-only buckets are
    *not* fetched: they pass through carrying the dataset's serializer
    names, and the reduce task's merge streams them straight from their
    files (see :func:`repro.io.bucket.bucket_sorted_records`) instead
    of materializing every source bucket as a list up front.
    """
    buckets = dataset.buckets_for_split(task_index)
    key_ser = getattr(dataset, "key_serializer", None)
    value_ser = getattr(dataset, "value_serializer", None)
    resolved: List[Optional[Bucket]] = []
    fetches: List[Tuple[int, Bucket]] = []
    for bucket in buckets:
        if len(bucket) == 0 and bucket.url:
            if streaming:
                if bucket.key_serializer is None:
                    bucket.key_serializer = key_ser
                if bucket.value_serializer is None:
                    bucket.value_serializer = value_ser
                resolved.append(bucket)
                continue
            fetches.append((len(resolved), bucket))
            resolved.append(None)
        else:
            resolved.append(bucket)
    for (index, source), pairs in zip(
        fetches,
        _fetch_all(
            [bucket.url for _, bucket in fetches], key_ser, value_ser
        ),
    ):
        fresh = Bucket(source=source.source, split=source.split, url=source.url)
        fresh.collect(pairs)
        resolved[index] = fresh
    return resolved  # type: ignore[return-value]


def buckets_from_urls(
    urls: Sequence[str],
    split: int,
    key_serializer: Optional[str] = None,
    value_serializer: Optional[str] = None,
    streaming: bool = False,
    sorted_flags: Optional[Sequence[bool]] = None,
) -> List[Bucket]:
    """Fetch input buckets by URL (slave-side task input path).

    With ``streaming=True`` the buckets stay URL-only so a reduce
    task's merge can stream them; ``sorted_flags`` (parallel to
    ``urls``, from the task descriptor) marks which persisted files are
    already in canonical key order and can merge with O(1) memory.
    """
    resolved: List[Bucket] = []
    for source, url in enumerate(urls):
        bucket = Bucket(source=source, split=split, url=url)
        bucket.key_serializer = key_serializer
        bucket.value_serializer = value_serializer
        if streaming and sorted_flags is not None and source < len(sorted_flags):
            bucket.url_sorted = bool(sorted_flags[source])
        resolved.append(bucket)
    if not streaming:
        for bucket, pairs in zip(
            resolved, _fetch_all(list(urls), key_serializer, value_serializer)
        ):
            bucket.collect(pairs)
    return resolved


def _fetch_all(
    urls: Sequence[str],
    key_serializer: Optional[str],
    value_serializer: Optional[str],
) -> List[Iterable[KeyValue]]:
    """Materialize the pairs behind each URL, in order.

    Multiple HTTP URLs fetch concurrently over the transfer plane's
    pooled connections (:func:`repro.comm.transfer.fetch_pairs_parallel`
    — the map-input analogue of the reduce side's prefetched merge);
    file URLs and single fetches take the plain sequential path.
    """
    remote = [
        i for i, url in enumerate(urls)
        if url.startswith(("http://", "https://"))
    ]
    results: List[Any] = [None] * len(urls)
    if len(remote) > 1:
        from repro.comm.transfer import fetch_pairs_parallel

        fetched = fetch_pairs_parallel(
            [(urls[i], key_serializer, value_serializer) for i in remote]
        )
        for i, pairs in zip(remote, fetched):
            results[i] = pairs
    for i, url in enumerate(urls):
        if results[i] is None:
            results[i] = url_io.fetch_pairs(
                url,
                key_serializer=key_serializer,
                value_serializer=value_serializer,
            )
    return results


def run_operation(
    program: Any,
    op: Operation,
    input_buckets: Sequence[Bucket],
    bucket_factory: BucketFactory,
    span: Any = None,
) -> List[Bucket]:
    """Dispatch one operation by kind, without a full ComputedData.

    This is the execution path of worker processes (cluster slaves and
    multiprocess pool workers), which receive a bare operation dict in
    a task descriptor rather than a dataset object.
    """
    if isinstance(op, MapOperation):
        pairs: Iterable[KeyValue] = (
            pair for bucket in input_buckets for pair in bucket
        )
        return run_map_task(program, op, pairs, bucket_factory, span=span)
    if isinstance(op, ReduceMapOperation):
        return run_reducemap_task(
            program, op, input_buckets, bucket_factory, span=span
        )
    if isinstance(op, ReduceOperation):
        return run_reduce_task(
            program, op, input_buckets, bucket_factory, span=span
        )
    raise TaskError(f"unknown operation {type(op).__name__}")


def execute_task(
    program: Any,
    dataset: ComputedData,
    task_index: int,
    input_buckets: Sequence[Bucket],
    bucket_factory: Optional[BucketFactory] = None,
    span: Any = None,
) -> List[Bucket]:
    """Run one task of ``dataset`` and return its output buckets.

    ``span``, when given, is a :class:`~repro.observability.tracing.
    TaskSpan` that receives ``map``/``reduce`` and ``serialize`` events
    as the task moves through compute and persistence.
    """
    factory = bucket_factory or memory_bucket_factory(task_index)
    op = dataset.operation
    try:
        return run_operation(program, op, input_buckets, factory, span=span)
    except TaskError:
        raise
    except Exception as exc:
        raise TaskError(
            f"task {task_index} of dataset {dataset.id} "
            f"({type(op).__name__}) failed: {exc!r}",
            cause=exc,
        ) from exc
