"""Shared-filesystem data-plane helpers.

Both parallel runtimes (cluster master and multiprocess worker pool)
exchange intermediate data as bucket files under a tmpdir shared by
every worker.  Input buckets that exist only in the coordinating
process's memory (``LocalData`` pairs) must be spilled to that tmpdir
before a task descriptor referencing them can be handed out.
"""

from __future__ import annotations

import os

from repro.core.dataset import BaseDataset
from repro.io.bucket import Bucket, FileBucket


def spill_bucket(dataset: BaseDataset, bucket: Bucket, tmpdir: str) -> str:
    """Write a coordinator-resident bucket to the shared data plane.

    Returns the filesystem path of the spill file; the caller decides
    how to publish it (``file:`` URL or HTTP data-server URL).
    """
    directory = os.path.join(tmpdir, dataset.id)
    path = os.path.join(
        directory, f"{dataset.id}_{bucket.source}_{bucket.split}.mrsb"
    )
    os.makedirs(directory, exist_ok=True)
    # Spill-only: pairs batch-serialize straight to the file, reusing
    # the source bucket's cached key bytes and sort state; no second
    # in-memory copy is kept.
    spill = FileBucket(
        path,
        source=bucket.source,
        split=bucket.split,
        key_serializer=getattr(dataset, "key_serializer", None),
        value_serializer=getattr(dataset, "value_serializer", None),
        retain=False,
    )
    spill.absorb(bucket)
    spill.open_writer()
    spill.close_writer()
    # Record the file's sort order on the coordinator's bucket so task
    # descriptors can advertise it and reduce merges can stream it.
    bucket.url_sorted = spill.url_sorted
    return path
