"""Shared-filesystem data-plane helpers.

Both parallel runtimes (cluster master and multiprocess worker pool)
exchange intermediate data as bucket files under a tmpdir shared by
every worker.  Input buckets that exist only in the coordinating
process's memory (``LocalData`` pairs) must be spilled to that tmpdir
before a task descriptor referencing them can be handed out.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.dataset import BaseDataset, ComputedData
from repro.core.operations import REDUCE
from repro.io.bucket import Bucket, FileBucket
from repro.runtime.scheduler import ROUTING_IDENTITY


def derive_routing(
    dataset: ComputedData, input_dataset: BaseDataset
) -> Optional[str]:
    """How ``dataset``'s output buckets route to its consumers.

    Returns :data:`~repro.runtime.scheduler.ROUTING_IDENTITY` when task
    ``i`` provably writes only split ``i``, so a consumer task ``j``
    depends on source ``j`` alone; ``None`` means dense (any task may
    write any split) and consumers must wait for the whole dataset.

    The identity case is a *reduce* whose partition function and split
    count match its input's: a reduce emits each group's key unchanged
    (the task runner reuses the group's key bytes), the input column
    ``i`` holds exactly the keys the input's partitioner sent to split
    ``i``, and the partitioner contract makes the split a pure function
    of the key — so re-partitioning the same keys with the same
    function over the same split count lands everything back on split
    ``i``.  This is the shape of every iterative reduce-then-map
    program that keeps a stable partitioner across the iteration.
    """
    operation = dataset.operation
    if operation.kind != REDUCE:
        return None
    if not isinstance(input_dataset, ComputedData):
        return None
    input_op = input_dataset.operation
    if operation.parter_name != input_op.parter_name:
        return None
    if operation.splits != input_op.splits:
        return None
    # Square grid: source i must exist for every output split i.
    if dataset.ntasks != operation.splits:
        return None
    return ROUTING_IDENTITY


def spill_bucket(dataset: BaseDataset, bucket: Bucket, tmpdir: str) -> str:
    """Write a coordinator-resident bucket to the shared data plane.

    Returns the filesystem path of the spill file; the caller decides
    how to publish it (``file:`` URL or HTTP data-server URL).
    """
    directory = os.path.join(tmpdir, dataset.id)
    path = os.path.join(
        directory, f"{dataset.id}_{bucket.source}_{bucket.split}.mrsb"
    )
    os.makedirs(directory, exist_ok=True)
    # Spill-only: pairs batch-serialize straight to the file, reusing
    # the source bucket's cached key bytes and sort state; no second
    # in-memory copy is kept.
    spill = FileBucket(
        path,
        source=bucket.source,
        split=bucket.split,
        key_serializer=getattr(dataset, "key_serializer", None),
        value_serializer=getattr(dataset, "value_serializer", None),
        retain=False,
    )
    spill.absorb(bucket)
    spill.open_writer()
    spill.close_writer()
    # Record the file's sort order on the coordinator's bucket so task
    # descriptors can advertise it and reduce merges can stream it.
    bucket.url_sorted = spill.url_sorted
    return path
