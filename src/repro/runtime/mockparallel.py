"""Mock-parallel implementation (section IV-A).

Splits work into exactly the same tasks as the master/slave
implementation but performs all computation on a single processor, and
forces *every* intermediate bucket through a file on disk.  Data that
survives serialization, a filesystem round-trip, and re-parsing here
will also survive the distributed data plane — which is why the paper
recommends this mode for debugging ("Intermediate data between tasks is
saved to files which can be helpful for debugging").
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import time
from typing import List, Optional, Sequence

from repro.core.dataset import BaseDataset, ComputedData
from repro.core.job import Backend, Job
from repro.observability import Observability
from repro.observability.profiling import profiler_from_opts
from repro.runtime import taskrunner
from repro.runtime.serial import PHASE_FOR_KIND, _emit_task_events


class MockParallelBackend(Backend):
    #: Mimic a small cluster's task decomposition by default.
    default_splits = 4

    def __init__(
        self,
        program=None,
        tmpdir: Optional[str] = None,
        default_splits: Optional[int] = None,
        opts=None,
    ):
        self.program = program
        if opts is None:
            opts = getattr(program, "opts", None)
        if tmpdir:
            self.tmpdir = tmpdir
        else:
            # Callers read bucket files after the run (run_program's
            # contract), so a backend-owned tmpdir must outlive close();
            # reclaim it at interpreter exit instead.
            self.tmpdir = tempfile.mkdtemp(prefix="mrs_mockp_")
            atexit.register(shutil.rmtree, self.tmpdir, ignore_errors=True)
        if default_splits:
            self.default_splits = default_splits
        self.observability = Observability(role="mockparallel")
        self.observability.configure_from_opts(opts)
        #: --mrs-profile-tasks N: keep the N slowest tasks' profiles.
        self.profiler = profiler_from_opts(opts)
        self._queue: List[ComputedData] = []
        self._completed_tasks = {}
        #: Wall seconds per completed task, per dataset (same
        #: profiling surface as the master backend).
        self._task_seconds = {}

    def submit(self, dataset: ComputedData, job: Job) -> None:
        self._queue.append(dataset)
        self.observability.note_operation(dataset.id, dataset.operation.kind)
        events = self.observability.events
        if events is not None:
            events.emit(
                "dataset.submitted",
                dataset_id=dataset.id,
                kind=dataset.operation.kind,
                tasks=len(list(dataset.task_indices())),
            )
        for task_index in dataset.task_indices():
            self.observability.tracer.span(dataset.id, task_index).mark(
                "queued"
            )
            if events is not None:
                events.emit(
                    "task.queued", dataset_id=dataset.id, task_index=task_index
                )

    def wait(
        self,
        datasets: Sequence[BaseDataset],
        job: Job,
        timeout: Optional[float] = None,
    ) -> List[BaseDataset]:
        self.observability.mark_startup_complete()
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._queue and not all(d.complete or d.error for d in datasets):
            # Tasks are not preemptible, so the deadline is checked
            # between dataset computations: on expiry the caller gets
            # whatever subset finished in time, like the master's wait.
            if deadline is not None and time.monotonic() >= deadline:
                break
            dataset = self._queue.pop(0)
            self._compute(dataset, job)
        return [d for d in datasets if d.complete or d.error]

    def progress(self, dataset: BaseDataset) -> float:
        if dataset.complete:
            return 1.0
        done = self._completed_tasks.get(dataset.id, 0)
        ntasks = getattr(dataset, "ntasks", 1) or 1
        return done / ntasks

    def task_stats(self, dataset_id: str):
        """Count/total/mean/max wall seconds of a dataset's tasks."""
        samples = list(self._task_seconds.get(dataset_id, ()))
        if not samples:
            return {"count": 0, "total": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": len(samples),
            "total": sum(samples),
            "mean": sum(samples) / len(samples),
            "max": max(samples),
        }

    def _compute(self, dataset: ComputedData, job: Job) -> None:
        if dataset.complete or dataset.error:
            return
        input_dataset = job.get_dataset(dataset.input_id)
        if input_dataset.error:
            # Propagate upstream failure instead of computing garbage.
            dataset.error = (
                f"input dataset {input_dataset.id} failed: "
                f"{input_dataset.error}"
            )
            return
        if not input_dataset.complete:
            raise RuntimeError(
                f"dataset {dataset.id} scheduled before input "
                f"{input_dataset.id} completed; submission order violated"
            )
        is_user_output = dataset.outdir is not None
        outdir = dataset.outdir or os.path.join(self.tmpdir, dataset.id)
        ext = dataset.format_ext or "mrsb"
        obs = self.observability
        events = obs.events
        phase = PHASE_FOR_KIND.get(dataset.operation.kind, "map")
        try:
            for task_index in dataset.task_indices():
                span = obs.tracer.span(dataset.id, task_index)
                # Reduce-side input gathering is the shuffle (see the
                # serial backend).  Buckets stay URL-only and the
                # reduce merge streams the spill files, so the format
                # and serializer layers are still exercised — their
                # cost now lands in the "reduce" phase.
                if phase == "reduce":
                    with obs.phases.measure("shuffle"):
                        input_buckets = taskrunner.materialize_input_buckets(
                            input_dataset, task_index, streaming=True
                        )
                else:
                    input_buckets = taskrunner.materialize_input_buckets(
                        input_dataset, task_index
                    )
                factory = taskrunner.file_bucket_factory(
                    outdir, dataset.id, task_index, ext=ext,
                    key_serializer=dataset.key_serializer,
                    value_serializer=dataset.value_serializer,
                )
                started = time.perf_counter()
                span.mark("started", started)
                if events is not None:
                    events.emit(
                        "task.started",
                        t=started,
                        dataset_id=dataset.id,
                        task_index=task_index,
                    )
                with obs.phases.measure(phase):
                    out_buckets = self._execute(
                        dataset, task_index, input_buckets, factory, span
                    )
                seconds = time.perf_counter() - started
                self._task_seconds.setdefault(dataset.id, []).append(seconds)
                obs.registry.histogram("task.seconds").observe(seconds)
                for bucket in out_buckets:
                    # Drop the in-memory copy of intermediate data:
                    # downstream tasks must re-read through the file,
                    # exercising the format and serializer layers.
                    # User-facing output keeps its pairs (its on-disk
                    # format, e.g. text, may be write-only).
                    if not is_user_output:
                        bucket.clean()
                    dataset.add_bucket(bucket)
                span.mark("committed")
                obs.registry.counter("tasks.completed").inc()
                self._completed_tasks[dataset.id] = (
                    self._completed_tasks.get(dataset.id, 0) + 1
                )
                if events is not None:
                    _emit_task_events(events, span, dataset.id, task_index)
            dataset.complete = True
            if events is not None:
                events.emit("dataset.complete", dataset_id=dataset.id)
        except taskrunner.TaskError as exc:
            obs.registry.counter("tasks.failed").inc()
            dataset.error = str(exc)
            if events is not None:
                events.emit(
                    "task.failed", dataset_id=dataset.id, error=str(exc)
                )
                events.emit(
                    "dataset.failed", dataset_id=dataset.id, error=str(exc)
                )

    def _execute(self, dataset, task_index, input_buckets, factory, span):
        """Run one task, under cProfile when --mrs-profile-tasks is on."""
        if self.profiler is None:
            return taskrunner.execute_task(
                self.program, dataset, task_index, input_buckets, factory,
                span=span,
            )
        return self.profiler.run(
            taskrunner.execute_task,
            self.program,
            dataset,
            task_index,
            input_buckets,
            factory,
            span=span,
            profile_dataset_id=dataset.id,
            profile_task_index=task_index,
            profile_span=span,
            profile_events=self.observability.events,
        )

    def remove_data(self, dataset_id: str, job: Job) -> None:
        dataset_dir = os.path.join(self.tmpdir, dataset_id)
        if os.path.isdir(dataset_dir):
            for name in os.listdir(dataset_dir):
                try:
                    os.unlink(os.path.join(dataset_dir, name))
                except OSError:
                    pass
        self._completed_tasks.pop(dataset_id, None)
