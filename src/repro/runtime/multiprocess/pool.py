"""Worker-pool plumbing: process handles, spawn/respawn, shutdown.

Pure process bookkeeping — scheduling and failure policy live in the
backend, the way the scheduler is kept free of I/O on the cluster side.
Each worker gets a *private* dispatch queue (so a task reaches exactly
the worker the scheduler chose, preserving iteration affinity) and all
workers share one result queue back to the pool.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.multiprocess import worker as worker_mod

logger = logging.getLogger("repro.multiprocess")

TaskId = Tuple[str, int]

#: Seconds to wait for a worker to drain its queue and exit cleanly
#: before terminating it.
SHUTDOWN_JOIN_TIMEOUT = 5.0


class WorkerHandle:
    """Pool-side view of one worker process (cf. the master's
    ``SlaveRecord``)."""

    def __init__(self, worker_id: int, process: Any, task_queue: Any):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        #: Task currently executing on the worker, if any.
        self.busy: Optional[TaskId] = None

    def alive(self) -> bool:
        return self.process.is_alive()

    def __repr__(self) -> str:
        state = "alive" if self.alive() else "dead"
        return f"WorkerHandle({self.worker_id}, {state}, busy={self.busy})"


class WorkerPool:
    """Spawns and tracks worker processes over a multiprocessing
    context (fork, spawn, or forkserver)."""

    def __init__(
        self,
        ctx: Any,
        program_class: Any,
        opts: Any,
        args: List[str],
        result_queue: Any,
    ):
        self.ctx = ctx
        self.program_class = program_class
        self.opts = opts
        self.args = list(args or [])
        self.result_queue = result_queue
        self._next_id = 1
        self._handles: Dict[int, WorkerHandle] = {}

    def spawn(self) -> WorkerHandle:
        """Start one worker process; ids never repeat (like slave ids),
        so late messages from a dead worker can never be confused with
        its replacement."""
        worker_id = self._next_id
        self._next_id += 1
        task_queue = self.ctx.Queue()
        process = self.ctx.Process(
            target=worker_mod.worker_main,
            args=(
                worker_id,
                self.program_class,
                self.opts,
                self.args,
                task_queue,
                self.result_queue,
            ),
            name=f"mrs-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = WorkerHandle(worker_id, process, task_queue)
        self._handles[worker_id] = handle
        return handle

    def get(self, worker_id: int) -> Optional[WorkerHandle]:
        return self._handles.get(worker_id)

    def handles(self) -> List[WorkerHandle]:
        return list(self._handles.values())

    def alive_handles(self) -> List[WorkerHandle]:
        return [h for h in self._handles.values() if h.alive()]

    def reap_dead(self) -> List[WorkerHandle]:
        """Remove and return handles whose process has exited."""
        dead = [h for h in self._handles.values() if not h.alive()]
        for handle in dead:
            del self._handles[handle.worker_id]
            handle.process.join(timeout=0)
        return dead

    def shutdown(self) -> None:
        """Sentinel every live worker, join, terminate stragglers."""
        for handle in self._handles.values():
            if handle.alive():
                try:
                    handle.task_queue.put(None)
                except Exception:
                    pass
        for handle in self._handles.values():
            handle.process.join(timeout=SHUTDOWN_JOIN_TIMEOUT)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._handles.clear()
