"""Worker process of the multiprocess runtime.

A worker is the single-node analogue of a cluster slave: it
re-instantiates the user's program class locally (user code never
crosses the process boundary — only method *names* inside task
descriptors), then executes descriptors from its private dispatch queue
until it receives the ``None`` sentinel.  Results, failures, and
per-task metric snapshots ride back to the pool on a shared result
queue instead of XML-RPC; the data plane is the cluster's shared-tmpdir
file exchange, unchanged.

Wire shape of result-queue messages (dicts of scalars, mirroring the
control-plane discipline of :mod:`repro.comm.protocol`):

==============  ========================================================
``type``        remaining fields
==============  ========================================================
``ready``       ``worker_id``
``init_failed`` ``worker_id``, ``message``
``done``        ``worker_id``, ``dataset_id``, ``task_index``,
                ``bucket_urls``, ``seconds``, ``metrics``
``failed``      ``worker_id``, ``dataset_id``, ``task_index``,
                ``message``
==============  ========================================================
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any, Dict, List, Tuple

from repro.comm import protocol
from repro.core.operations import Operation
from repro.io.bucket import FileBucket
from repro.observability.events import piggyback_events_from_span
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiling import profiler_from_opts
from repro.observability.tracing import TaskSpan
from repro.runtime import taskrunner

logger = logging.getLogger("repro.worker")


def run_task(
    program: Any,
    descriptor: Dict[str, Any],
    profiler: Any = None,
    boot_seconds: Any = None,
    sampler: Any = None,
) -> Tuple[List[Tuple[int, str]], float, Dict[str, Any]]:
    """Execute one task descriptor in this process.

    Returns ``(bucket_urls, seconds, metrics)`` exactly as the ``done``
    message needs them; raises on any task error (the caller turns that
    into a ``failed`` message).
    """
    from repro.comm import transfer

    dataset_id = descriptor["dataset_id"]
    task_index = int(descriptor["task_index"])
    started = time.perf_counter()
    fetch_before = transfer.STATS.totals()
    # A fresh span per execution: its phase durations ride back to the
    # pool on the done message (input fetch lands in "started", compute
    # in "map"/"reduce", output writing in "serialize", URL publication
    # in "transfer").
    span = TaskSpan(dataset_id, task_index)
    span.mark("queued", started)
    op = Operation.from_dict(descriptor["op"])
    # Reduce-kind tasks merge their inputs, and the merge streams
    # straight from the bucket files — so those inputs stay URL-only
    # (the read cost lands in "reduce" instead of "started").  Map
    # inputs are iterated as plain pairs and are fetched here.
    streaming = op.kind in ("reduce", "reducemap")
    input_buckets = taskrunner.buckets_from_urls(
        descriptor["input_urls"],
        split=task_index,
        key_serializer=descriptor.get("input_key_serializer"),
        value_serializer=descriptor.get("input_value_serializer"),
        streaming=streaming,
        sorted_flags=descriptor.get("input_sorted"),
    )
    span.mark("started")
    factory = taskrunner.file_bucket_factory(
        descriptor["outdir"],
        dataset_id,
        task_index,
        ext=descriptor["format_ext"],
        sidecar=bool(descriptor.get("user_output")),
        key_serializer=descriptor.get("key_serializer"),
        value_serializer=descriptor.get("value_serializer"),
    )
    if profiler is None:
        out_buckets = taskrunner.run_operation(
            program, op, input_buckets, factory, span=span
        )
    else:
        out_buckets = profiler.run(
            taskrunner.run_operation,
            program,
            op,
            input_buckets,
            factory,
            span=span,
            profile_dataset_id=dataset_id,
            profile_task_index=task_index,
            profile_span=span,
        )
    urls: List[Tuple[int, str, bool]] = []
    bucket_stats: List[Tuple[int, float, float]] = []
    for bucket in out_buckets:
        assert isinstance(bucket, FileBucket)
        # The sortedness flag lets the consuming reduce task stream
        # this file through its merge without re-sorting.
        urls.append((bucket.split, "file:" + bucket.path, bucket.url_sorted))
        if sampler is not None:
            # Per-bucket emitted records/bytes for shuffle-skew
            # accounting on the pool side (telemetry on).
            try:
                bucket_stats.append(
                    (
                        bucket.split,
                        float(len(bucket)),
                        float(os.path.getsize(bucket.path)),
                    )
                )
            except OSError:
                pass
    span.mark("transfer")
    seconds = time.perf_counter() - started
    # Deliberately a *per-task* registry snapshot rather than the
    # worker's cumulative state: the pool merges every payload it
    # receives, and merging cumulative counters repeatedly would
    # double-count (same discipline as the slave piggyback).
    registry = MetricsRegistry()
    registry.counter("worker.tasks.completed").inc()
    registry.histogram("worker.task.seconds").observe(seconds)
    if boot_seconds is not None:
        # First task only: the executing process's boot-to-first-task
        # latency, the role-appropriate startup number for a worker.
        registry.gauge("worker.boot_to_first_task.seconds").set(boot_seconds)
    # What the transfer plane moved *for this task* (delta against the
    # process-wide stats, same no-double-count discipline as above).
    for name, amount in transfer.STATS.delta(fetch_before).items():
        registry.counter(name).inc(amount)
    # Per-task event batch (phase boundaries as offsets from task
    # start); the pool re-anchors them on its own clock.
    events = piggyback_events_from_span(span)
    if span.profile_path:
        events.append(
            {
                "name": "task.profiled",
                "offset": span.total_seconds,
                "fields": {"path": span.profile_path, "seconds": seconds},
            }
        )
    metrics = protocol.make_task_metrics(
        durations=span.durations_dict(),
        registry=registry.snapshot(),
        events=events,
        health=sampler.maybe_sample() if sampler is not None else None,
        buckets=bucket_stats or None,
    )
    return urls, seconds, metrics


def worker_main(
    worker_id: int,
    program_class: Any,
    opts: Any,
    args: List[str],
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Worker process entry point.

    Must stay a module-level function: the spawn start method pickles
    it by reference, along with ``program_class`` (which must therefore
    be importable, not defined in a script body or closure).
    """
    boot = time.perf_counter()
    # Apply --mrs-fetch-* knobs to this worker process's transfer plane
    # (module state does not cross the spawn boundary).
    from repro.comm import transfer

    transfer.configure(opts)
    try:
        program = program_class(opts, args)
    except Exception as exc:
        result_queue.put(
            {
                "type": "init_failed",
                "worker_id": worker_id,
                "message": repr(exc),
            }
        )
        return
    profiler = profiler_from_opts(opts)
    # Health sampling (--mrs-telemetry): throttled snapshots ride back
    # on done messages; task throughput from a local completion count.
    sampler: Any = None
    completed = [0.0]
    if getattr(opts, "telemetry", "on") != "off":
        from repro.observability.telemetry import HealthSampler

        try:
            interval = float(getattr(opts, "telemetry_interval", 5.0) or 5.0)
        except (TypeError, ValueError):
            interval = 5.0
        sampler = HealthSampler(
            rundir=getattr(opts, "tmpdir", None),
            interval=interval,
            task_counter=lambda: completed[0],
        )
    result_queue.put({"type": "ready", "worker_id": worker_id})
    boot_seconds: Any = None
    first_task = True
    while True:
        descriptor = task_queue.get()
        if descriptor is None:
            return
        if first_task:
            first_task = False
            boot_seconds = time.perf_counter() - boot
        dataset_id = descriptor["dataset_id"]
        task_index = int(descriptor["task_index"])
        try:
            urls, seconds, metrics = run_task(
                program,
                descriptor,
                profiler=profiler,
                boot_seconds=boot_seconds,
                sampler=sampler,
            )
            boot_seconds = None
            completed[0] += 1.0
        except Exception as exc:
            logger.warning(
                "task (%s, %d) failed: %r", dataset_id, task_index, exc
            )
            result_queue.put(
                {
                    "type": "failed",
                    "worker_id": worker_id,
                    "dataset_id": dataset_id,
                    "task_index": task_index,
                    "message": repr(exc),
                }
            )
            continue
        result_queue.put(
            {
                "type": "done",
                "worker_id": worker_id,
                "dataset_id": dataset_id,
                "task_index": task_index,
                "bucket_urls": urls,
                "seconds": seconds,
                "metrics": metrics,
            }
        )
