"""The multiprocess worker-pool backend (single-node parallelism).

Structurally this is the cluster master with the network removed: the
same affinity-aware :class:`~repro.runtime.scheduler.Scheduler`, the
same task descriptors, the same shared-tmpdir file data plane, and the
same per-task failure budget — but the control plane is a pair of
``multiprocessing`` queues instead of XML-RPC, and "slaves" are local
worker processes the pool itself forks (or spawns).

Fault tolerance mirrors the cluster: a worker that dies mid-task is
detected by the collector thread's liveness sweep, its in-flight task
is requeued (burning one strike of the shared ``MAX_TASK_FAILURES``
budget — a crash is evidence against the task as well as the worker),
and a replacement process is spawned, up to a respawn cap that stops a
crash-looping program from forking forever.

Observability mirrors the slave piggyback: each ``done`` message
carries the worker's span durations and a fresh per-task registry
snapshot, so ``Job.metrics()`` totals cover the whole pool with every
task counted exactly once, broken down per worker under ``sources``.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_mod
import shutil
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.comm import protocol
from repro.core.dataset import BaseDataset, ComputedData
from repro.core.job import Backend, Job
from repro.core.options import resolve_heartbeat_interval
from repro.io.bucket import Bucket
from repro.observability import Observability, PIGGYBACK_PHASES
from repro.observability.telemetry import StragglerScorer
from repro.runtime import dataplane
from repro.runtime.failures import FailureTracker, propagate_error
from repro.runtime.multiprocess.pool import WorkerPool
from repro.runtime.scheduler import ScheduledDataset, Scheduler, TaskId

logger = logging.getLogger("repro.multiprocess")

#: Collector poll period while the result queue is idle; also the
#: worker-crash detection latency.
IDLE_POLL = 0.2

#: Default heartbeat-event throttle (seconds); override with
#: --mrs-heartbeat-interval / MRS_HEARTBEAT_INTERVAL.
HEARTBEAT_INTERVAL = 5.0


class MultiprocessBackend(Backend):
    """Job backend that runs tasks on a pool of local processes."""

    def __init__(self, program: Any, opts: Any, args: Optional[List[str]] = None):
        self.program = program
        self.opts = opts
        self._owns_tmpdir = getattr(opts, "tmpdir", None) is None
        self.tmpdir = getattr(opts, "tmpdir", None) or tempfile.mkdtemp(
            prefix="mrs_mp_"
        )
        os.makedirs(self.tmpdir, exist_ok=True)
        self.default_timeout = getattr(opts, "timeout", None)
        #: --mrs-procs: pool size (0 = one worker per core).
        self.n_procs = int(getattr(opts, "procs", 0) or 0) or (
            os.cpu_count() or 1
        )
        start_method = getattr(opts, "start_method", None)
        self.ctx = multiprocessing.get_context(start_method)

        self.observability = Observability(role="multiprocess")
        self.observability.configure_from_opts(opts)
        #: Throttle for heartbeat events (the liveness sweep itself runs
        #: every IDLE_POLL seconds, far too often to log).
        self._last_heartbeat = 0.0
        self._heartbeat_interval = resolve_heartbeat_interval(
            opts, HEARTBEAT_INTERVAL
        )

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.scheduler = Scheduler(
            affinity=not getattr(opts, "no_affinity", False),
            pipeline=getattr(opts, "pipeline", "buckets") != "off",
        )
        telemetry = self.observability.telemetry
        if telemetry is not None:
            telemetry.set_rundir(self.tmpdir)
            self.scheduler.straggler_scorer = StragglerScorer(
                factor=telemetry.straggler_factor
            )
        #: Mirror of the scheduler's pipelined-dispatch count already
        #: folded into the metrics registry.
        self._pipelined_seen = 0
        self.observability.registry.counter("scheduler.pipelined_dispatches")
        self._failures = FailureTracker()
        self._datasets: Dict[str, BaseDataset] = {}
        self._task_seconds: Dict[str, List[float]] = {}
        self._ready: set = set()
        self._respawns = 0
        #: Crash-loop guard: stop replacing dead workers after this many
        #: losses (a program whose __init__ or map kills every process
        #: would otherwise fork forever).
        self._max_respawns = max(4, 2 * self.n_procs)
        self._closed = False

        self.result_queue = self.ctx.Queue()
        self.pool = WorkerPool(
            self.ctx, type(program), opts, list(args or []), self.result_queue
        )
        events = self.observability.events
        with self._lock:
            for _ in range(self.n_procs):
                handle = self.pool.spawn()
                self.scheduler.add_slave(handle.worker_id)
                if events is not None:
                    events.emit("worker.spawned", worker=handle.worker_id)
        self.observability.registry.gauge("workers.alive").set(self.n_procs)

        self._collector = threading.Thread(
            target=self._collector_loop, name="mrs-mp-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Backend interface (called from the program's main thread)
    # ------------------------------------------------------------------

    @property
    def default_splits(self) -> int:
        requested = getattr(self.opts, "reduce_tasks", 0)
        return requested or self.n_procs

    def submit(self, dataset: ComputedData, job: Job) -> None:
        self.observability.note_operation(dataset.id, dataset.operation.kind)
        events = self.observability.events
        if events is not None:
            events.emit(
                "dataset.submitted",
                dataset_id=dataset.id,
                kind=dataset.operation.kind,
                tasks=dataset.ntasks,
            )
        for task_index in dataset.task_indices():
            self.observability.tracer.span(dataset.id, task_index).mark(
                "queued"
            )
            if events is not None:
                events.emit(
                    "task.queued", dataset_id=dataset.id, task_index=task_index
                )
        with self._lock:
            input_dataset = job.get_dataset(dataset.input_id)
            self._datasets[dataset.id] = dataset
            self._datasets.setdefault(input_dataset.id, input_dataset)
            for blocker_id in dataset.blocking_ids:
                self._datasets.setdefault(
                    blocker_id, job.get_dataset(blocker_id)
                )
            for dep_id in [dataset.input_id, *dataset.blocking_ids]:
                dep = self._datasets[dep_id]
                if dep.complete and not self.scheduler.is_complete(dep_id):
                    self.scheduler.mark_input_complete(dep_id)
            self.scheduler.add_dataset(
                ScheduledDataset(
                    dataset.id,
                    ntasks=dataset.ntasks,
                    affinity_group=dataset.affinity_group,
                    input_id=dataset.input_id,
                    blocking_ids=dataset.blocking_ids,
                    routing=dataplane.derive_routing(dataset, input_dataset),
                )
            )
            self._drain_scheduler()
        self._dispatch()

    def _drain_scheduler(self) -> None:
        """Publish scheduler-side transitions (caller holds the lock):
        zero-task datasets that completed without any task report, and
        pipelined tasks whose input buckets just committed."""
        events = self.observability.events
        for dataset_id in self.scheduler.take_completed_datasets():
            dataset = self._datasets.get(dataset_id)
            if dataset is not None and not dataset.complete:
                dataset.complete = True
                logger.info("dataset %s complete (no tasks)", dataset_id)
                if events is not None:
                    events.emit(
                        "dataset.complete", dataset_id=dataset_id, tasks=0
                    )
        for entry in self.scheduler.take_unblocked():
            dataset_id, task_index = entry["task"]
            if events is not None:
                events.emit(
                    "task.unblocked",
                    dataset_id=dataset_id,
                    task_index=task_index,
                    input_id=entry["input_id"],
                    source=entry["source"],
                    split=entry["split"],
                )
        self._cond.notify_all()

    def wait(
        self,
        datasets: Sequence[BaseDataset],
        job: Job,
        timeout: Optional[float] = None,
    ) -> List[BaseDataset]:
        deadline = None if timeout is None else time.monotonic() + timeout
        self._dispatch()
        with self._cond:
            while True:
                done = [d for d in datasets if d.complete or d.error]
                if done:
                    return done
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return done
                    self._cond.wait(remaining)
                else:
                    self._cond.wait(1.0)

    def progress(self, dataset: BaseDataset) -> float:
        if dataset.complete:
            return 1.0
        with self._lock:
            return self.scheduler.progress(dataset.id)

    def status(self) -> Dict[str, Any]:
        """Live snapshot: the observability view plus pool state."""
        status = self.observability.status_view()
        with self._lock:
            alive = self.pool.alive_handles()
            status["workers"] = {
                "alive": len(alive),
                "ready": len(self._ready),
                "busy": sum(1 for h in alive if h.busy is not None),
                "respawns": self._respawns,
            }
            status["outstanding"] = self.scheduler.outstanding()
            status["datasets"] = {
                dataset_id: (
                    "error"
                    if d.error
                    else "complete" if d.complete else "running"
                )
                for dataset_id, d in self._datasets.items()
            }
        return status

    def telemetry(self) -> Dict[str, Any]:
        """The cluster telemetry snapshot, including the scheduler's
        live straggler candidates (empty when --mrs-telemetry off)."""
        telemetry = self.observability.telemetry
        if telemetry is None:
            return {}
        with self._lock:
            candidates = self.scheduler.straggler_candidates()
            scorer = self.scheduler.straggler_scorer
            flagged = scorer.flagged_total if scorer is not None else 0
        return telemetry.snapshot(
            stragglers=candidates, flagged_total=flagged
        )

    def task_stats(self, dataset_id: str) -> Dict[str, float]:
        """Count/total/mean/max wall seconds of a dataset's tasks."""
        with self._lock:
            samples = list(self._task_seconds.get(dataset_id, ()))
        if not samples:
            return {"count": 0, "total": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": len(samples),
            "total": sum(samples),
            "mean": sum(samples) / len(samples),
            "max": max(samples),
        }

    def remove_data(self, dataset_id: str, job: Job) -> None:
        shared_dir = os.path.join(self.tmpdir, dataset_id)
        if os.path.isdir(shared_dir):
            shutil.rmtree(shared_dir, ignore_errors=True)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self.pool.shutdown()
        self._collector.join(timeout=2.0)
        self.result_queue.close()
        self.result_queue.cancel_join_thread()
        if self._owns_tmpdir:
            shutil.rmtree(self.tmpdir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Collector (runs on its own thread; the pool's "RPC handler")
    # ------------------------------------------------------------------

    def _collector_loop(self) -> None:
        while not self._closed:
            try:
                message = self.result_queue.get(timeout=IDLE_POLL)
            except queue_mod.Empty:
                self._check_workers()
                continue
            except (EOFError, OSError):
                return
            if self._closed:
                return
            mtype = message.get("type")
            if mtype == "ready":
                self._on_ready(int(message["worker_id"]))
            elif mtype == "done":
                self._on_done(message)
            elif mtype == "failed":
                self._on_failed(message)
            elif mtype == "init_failed":
                # The worker exits right after sending this; the next
                # liveness sweep reaps and (maybe) replaces it.
                logger.error(
                    "worker %s failed to initialize: %s",
                    message.get("worker_id"),
                    message.get("message"),
                )

    def _on_ready(self, worker_id: int) -> None:
        with self._cond:
            self._ready.add(worker_id)
            if len(self._ready) >= self.n_procs:
                # The pool is ready: the single-node analogue of the
                # paper's "~2 s" cluster startup quantity.
                self.observability.mark_startup_complete()
            self._cond.notify_all()
        self._dispatch()

    def _on_done(self, message: Dict[str, Any]) -> None:
        worker_id = int(message["worker_id"])
        dataset_id = message["dataset_id"]
        task_index = int(message["task_index"])
        task: TaskId = (dataset_id, task_index)
        with self._lock:
            handle = self.pool.get(worker_id)
            if handle is not None and handle.busy == task:
                handle.busy = None
            dataset = self._datasets.get(dataset_id)
            if dataset is None:
                return
            # The scheduler rejects stale duplicate reports (a worker
            # presumed dead whose task was already given away).
            accepted, dataset_complete = self.scheduler.task_done(
                worker_id, task
            )
            if accepted:
                seconds = float(message.get("seconds", 0.0))
                self._task_seconds.setdefault(dataset_id, []).append(seconds)
                for split, url, url_sorted in protocol.parse_bucket_urls(
                    message["bucket_urls"]
                ):
                    bucket = Bucket(source=task_index, split=split, url=url)
                    bucket.url_sorted = url_sorted
                    dataset.add_bucket(bucket)
                self._record_task_metrics(
                    worker_id,
                    dataset_id,
                    task_index,
                    seconds,
                    message.get("metrics"),
                )
            if dataset_complete:
                dataset.complete = True
                logger.info("dataset %s complete", dataset_id)
                events = self.observability.events
                if events is not None:
                    events.emit("dataset.complete", dataset_id=dataset_id)
            self._drain_scheduler()
            self._cond.notify_all()
        self._dispatch()

    def _record_task_metrics(
        self,
        worker_id: int,
        dataset_id: str,
        task_index: int,
        seconds: float,
        metrics: Optional[Dict[str, Any]],
    ) -> None:
        """Fold one accepted completion (and its piggybacked worker
        metrics) into the whole-job view.  Caller holds the lock."""
        obs = self.observability
        obs.registry.counter("tasks.completed").inc()
        obs.registry.histogram("task.seconds").observe(seconds)
        span = obs.tracer.span(dataset_id, task_index)
        payload = protocol.parse_task_metrics(metrics)
        for event, phase_seconds in payload["durations"].items():
            span.add_duration(event, phase_seconds)
            if event in PIGGYBACK_PHASES:
                obs.phases.add(event, phase_seconds)
        obs.merge_remote(payload["registry"], source=f"worker-{worker_id}")
        telemetry = obs.telemetry
        if telemetry is not None:
            telemetry.record_remote(
                f"worker-{worker_id}", payload.get("health")
            )
            if payload["buckets"]:
                telemetry.skew.record_emitted(dataset_id, payload["buckets"])
            counters = payload["registry"].get("counters")
            if isinstance(counters, dict):
                fetched = counters.get("fetch.bytes")
                if fetched:
                    telemetry.skew.record_fetched(
                        dataset_id, task_index, fetched
                    )
        span.mark("committed")
        events = obs.events
        if events is not None:
            # Re-anchor the worker's per-task event batch (offsets from
            # its own task start) at this process's dispatch timestamp —
            # the same skew-tolerant model as span.add_duration.
            anchor = span.event_time("started")
            if anchor is not None and payload["events"]:
                events.emit_anchored(
                    payload["events"],
                    anchor,
                    role="worker",
                    dataset_id=dataset_id,
                    task_index=task_index,
                    worker=worker_id,
                )
            events.emit(
                "task.committed",
                dataset_id=dataset_id,
                task_index=task_index,
                worker=worker_id,
                seconds=seconds,
            )

    def _on_failed(self, message: Dict[str, Any]) -> None:
        worker_id = int(message["worker_id"])
        dataset_id = message["dataset_id"]
        task_index = int(message["task_index"])
        text = str(message.get("message", ""))
        task: TaskId = (dataset_id, task_index)
        logger.warning(
            "task %s failed on worker %d: %s", task, worker_id, text
        )
        self.observability.registry.counter("tasks.failed").inc()
        with self._lock:
            handle = self.pool.get(worker_id)
            if handle is not None and handle.busy == task:
                handle.busy = None
            dataset = self._datasets.get(dataset_id)
            events = self.observability.events
            if events is not None:
                events.emit(
                    "task.failed",
                    dataset_id=dataset_id,
                    task_index=task_index,
                    worker=worker_id,
                    error=text,
                )
            if self._failures.record(task):
                if dataset is not None and not dataset.error:
                    dataset.error = (
                        f"task {task_index} failed "
                        f"{self._failures.count(task)} times; last: {text}"
                    )
                    # Dependents can never run; fail them too so any
                    # wait() on them returns instead of hanging, and
                    # drop the dataset's remaining queued tasks.
                    propagate_error(self._datasets, dataset_id)
                    # Dependents may hold pre-queued pipelined tasks;
                    # drop those too, they can only waste workers.
                    for errored_id, errored in self._datasets.items():
                        if errored.error:
                            self.scheduler.cancel_dataset(errored_id)
                    if events is not None:
                        events.emit(
                            "dataset.failed",
                            dataset_id=dataset_id,
                            error=dataset.error,
                        )
            else:
                self.scheduler.task_failed(worker_id, task)
                if events is not None:
                    events.emit(
                        "task.requeued",
                        dataset_id=dataset_id,
                        task_index=task_index,
                        failures=self._failures.count(task),
                    )
            self._cond.notify_all()
        self._dispatch()

    # ------------------------------------------------------------------
    # Crash detection and respawn
    # ------------------------------------------------------------------

    def _check_workers(self) -> None:
        """Reap dead workers: requeue their in-flight task (one strike
        against its failure budget) and spawn replacements."""
        with self._lock:
            if self._closed:
                return
            events = self.observability.events
            if events is not None:
                now = time.monotonic()
                if now - self._last_heartbeat >= self._heartbeat_interval:
                    self._last_heartbeat = now
                    events.emit(
                        "heartbeat",
                        alive=len(self.pool.alive_handles()),
                        outstanding=self.scheduler.outstanding(),
                    )
            dead = self.pool.reap_dead()
            if not dead:
                return
            for handle in dead:
                logger.warning(
                    "worker %d died unexpectedly (exitcode %s)",
                    handle.worker_id,
                    handle.process.exitcode,
                )
                self.observability.registry.counter("workers.lost").inc()
                if events is not None:
                    events.emit(
                        "worker.lost",
                        worker=handle.worker_id,
                        exitcode=handle.process.exitcode,
                        busy_task=list(handle.busy) if handle.busy else None,
                    )
                self._ready.discard(handle.worker_id)
                # Requeues the worker's assigned task, like a lost slave.
                self.scheduler.remove_slave(handle.worker_id)
                task = handle.busy
                if task is not None and self._failures.record(task):
                    dataset = self._datasets.get(task[0])
                    if dataset is not None and not dataset.error:
                        dataset.error = (
                            f"task {task[1]} killed its worker "
                            f"{self._failures.count(task)} times"
                        )
                        propagate_error(self._datasets, task[0])
                        for errored_id, errored in self._datasets.items():
                            if errored.error:
                                self.scheduler.cancel_dataset(errored_id)
                elif task is not None and events is not None:
                    events.emit(
                        "task.requeued",
                        dataset_id=task[0],
                        task_index=task[1],
                        failures=self._failures.count(task),
                    )
                if self._respawns < self._max_respawns:
                    self._respawns += 1
                    replacement = self.pool.spawn()
                    self.scheduler.add_slave(replacement.worker_id)
                    if events is not None:
                        events.emit(
                            "worker.spawned",
                            worker=replacement.worker_id,
                            replaces=handle.worker_id,
                        )
                    logger.info(
                        "respawned worker %d to replace %d",
                        replacement.worker_id,
                        handle.worker_id,
                    )
            alive = len(self.pool.alive_handles())
            self.observability.registry.gauge("workers.alive").set(alive)
            if alive == 0:
                for dataset in self._datasets.values():
                    if not dataset.complete and not dataset.error:
                        dataset.error = "all workers died"
            self._cond.notify_all()
        self._dispatch()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        """Hand pending tasks to idle workers (queue puts happen
        outside the lock, like the master's RPC sends)."""
        while True:
            to_send = []
            with self._lock:
                if self._closed:
                    return
                for handle in self.pool.alive_handles():
                    if handle.busy is not None:
                        continue
                    task = self.scheduler.next_task(handle.worker_id)
                    if task is None:
                        continue
                    descriptor = self._build_descriptor(task)
                    handle.busy = task
                    to_send.append((handle, task, descriptor))
                pipelined = self.scheduler.pipelined_dispatches
                if pipelined > self._pipelined_seen:
                    self.observability.registry.counter(
                        "scheduler.pipelined_dispatches"
                    ).inc(pipelined - self._pipelined_seen)
                    self._pipelined_seen = pipelined
            if not to_send:
                return
            # First work handed out: the job is effectively started.
            self.observability.mark_startup_complete()
            events = self.observability.events
            for handle, task, descriptor in to_send:
                dataset_id, task_index = task
                self.observability.tracer.span(dataset_id, task_index).mark(
                    "started"
                )
                self.observability.registry.counter("tasks.dispatched").inc()
                if events is not None:
                    events.emit(
                        "task.started",
                        dataset_id=dataset_id,
                        task_index=task_index,
                        worker=handle.worker_id,
                    )
                handle.task_queue.put(descriptor)

    def _build_descriptor(self, task: TaskId) -> Dict[str, Any]:
        """Build the task descriptor (caller holds the lock).  Same
        wire schema as the cluster, always on the file data plane."""
        dataset_id, task_index = task
        dataset = self._datasets[dataset_id]
        assert isinstance(dataset, ComputedData)
        input_dataset = self._datasets[dataset.input_id]
        input_urls = []
        input_sorted = []
        events = self.observability.events
        for bucket in input_dataset.buckets_for_split(task_index):
            if bucket.url is None:
                path = dataplane.spill_bucket(
                    input_dataset, bucket, self.tmpdir
                )
                bucket.url = "file:" + path
                if events is not None:
                    events.emit(
                        "spill.bucket",
                        dataset_id=input_dataset.id,
                        split=bucket.split,
                        path=path,
                    )
            input_urls.append(bucket.url)
            input_sorted.append(bucket.url_sorted)
        user_output = dataset.outdir is not None
        if user_output:
            outdir: Optional[str] = dataset.outdir
            ext = dataset.format_ext or "txt"
        else:
            outdir = os.path.join(self.tmpdir, dataset.id)
            ext = dataset.format_ext or "mrsb"
        return protocol.make_task_descriptor(
            dataset_id=dataset.id,
            task_index=task_index,
            op_dict=dataset.operation.to_dict(),
            input_urls=input_urls,
            outdir=outdir,
            format_ext=ext,
            user_output=user_output,
            key_serializer=dataset.key_serializer,
            value_serializer=dataset.value_serializer,
            input_key_serializer=getattr(
                input_dataset, "key_serializer", None
            ),
            input_value_serializer=getattr(
                input_dataset, "value_serializer", None
            ),
            input_sorted=input_sorted,
        )
