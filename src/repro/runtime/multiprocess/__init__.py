"""True single-node parallelism: a multiprocess worker pool.

"One slave uses one core; a node contributes N cores by running N slave
processes — processes rather than threads because of the GIL" (section
IV-B).  This package applies that observation *without* a cluster: the
pool backend forks (or spawns) N worker processes on the local machine,
feeds them task descriptors over queues, and exchanges intermediate
data through the same shared-tmpdir file buckets the cluster uses.

Select it with ``--mrs multiprocess``; size it with ``--mrs-procs N``
(0 = one worker per CPU core) and pick the start method with
``--mrs-start-method fork|spawn|forkserver``.
"""

from repro.runtime.multiprocess.backend import MultiprocessBackend
from repro.runtime.multiprocess.pool import WorkerHandle, WorkerPool

__all__ = ["MultiprocessBackend", "WorkerHandle", "WorkerPool"]
