"""Serial implementation: sequential, deterministic, in-process.

The serial backend honours the queueing API (operations are submitted
lazily) but executes everything in submission order inside ``wait``.
Because submission order respects dataset dependencies by construction
(a program must hold a dataset handle before it can consume it), a
simple FIFO sweep is a valid topological order.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.dataset import BaseDataset, ComputedData
from repro.core.job import Backend, Job
from repro.observability import Observability
from repro.observability.events import span_phase_marks
from repro.observability.profiling import profiler_from_opts
from repro.runtime import taskrunner

#: Phase name each operation kind's compute is attributed to.
PHASE_FOR_KIND = {"map": "map", "reduce": "reduce", "reducemap": "reduce"}


def _emit_task_events(events, span, dataset_id, task_index):
    """Emit phase + committed events for a locally executed task.

    Phase boundaries are re-stamped at the span's recorded mark times
    (anchored at its first mark) so the timeline places them where they
    actually happened, not when they were derived.
    """
    anchor = span.event_time("queued")
    if anchor is None:
        anchor = span.event_time("started")
    if anchor is not None:
        for boundary in span_phase_marks(span, include_fetch=False):
            events.emit(
                "task.phase",
                t=anchor + boundary["offset"],
                dataset_id=dataset_id,
                task_index=task_index,
                phase=boundary["phase"],
                seconds=boundary["seconds"],
            )
    events.emit(
        "task.committed",
        t=span.event_time("committed"),
        dataset_id=dataset_id,
        task_index=task_index,
    )


class SerialBackend(Backend):
    default_splits = 1

    def __init__(self, program=None, outdir_default: Optional[str] = None):
        self.program = program
        opts = getattr(program, "opts", None)
        #: --mrs-profile DIR: cProfile each task into DIR.
        self.profile_dir = getattr(opts, "profile_dir", None)
        self.observability = Observability(role="serial")
        self.observability.configure_from_opts(opts)
        #: --mrs-profile-tasks N: keep the N slowest tasks' profiles.
        self.profiler = profiler_from_opts(opts)
        self._queue: List[ComputedData] = []
        self._completed_tasks = {}
        #: Wall seconds per completed task, per dataset (same
        #: profiling surface as the master backend).
        self._task_seconds = {}

    def submit(self, dataset: ComputedData, job: Job) -> None:
        self._queue.append(dataset)
        self.observability.note_operation(dataset.id, dataset.operation.kind)
        events = self.observability.events
        if events is not None:
            events.emit(
                "dataset.submitted",
                dataset_id=dataset.id,
                kind=dataset.operation.kind,
                tasks=len(list(dataset.task_indices())),
            )
        for task_index in dataset.task_indices():
            self.observability.tracer.span(dataset.id, task_index).mark(
                "queued"
            )
            if events is not None:
                events.emit(
                    "task.queued", dataset_id=dataset.id, task_index=task_index
                )

    def wait(
        self,
        datasets: Sequence[BaseDataset],
        job: Job,
        timeout: Optional[float] = None,
    ) -> List[BaseDataset]:
        # Startup for the serial backend is everything before the first
        # task can run: construction to the first wait.
        self.observability.mark_startup_complete()
        wanted = {d.id for d in datasets}
        # Run queued operations in order until every wanted dataset is
        # complete (or the queue empties).
        while self._queue and not all(d.complete or d.error for d in datasets):
            dataset = self._queue.pop(0)
            self._compute(dataset, job)
            if dataset.id in wanted and (dataset.complete or dataset.error):
                # At least one target done; serial semantics still run
                # the rest only when asked again, matching the lazy
                # contract.  But finishing all requested targets in one
                # call is what callers almost always want:
                continue
        return [d for d in datasets if d.complete or d.error]

    def progress(self, dataset: BaseDataset) -> float:
        if dataset.complete:
            return 1.0
        done = self._completed_tasks.get(dataset.id, 0)
        ntasks = getattr(dataset, "ntasks", 1) or 1
        return done / ntasks

    def task_stats(self, dataset_id: str):
        """Count/total/mean/max wall seconds of a dataset's tasks."""
        samples = list(self._task_seconds.get(dataset_id, ()))
        if not samples:
            return {"count": 0, "total": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": len(samples),
            "total": sum(samples),
            "mean": sum(samples) / len(samples),
            "max": max(samples),
        }

    def _compute(self, dataset: ComputedData, job: Job) -> None:
        if dataset.complete or dataset.error:
            return
        input_dataset = job.get_dataset(dataset.input_id)
        if input_dataset.error:
            # Propagate upstream failure instead of computing garbage.
            dataset.error = (
                f"input dataset {input_dataset.id} failed: "
                f"{input_dataset.error}"
            )
            return
        if not input_dataset.complete:
            raise RuntimeError(
                f"dataset {dataset.id} scheduled before input "
                f"{input_dataset.id} completed; submission order violated"
            )
        obs = self.observability
        events = obs.events
        phase = PHASE_FOR_KIND.get(dataset.operation.kind, "map")
        try:
            for task_index in dataset.task_indices():
                span = obs.tracer.span(dataset.id, task_index)
                # Gathering a reduce task's input is the shuffle: map
                # outputs were partitioned at write time, so all that
                # remains is collecting each split's buckets.  Any
                # file-backed buckets stay URL-only here; the reduce
                # merge streams them (their read cost lands in the
                # "reduce" phase).
                if phase == "reduce":
                    with obs.phases.measure("shuffle"):
                        input_buckets = taskrunner.materialize_input_buckets(
                            input_dataset, task_index, streaming=True
                        )
                else:
                    input_buckets = taskrunner.materialize_input_buckets(
                        input_dataset, task_index
                    )
                if dataset.outdir:
                    factory = taskrunner.file_bucket_factory(
                        dataset.outdir,
                        dataset.id,
                        task_index,
                        ext=dataset.format_ext or "mrsb",
                        key_serializer=dataset.key_serializer,
                        value_serializer=dataset.value_serializer,
                    )
                else:
                    factory = taskrunner.memory_bucket_factory(task_index)
                started = time.perf_counter()
                span.mark("started", started)
                if events is not None:
                    events.emit(
                        "task.started",
                        t=started,
                        dataset_id=dataset.id,
                        task_index=task_index,
                    )
                with obs.phases.measure(phase):
                    out_buckets = self._execute(
                        dataset, task_index, input_buckets, factory, span
                    )
                seconds = time.perf_counter() - started
                self._task_seconds.setdefault(dataset.id, []).append(seconds)
                obs.registry.histogram("task.seconds").observe(seconds)
                for bucket in out_buckets:
                    dataset.add_bucket(bucket)
                span.mark("committed")
                obs.registry.counter("tasks.completed").inc()
                self._completed_tasks[dataset.id] = (
                    self._completed_tasks.get(dataset.id, 0) + 1
                )
                if events is not None:
                    _emit_task_events(events, span, dataset.id, task_index)
            dataset.complete = True
            if events is not None:
                events.emit("dataset.complete", dataset_id=dataset.id)
        except taskrunner.TaskError as exc:
            obs.registry.counter("tasks.failed").inc()
            dataset.error = str(exc)
            if events is not None:
                events.emit(
                    "task.failed", dataset_id=dataset.id, error=str(exc)
                )
                events.emit(
                    "dataset.failed", dataset_id=dataset.id, error=str(exc)
                )

    def _execute(self, dataset, task_index, input_buckets, factory, span=None):
        """Run one task, optionally under cProfile (--mrs-profile or
        --mrs-profile-tasks)."""
        if self.profiler is not None and not self.profile_dir:
            # Targeted profiling: keep only the N slowest tasks' dumps.
            return self.profiler.run(
                taskrunner.execute_task,
                self.program,
                dataset,
                task_index,
                input_buckets,
                factory,
                span=span,
                profile_dataset_id=dataset.id,
                profile_task_index=task_index,
                profile_span=span,
                profile_events=self.observability.events,
            )
        if not self.profile_dir:
            return taskrunner.execute_task(
                self.program, dataset, task_index, input_buckets, factory,
                span=span,
            )
        import cProfile
        import os

        os.makedirs(self.profile_dir, exist_ok=True)
        profiler = cProfile.Profile()
        try:
            return profiler.runcall(
                taskrunner.execute_task,
                self.program,
                dataset,
                task_index,
                input_buckets,
                factory,
                span=span,
            )
        finally:
            profiler.dump_stats(
                os.path.join(
                    self.profile_dir, f"{dataset.id}_{task_index}.prof"
                )
            )

    def remove_data(self, dataset_id: str, job: Job) -> None:
        # In-memory data is freed by Job.remove_data via dataset.clear().
        self._completed_tasks.pop(dataset_id, None)
