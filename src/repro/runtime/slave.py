"""Slave side of the distributed implementation.

"A slave needs only the master's address and port to connect" (section
IV).  A slave:

1. re-instantiates the user's program class locally (user code never
   crosses the wire — only method *names* inside task descriptors),
2. starts a tiny XML-RPC server so the master can push tasks,
3. optionally starts an HTTP data server over its local output
   directory (``--mrs-data-plane http``),
4. signs in, then executes one task at a time from its queue.

One slave uses one core; a node contributes N cores by running N slave
processes — processes rather than threads because of the GIL
(section IV-B).
"""

from __future__ import annotations

import logging
import os
import queue
import shutil
import signal as signal_mod
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.comm import protocol, transfer
from repro.comm.dataserver import DataServer
from repro.comm.rpc import RpcServer, rpc_client
from repro.core.operations import Operation
from repro.io.bucket import FileBucket
from repro.observability import Observability
from repro.observability.events import piggyback_events_from_span
from repro.observability.profiling import profiler_from_opts
from repro.observability.tracing import TaskSpan
from repro.runtime import taskrunner

logger = logging.getLogger("repro.slave")

#: How long the main loop sleeps on an empty queue before re-checking
#: for quit / master liveness.
IDLE_POLL = 0.2

#: Consecutive master ping failures before the slave gives up and exits
#: (the master is gone; PBS will reap us anyway, but exit cleanly).
MASTER_PING_FAILURES = 3

#: Seconds between idle master liveness checks.
MASTER_PING_INTERVAL = 5.0


class SlaveInterface:
    """RPC surface exposed to the master."""

    def __init__(self, slave: "Slave"):
        self.slave = slave

    def rpc_start_task(self, descriptor: Dict[str, Any]) -> bool:
        protocol.check_task_descriptor(descriptor)
        self.slave.task_queue.put(descriptor)
        return True

    def rpc_remove_data(self, dataset_id: str) -> bool:
        self.slave.remove_data(dataset_id)
        return True

    def rpc_quit(self) -> bool:
        self.slave.quit_event.set()
        # Unblock the main loop promptly.
        self.slave.task_queue.put(None)
        return True

    def rpc_ping(self) -> Any:
        # With telemetry on, a throttled health sample answers the ping
        # — per-slave CPU/RSS/fd/disk series for free on the heartbeats
        # the master already sends.  Old masters (and telemetry off)
        # just see a truthy value.
        telemetry = self.slave.observability.telemetry
        if telemetry is not None:
            sample = telemetry.sampler.maybe_sample()
            if sample is not None:
                return sample
        return True


class Slave:
    """Slave runtime state and main loop."""

    def __init__(self, program: Any, opts: Any):
        if not getattr(opts, "master", None):
            raise ValueError("slave requires --mrs-master HOST:PORT")
        self.program = program
        self.opts = opts
        self.master_address = opts.master
        self.task_queue: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
        self.quit_event = threading.Event()
        self.data_plane = getattr(opts, "data_plane", "file") or "file"
        self.observability = Observability(role="slave")
        # Apply --mrs-fetch-* knobs to this process's transfer plane
        # and mirror its counters into the slave's live registry.
        transfer.configure(opts)
        transfer.install_registry(self.observability.registry)
        #: --mrs-profile-tasks N: keep the N slowest tasks' profiles.
        self.profiler = profiler_from_opts(opts)
        #: First completion ships the boot-to-first-task gauge once.
        self._reported_startup = False

        self._owns_tmpdir = opts.tmpdir is None
        base_tmp = opts.tmpdir or tempfile.mkdtemp(prefix="mrs_slave_")
        os.makedirs(base_tmp, exist_ok=True)
        #: Slave-local output directory (per-process to avoid collisions
        #: when several slaves share a tmpdir).
        self.localdir = os.path.join(base_tmp, f"slave_{os.getpid()}")
        os.makedirs(self.localdir, exist_ok=True)
        # Health sampling (--mrs-telemetry): piggybacks on pings and
        # done RPCs; reports disk free for the slave's own run dir.
        self.observability.enable_telemetry(opts, rundir=self.localdir)

        self.rpc = RpcServer(
            SlaveInterface(self),
            host="127.0.0.1",
            port=0,
            registry=self.observability.registry,
        )
        self.dataserver: Optional[DataServer] = None
        if self.data_plane == "http":
            self.dataserver = DataServer(self.localdir, host="127.0.0.1")

        self.slave_id: Optional[int] = None
        #: Programs resolved from task descriptors, keyed by
        #: (program_spec, args tuple).  Service mode multiplexes many
        #: programs over one slave pool; the boot-time ``self.program``
        #: stays the default for descriptors without a spec.
        self._programs: Dict[Tuple[str, Tuple[str, ...]], Any] = {}

    # -- master communication -------------------------------------------

    def _master(self):
        return rpc_client(
            self.master_address,
            timeout=30.0,
            registry=self.observability.registry,
        )

    def signin(self) -> int:
        self.slave_id = int(
            self._master().signin(
                protocol.PROTOCOL_VERSION, self.rpc.host, self.rpc.port
            )
        )
        logger.info(
            "slave %d signed in to %s", self.slave_id, self.master_address
        )
        return self.slave_id

    # -- task execution ------------------------------------------------------

    def _program_for(self, descriptor: Dict[str, Any]) -> Any:
        """The program instance a task runs against.

        Descriptors carrying a ``program_spec`` (``module:Class``, from
        a job server) are resolved and instantiated locally — user code
        still never crosses the wire, only names — and cached per
        (spec, args) so each job pays the import once per slave.
        """
        spec = descriptor.get("program_spec")
        if not spec:
            return self.program
        args = tuple(str(a) for a in (descriptor.get("program_args") or ()))
        program = self._programs.get((spec, args))
        if program is None:
            from repro.core import options as options_mod
            from repro.runtime.slave_boot import resolve_program

            program_class = resolve_program(spec)
            opts, positional = options_mod.parse_options(
                program_class, list(args)
            )
            program = program_class(opts, positional)
            self._programs[(spec, args)] = program
            logger.info("slave resolved program %s%r", spec, args)
        return program

    def execute(self, descriptor: Dict[str, Any]) -> None:
        dataset_id = descriptor["dataset_id"]
        task_index = int(descriptor["task_index"])
        # Slave startup is role-appropriately "boot to first task":
        # seconds from process construction to the first task arriving.
        self.observability.mark_startup_complete()
        started = time.perf_counter()
        # A fresh span per execution: its phase durations ride back to
        # the master on the done RPC (input fetch lands in "started",
        # compute in "map"/"reduce", output writing in "serialize",
        # URL publication in "transfer").
        span = TaskSpan(dataset_id, task_index)
        span.mark("queued", started)
        fetch_before = transfer.STATS.totals()
        try:
            program = self._program_for(descriptor)
            op = Operation.from_dict(descriptor["op"])
            # Reduce-kind inputs stay URL-only so the merge can stream
            # straight from the bucket files (see worker.run_task).
            streaming = op.kind in ("reduce", "reducemap")
            input_buckets = taskrunner.buckets_from_urls(
                descriptor["input_urls"],
                split=task_index,
                key_serializer=descriptor.get("input_key_serializer"),
                value_serializer=descriptor.get("input_value_serializer"),
                streaming=streaming,
                sorted_flags=descriptor.get("input_sorted"),
            )
            span.mark("started")
            outdir = descriptor.get("outdir") or os.path.join(
                self.localdir, dataset_id
            )
            ext = descriptor["format_ext"]
            factory = taskrunner.file_bucket_factory(
                outdir,
                dataset_id,
                task_index,
                ext=ext,
                sidecar=bool(descriptor.get("user_output")),
                key_serializer=descriptor.get("key_serializer"),
                value_serializer=descriptor.get("value_serializer"),
            )
            if self.profiler is None:
                out_buckets = taskrunner.run_operation(
                    program, op, input_buckets, factory, span=span,
                )
            else:
                out_buckets = self.profiler.run(
                    taskrunner.run_operation,
                    program,
                    op,
                    input_buckets,
                    factory,
                    span=span,
                    profile_dataset_id=dataset_id,
                    profile_task_index=task_index,
                    profile_span=span,
                )
            telemetry = self.observability.telemetry
            urls: List[Tuple[int, str, bool]] = []
            bucket_stats: List[Tuple[int, float, float]] = []
            for bucket in out_buckets:
                assert isinstance(bucket, FileBucket)
                if descriptor.get("outdir") is None and self.dataserver:
                    url = self.dataserver.url_for(bucket.path)
                else:
                    url = "file:" + bucket.path
                # Sortedness rides along so the consuming reduce task
                # can stream this file through its merge.
                urls.append((bucket.split, url, bucket.url_sorted))
                if telemetry is not None:
                    # Per-bucket emitted records/bytes for shuffle-skew
                    # accounting on the master.
                    try:
                        bucket_stats.append(
                            (
                                bucket.split,
                                float(len(bucket)),
                                float(os.path.getsize(bucket.path)),
                            )
                        )
                    except OSError:
                        pass
            span.mark("transfer")
            seconds = time.perf_counter() - started
            self.observability.registry.counter("tasks.completed").inc()
            self.observability.registry.histogram("task.seconds").observe(
                seconds
            )
            # Per-task event batch (phase boundaries as offsets from
            # task start); the master re-anchors them on its own clock.
            event_batch = piggyback_events_from_span(span)
            if span.profile_path:
                event_batch.append(
                    {
                        "name": "task.profiled",
                        "offset": span.total_seconds,
                        "fields": {
                            "path": span.profile_path,
                            "seconds": seconds,
                        },
                    }
                )
            metrics = protocol.make_task_metrics(
                durations=span.durations_dict(),
                registry=self._task_registry_snapshot(seconds, fetch_before),
                events=event_batch,
                health=(
                    telemetry.sampler.maybe_sample()
                    if telemetry is not None
                    else None
                ),
                buckets=bucket_stats or None,
            )
            self._master().done(
                self.slave_id, dataset_id, task_index, urls, seconds, metrics
            )
        except Exception as exc:
            logger.warning(
                "task (%s, %d) failed: %r", dataset_id, task_index, exc
            )
            self.observability.registry.counter("tasks.failed").inc()
            try:
                self._master().failed(
                    self.slave_id, dataset_id, task_index, repr(exc)
                )
            except Exception:
                # Master unreachable; the main loop's liveness check
                # will notice and exit.
                pass

    def _task_registry_snapshot(
        self, seconds: float, fetch_before: Optional[Dict[str, float]] = None
    ) -> Dict[str, Any]:
        """A *per-task* registry snapshot for piggybacking.

        Deliberately built fresh for each completion rather than
        snapshotting the slave's cumulative registry: the master merges
        every payload it receives, and merging cumulative counter
        snapshots repeatedly would double-count.
        """
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("slave.tasks.completed").inc()
        registry.histogram("slave.task.seconds").observe(seconds)
        if not self._reported_startup:
            self._reported_startup = True
            # Role-appropriate startup for a slave: boot-to-first-task
            # latency, shipped once so the master's report can break
            # down cluster spin-up per slave under ``sources``.
            registry.gauge("slave.boot_to_first_task.seconds").set(
                self.observability.startup_seconds or 0.0
            )
        if fetch_before is not None:
            # What the transfer plane moved for *this* task.
            for name, amount in transfer.STATS.delta(fetch_before).items():
                registry.counter(name).inc(amount)
        return registry.snapshot()

    def remove_data(self, dataset_id: str) -> None:
        path = os.path.join(self.localdir, dataset_id)
        if os.path.isdir(path):
            shutil.rmtree(path, ignore_errors=True)

    # -- main loop ------------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """Graceful SIGTERM/SIGINT: finish the in-flight task (the
        handler only sets the quit event, so user code is never
        interrupted mid-record), report it, then exit 0.  A second
        signal falls back to the default disposition and kills the
        process.  Main-thread only; a no-op elsewhere.
        """
        if threading.current_thread() is not threading.main_thread():
            return

        def handler(signum, frame):
            signal_mod.signal(signum, previous.get(signum, signal_mod.SIG_DFL))
            logger.warning(
                "slave received signal %d; draining and exiting", signum
            )
            self.quit_event.set()
            self.task_queue.put(None)

        previous = {}
        for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
            try:
                previous[signum] = signal_mod.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                return

    def run(self) -> int:
        self.install_signal_handlers()
        self.signin()
        ping_failures = 0
        last_ping = time.monotonic()
        try:
            while not self.quit_event.is_set():
                try:
                    descriptor = self.task_queue.get(timeout=IDLE_POLL)
                except queue.Empty:
                    now = time.monotonic()
                    if now - last_ping >= MASTER_PING_INTERVAL:
                        last_ping = now
                        try:
                            self._master().ping(self.slave_id)
                            ping_failures = 0
                        except Exception:
                            ping_failures += 1
                            if ping_failures >= MASTER_PING_FAILURES:
                                logger.warning(
                                    "master unreachable; slave exiting"
                                )
                                return 1
                    continue
                if descriptor is None:
                    continue
                self.execute(descriptor)
            return 0
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        self.rpc.shutdown()
        if self.dataserver is not None:
            self.dataserver.shutdown()
        # Pooled keep-alive transfer connections are process-global;
        # close them so a graceful exit leaves no half-open sockets.
        try:
            transfer.get_pool().close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        if self._owns_tmpdir:
            shutil.rmtree(os.path.dirname(self.localdir), ignore_errors=True)
        else:
            # The per-pid localdir is ours even inside a caller-owned
            # shared tmpdir; leave the shared dir itself alone.
            shutil.rmtree(self.localdir, ignore_errors=True)


def run_slave(program_class: Any, opts: Any, args: List[str]) -> int:
    """Entry point used by ``main`` for ``--mrs slave``."""
    program = program_class(opts, args)
    slave = Slave(program, opts)
    return slave.run()
