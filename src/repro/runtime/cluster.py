"""Local cluster launching.

These helpers reproduce the *logic* of the paper's startup scripts
(Programs 3 and 4) on a single machine: the master comes up first and
publishes its address, then slaves are started with nothing but that
address.  On a real cluster the same two steps are driven by PBS or
pssh; here they are subprocesses.

:func:`run_on_cluster` is the one-call API used by tests, examples and
benchmarks: it runs the program's ``run`` in the current process as the
master and spawns ``n_slaves`` slave subprocesses.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core import options as options_mod
from repro.core.job import Job
from repro.runtime.master import MasterBackend

#: Seconds a cluster launch waits for slaves to sign in.
SIGNIN_TIMEOUT = 30.0


class ClusterError(Exception):
    pass


def program_spec(program_class: type) -> str:
    """The ``module:Class`` spec slave_boot uses to import the program."""
    module = program_class.__module__
    if module in ("__main__", "builtins"):
        raise ClusterError(
            f"{program_class.__name__} must live in an importable module "
            "to run on a cluster (slaves re-import it by name)"
        )
    return f"{module}:{program_class.__qualname__}"


def spawn_slave(
    spec: str,
    master_address: str,
    args: Sequence[str],
    tmpdir: str,
    data_plane: str = "file",
    extra_flags: Sequence[str] = (),
) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.runtime.slave_boot",
        spec,
        "--mrs",
        "slave",
        "--mrs-master",
        master_address,
        "--mrs-tmpdir",
        tmpdir,
        "--mrs-data-plane",
        data_plane,
        *extra_flags,
        *args,
    ]
    return subprocess.Popen(
        command,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )


class LocalCluster:
    """An in-process master plus ``n_slaves`` slave subprocesses.

    Use as a context manager; the master backend is available as
    ``cluster.backend`` once :meth:`start` has run.
    """

    def __init__(
        self,
        program_class: type,
        args: Optional[List[str]] = None,
        n_slaves: int = 2,
        data_plane: str = "file",
        tmpdir: Optional[str] = None,
        opt_overrides: Optional[Dict[str, Any]] = None,
    ):
        self.program_class = program_class
        self.args = list(args or [])
        self.n_slaves = n_slaves
        self.data_plane = data_plane
        self.tmpdir = tmpdir or tempfile.mkdtemp(prefix="mrs_cluster_")
        self.opt_overrides = dict(opt_overrides or {})
        self.backend: Optional[MasterBackend] = None
        self.program: Any = None
        self.slaves: List[subprocess.Popen] = []

    def start(self) -> "LocalCluster":
        flags = [
            "--mrs",
            "master",
            "--mrs-tmpdir",
            self.tmpdir,
            "--mrs-data-plane",
            self.data_plane,
        ]
        opts, positional = options_mod.parse_options(
            self.program_class, flags + self.args
        )
        for key, value in self.opt_overrides.items():
            setattr(opts, key, value)
        self.program = self.program_class(opts, positional)
        self.backend = MasterBackend(self.program, opts)
        spec = program_spec(self.program_class)
        # Slaves re-parse the *same* argument list (program flags and
        # positional args both), exactly as if the same script had been
        # launched with --mrs slave on another node.  Anything that
        # affects map/reduce behaviour must therefore be a CLI flag,
        # not an opt_override (those only exist in the master process).
        extra = []
        if self.opt_overrides.get("seed"):
            extra += ["--mrs-seed", str(self.opt_overrides["seed"])]
        for _ in range(self.n_slaves):
            self.slaves.append(
                spawn_slave(
                    spec,
                    self.backend.rpc.address,
                    self.args,
                    self.tmpdir,
                    data_plane=self.data_plane,
                    extra_flags=extra,
                )
            )
        signed_in = self.backend.wait_for_slaves(
            self.n_slaves, timeout=SIGNIN_TIMEOUT
        )
        if signed_in < self.n_slaves:
            self.stop()
            raise ClusterError(
                f"only {signed_in}/{self.n_slaves} slaves signed in within "
                f"{SIGNIN_TIMEOUT}s"
            )
        return self

    def run(self) -> Any:
        """Run the program's ``run`` against the cluster; returns the
        program instance (with ``output_data`` etc. populated)."""
        assert self.backend is not None, "call start() first"
        job = Job(self.backend, self.program)
        status = self.program.run(job)
        if status not in (None, 0):
            raise ClusterError(
                f"{self.program_class.__name__} exited with {status}"
            )
        # Same end-of-job observability outputs as main()/run_program:
        # metrics report, timeline trace, event-log flush.
        from repro.core.main import _finalize_run

        _finalize_run(self.backend, self.backend.opts)
        self.program.metrics_report = self.backend.metrics()
        return self.program

    def kill_slave(self, index: int) -> None:
        """Kill one slave process (failure-injection hook for tests)."""
        process = self.slaves[index]
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    def stop(self) -> None:
        if self.backend is not None:
            self.backend.close()
            self.backend = None
        for process in self.slaves:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 5
        for process in self.slaves:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
        self.slaves = []

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def run_on_cluster(
    program_class: type,
    args: Optional[List[str]] = None,
    n_slaves: int = 2,
    data_plane: str = "file",
    **opt_overrides: Any,
) -> Any:
    """One-call distributed run; returns the finished program instance."""
    with LocalCluster(
        program_class,
        args=args,
        n_slaves=n_slaves,
        data_plane=data_plane,
        opt_overrides=opt_overrides,
    ) as cluster:
        return cluster.run()
