"""Bypass implementation: run the program's ``bypass`` method.

"The bypass implementation invokes the program class's optional bypass
method, which is a simple entry point that avoids almost all of the
functionality of Mrs" (section IV-A).  It exists so a plain serial
version of an algorithm and its MapReduce formulation can live in one
file and be diffed against each other.
"""

from __future__ import annotations


def run_bypass(program) -> int:
    """Invoke ``program.bypass()`` and normalize its exit status."""
    result = program.bypass()
    if result is None:
        return 0
    return int(result)
