"""Master side of the distributed implementation.

The master owns the job state machine: it registers slaves as they sign
in (a slave needs only the master's address and port, section IV), runs
the user program's ``run`` method in the main thread, and drives the
affinity-aware :class:`~repro.runtime.scheduler.Scheduler` from RPC
handler threads as results arrive.

Data plane (section IV-B): by default intermediate buckets are files in
a tmpdir shared by all slaves ("increased fault-tolerance" — a slave's
death does not lose its output).  With ``--mrs-data-plane http``,
buckets stay on the producing slave's local disk and are fetched
directly from its built-in HTTP server ("direct communication for high
performance").
"""

from __future__ import annotations

import logging
import os
import shutil
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.comm import protocol
from repro.comm.dataserver import DataServer
from repro.comm.rpc import RpcServer, format_address, rpc_client
from repro.core.dataset import BaseDataset, ComputedData
from repro.core.job import Backend, Job
from repro.core.options import resolve_heartbeat_interval
from repro.io.bucket import Bucket
from repro.observability import (
    MetricsRegistry,
    Observability,
    PIGGYBACK_PHASES,
)
from repro.observability.telemetry import StragglerScorer
from repro.runtime import dataplane
from repro.runtime.failures import (
    MAX_TASK_FAILURES,
    FailureTracker,
    propagate_error,
)
from repro.runtime.scheduler import ScheduledDataset, Scheduler, TaskId

logger = logging.getLogger("repro.master")

#: Default watchdog ping period (seconds); override with
#: --mrs-heartbeat-interval / MRS_HEARTBEAT_INTERVAL.
PING_INTERVAL = 2.0

#: Consecutive failed pings before a slave is declared lost — the same
#: 3-strike budget slaves apply to master pings (MASTER_PING_FAILURES),
#: so one transient timeout no longer kills a healthy slave.
PING_FAILURES = 3

#: RPC timeout for master->slave calls.
SLAVE_RPC_TIMEOUT = 10.0

#: Fallback slave sign-in wait when neither --mrs-slave-wait-timeout
#: nor MRS_SLAVE_WAIT_TIMEOUT is set.
DEFAULT_SLAVE_WAIT_TIMEOUT = 30.0


def resolve_slave_wait_timeout(opts: Any = None) -> float:
    """The sign-in wait budget: option, then environment, then 30 s."""
    value = getattr(opts, "slave_wait_timeout", None)
    if value is None:
        raw = os.environ.get("MRS_SLAVE_WAIT_TIMEOUT")
        if raw:
            try:
                value = float(raw)
            except ValueError:
                logger.warning(
                    "ignoring malformed MRS_SLAVE_WAIT_TIMEOUT=%r", raw
                )
    if value is None:
        return DEFAULT_SLAVE_WAIT_TIMEOUT
    return float(value)


class SlaveRecord:
    """Master-side view of one signed-in slave."""

    def __init__(self, slave_id: int, address: str, registry: Any = None):
        self.id = slave_id
        self.address = address
        self.alive = True
        #: Task currently executing on the slave, if any.
        self.busy: Optional[TaskId] = None
        #: Metrics registry receiving master->slave RPC latencies.
        self.registry = registry
        #: Consecutive watchdog ping failures (reset on any success).
        self.ping_failures = 0
        #: Last measured ping round-trip, seconds.
        self.last_rtt: Optional[float] = None

    def client(self):
        """A fresh RPC proxy (ServerProxy is not thread-safe; callers
        hold one per call site)."""
        return rpc_client(
            self.address, timeout=SLAVE_RPC_TIMEOUT, registry=self.registry
        )

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"SlaveRecord({self.id}, {self.address}, {state}, busy={self.busy})"


class MasterBackend(Backend):
    """The Job backend that distributes tasks to slaves over XML-RPC."""

    def __init__(self, program: Any, opts: Any):
        self.program = program
        self.opts = opts
        self._owns_tmpdir = opts.tmpdir is None
        self.tmpdir = opts.tmpdir or tempfile.mkdtemp(prefix="mrs_master_")
        os.makedirs(self.tmpdir, exist_ok=True)
        self.data_plane = getattr(opts, "data_plane", "file") or "file"
        #: --mrs-timeout: default deadline for Job.wait calls.
        self.default_timeout = getattr(opts, "timeout", None)

        self.observability = Observability(role="master")
        self.observability.configure_from_opts(opts)

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.scheduler = Scheduler(
            affinity=not getattr(opts, "no_affinity", False),
            pipeline=getattr(opts, "pipeline", "buckets") != "off",
        )
        #: Watchdog cadence (--mrs-heartbeat-interval; historically 2 s).
        self._ping_interval = resolve_heartbeat_interval(opts, PING_INTERVAL)
        telemetry = self.observability.telemetry
        if telemetry is not None:
            telemetry.set_rundir(self.tmpdir)
            self.scheduler.straggler_scorer = StragglerScorer(
                factor=telemetry.straggler_factor
            )
        #: Mirror of the scheduler's pipelined-dispatch count already
        #: folded into the metrics registry.
        self._pipelined_seen = 0
        self.observability.registry.counter("scheduler.pipelined_dispatches")
        self._slaves: Dict[int, SlaveRecord] = {}
        self._next_slave_id = 1
        self._datasets: Dict[str, BaseDataset] = {}
        self._failures = FailureTracker()
        #: Which slave produced each completed task's output buckets —
        #: the lineage needed to re-execute tasks whose data died with
        #: a slave (http data plane only).
        self._producers: Dict[TaskId, int] = {}
        #: Wall seconds per completed task, per dataset (profiling:
        #: "Profiling has helped to identify real bottlenecks",
        #: section IV-B).
        self._task_seconds: Dict[str, List[float]] = {}
        #: Service mode: job namespace -> (program_spec, program_args)
        #: attached to that job's task descriptors so a shared slave
        #: pool can execute tasks from many programs.
        self._job_programs: Dict[str, Tuple[Optional[str], List[str]]] = {}
        #: Per-job metrics registries (isolated from the server-wide
        #: registry; fed alongside it on every accepted completion).
        self._job_registries: Dict[str, MetricsRegistry] = {}
        self._closed = False

        # Control-plane server (instrumented: every handled RPC is
        # timed into rpc.server.* in the master's registry).
        host = getattr(opts, "host", None) or "127.0.0.1"
        self.rpc = RpcServer(
            MasterInterface(self),
            host=host,
            port=opts.port,
            registry=self.observability.registry,
        )
        logger.info("master listening on %s", self.rpc.address)

        # Master-side data server (for LocalData buckets in http mode).
        self.dataserver: Optional[DataServer] = None
        if self.data_plane == "http":
            self.dataserver = DataServer(self.tmpdir, host=host)

        runfile = getattr(opts, "runfile", None)
        if runfile:
            # Program 3, steps 2-3: the master "writes its port to a
            # file"; slaves wait for the file to appear.
            with open(runfile + ".tmp", "w") as f:
                f.write(self.rpc.address + "\n")
            os.replace(runfile + ".tmp", runfile)

        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="master-watchdog", daemon=True
        )
        self._watchdog.start()

    # ------------------------------------------------------------------
    # Backend interface (called from the program's main thread)
    # ------------------------------------------------------------------

    @property
    def default_splits(self) -> int:
        with self._lock:
            alive = sum(1 for s in self._slaves.values() if s.alive)
        requested = getattr(self.opts, "reduce_tasks", 0)
        return requested or max(1, alive)

    def submit(self, dataset: ComputedData, job: Job) -> None:
        self.observability.note_operation(dataset.id, dataset.operation.kind)
        events = self.observability.events
        if events is not None:
            events.emit(
                "dataset.submitted",
                dataset_id=dataset.id,
                kind=dataset.operation.kind,
                tasks=dataset.ntasks,
            )
        for task_index in dataset.task_indices():
            self.observability.tracer.span(dataset.id, task_index).mark(
                "queued"
            )
            if events is not None:
                events.emit(
                    "task.queued", dataset_id=dataset.id, task_index=task_index
                )
        with self._lock:
            input_dataset = job.get_dataset(dataset.input_id)
            self._datasets[dataset.id] = dataset
            self._datasets.setdefault(input_dataset.id, input_dataset)
            for blocker_id in dataset.blocking_ids:
                self._datasets.setdefault(blocker_id, job.get_dataset(blocker_id))
            # Non-computed inputs (LocalData/FileData) are complete on
            # arrival; tell the scheduler so dependents can activate.
            for dep_id in [dataset.input_id, *dataset.blocking_ids]:
                dep = self._datasets[dep_id]
                if dep.complete and not self.scheduler.is_complete(dep_id):
                    self.scheduler.mark_input_complete(dep_id)
            self.scheduler.add_dataset(
                ScheduledDataset(
                    dataset.id,
                    ntasks=dataset.ntasks,
                    affinity_group=dataset.affinity_group,
                    input_id=dataset.input_id,
                    blocking_ids=dataset.blocking_ids,
                    routing=dataplane.derive_routing(dataset, input_dataset),
                    job_id=getattr(job, "namespace", None),
                )
            )
            self._drain_scheduler()
        self._dispatch()

    def _drain_scheduler(self) -> None:
        """Publish scheduler-side transitions (caller holds the lock):
        zero-task datasets that completed without any task report, and
        pipelined tasks whose input buckets just committed."""
        events = self.observability.events
        for dataset_id in self.scheduler.take_completed_datasets():
            dataset = self._datasets.get(dataset_id)
            if dataset is not None and not dataset.complete:
                dataset.complete = True
                logger.info("dataset %s complete (no tasks)", dataset_id)
                if events is not None:
                    events.emit(
                        "dataset.complete", dataset_id=dataset_id, tasks=0
                    )
        for entry in self.scheduler.take_unblocked():
            dataset_id, task_index = entry["task"]
            if events is not None:
                events.emit(
                    "task.unblocked",
                    dataset_id=dataset_id,
                    task_index=task_index,
                    input_id=entry["input_id"],
                    source=entry["source"],
                    split=entry["split"],
                )
        self._cond.notify_all()

    def wait(
        self,
        datasets: Sequence[BaseDataset],
        job: Job,
        timeout: Optional[float] = None,
    ) -> List[BaseDataset]:
        deadline = None if timeout is None else time.monotonic() + timeout
        self._dispatch()
        with self._cond:
            while True:
                done = [d for d in datasets if d.complete or d.error]
                if done:
                    # Wait semantics: return once at least one target
                    # dataset is finished; report every finished target.
                    if all(d.complete or d.error for d in datasets):
                        return done
                    return done
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return done
                    self._cond.wait(remaining)
                else:
                    self._cond.wait(1.0)

    def progress(self, dataset: BaseDataset) -> float:
        if dataset.complete:
            return 1.0
        with self._lock:
            return self.scheduler.progress(dataset.id)

    def remove_data(self, dataset_id: str, job: Optional[Job] = None) -> None:
        # Ordering matters for spill-file hygiene: first stop any more
        # of this dataset's tasks from running (drop pending work and
        # lineage), then release slave-local copies, and only *then*
        # delete the master-side run directory — deleting it first left
        # a window where an in-flight task re-created the directory
        # with fresh spill files that nothing would ever clean up.
        with self._lock:
            self.scheduler.cancel_dataset(dataset_id)
            # Released datasets are exempt from lineage recovery: their
            # data is gone on purpose and nothing will read it again.
            self._producers = {
                task: producer
                for task, producer in self._producers.items()
                if task[0] != dataset_id
            }
            slaves = [s for s in self._slaves.values() if s.alive]
        for record in slaves:
            try:
                record.client().remove_data(dataset_id)
            except Exception:
                pass  # best-effort cleanup
        shared_dir = os.path.join(self.tmpdir, dataset_id)
        if os.path.isdir(shared_dir):
            shutil.rmtree(shared_dir, ignore_errors=True)

    def _sweep_errored_dirs(self) -> None:
        """Delete run directories of failed/canceled datasets.

        Their contents are unreadable by definition (the dataset will
        never complete), and canceled tasks that were already in flight
        may have spilled buckets after the cancel — without this sweep
        those files outlive the job even in a caller-owned tmpdir.
        User-facing outdirs are never touched.
        """
        with self._lock:
            doomed = [
                ds_id
                for ds_id, dataset in self._datasets.items()
                if dataset.error and not getattr(dataset, "outdir", None)
            ]
        for ds_id in doomed:
            path = os.path.join(self.tmpdir, ds_id)
            if os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slaves = [s for s in self._slaves.values() if s.alive]
        for record in slaves:
            try:
                record.client().quit()
            except Exception:
                pass
        self.rpc.shutdown()
        if self.dataserver is not None:
            self.dataserver.shutdown()
        runfile = getattr(self.opts, "runfile", None)
        if runfile and os.path.exists(runfile):
            try:
                os.unlink(runfile)
            except OSError:
                pass
        if self._owns_tmpdir:
            shutil.rmtree(self.tmpdir, ignore_errors=True)
        else:
            self._sweep_errored_dirs()

    # ------------------------------------------------------------------
    # Slave management (called from RPC handler threads)
    # ------------------------------------------------------------------

    def slave_signin(self, version: int, address: str) -> int:
        if version != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                f"slave protocol version {version} != "
                f"{protocol.PROTOCOL_VERSION}"
            )
        with self._lock:
            slave_id = self._next_slave_id
            self._next_slave_id += 1
            self._slaves[slave_id] = SlaveRecord(
                slave_id, address, registry=self.observability.registry
            )
            self.scheduler.add_slave(slave_id)
            alive = sum(1 for s in self._slaves.values() if s.alive)
            self._cond.notify_all()
        self.observability.registry.counter("slaves.signins").inc()
        self.observability.registry.gauge("slaves.alive").set(alive)
        events = self.observability.events
        if events is not None:
            events.emit("slave.signin", slave=slave_id, address=address)
        logger.info("slave %d signed in from %s", slave_id, address)
        self._dispatch()
        return slave_id

    def wait_for_slaves(
        self, count: int, timeout: Optional[float] = None
    ) -> int:
        """Block until ``count`` slaves have signed in (startup helper).

        ``timeout=None`` resolves --mrs-slave-wait-timeout, then the
        MRS_SLAVE_WAIT_TIMEOUT environment variable, then 30 s.
        """
        if timeout is None:
            timeout = resolve_slave_wait_timeout(self.opts)
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                alive = sum(1 for s in self._slaves.values() if s.alive)
                if alive >= count:
                    # The cluster is ready: this is the paper's "~2 s"
                    # startup quantity, master launch to N slaves ready.
                    self.observability.mark_startup_complete()
                    return alive
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return alive
                self._cond.wait(remaining)

    def alive_slaves(self) -> List[SlaveRecord]:
        with self._lock:
            return [s for s in self._slaves.values() if s.alive]

    # ------------------------------------------------------------------
    # Job scoping (service mode)
    # ------------------------------------------------------------------

    def _namespace_of(self, dataset_id: str) -> Optional[str]:
        """The registered job namespace of a dataset id, if any
        (caller holds the lock)."""
        namespace, sep, _ = dataset_id.partition(".")
        if sep and namespace in self._job_programs:
            return namespace
        return None

    def register_job(
        self,
        namespace: str,
        program_spec: Optional[str] = None,
        program_args: Sequence[str] = (),
    ) -> MetricsRegistry:
        """Declare a job namespace on this backend.

        The program spec rides on every task descriptor of datasets
        under the namespace, so a shared slave pool can execute many
        programs; metrics of those tasks are additionally folded into
        an isolated per-job registry (returned here).
        """
        with self._lock:
            self._job_programs[namespace] = (
                program_spec,
                [str(a) for a in program_args],
            )
            registry = self._job_registries.setdefault(
                namespace, MetricsRegistry()
            )
        events = self.observability.events
        if events is not None:
            events.emit(
                "job.registered", job_id=namespace, program=program_spec
            )
        return registry

    def job_registry(self, namespace: str) -> Optional[MetricsRegistry]:
        with self._lock:
            return self._job_registries.get(namespace)

    def cancel_namespace(
        self, namespace: str, reason: str = "job canceled"
    ) -> List[str]:
        """Fail every incomplete dataset of one job and drop its queued
        tasks — without touching any other job's state.  Waiters on the
        canceled datasets wake with ``dataset.error`` set, so the job's
        driver thread unwinds via the normal error path.  Returns the
        canceled dataset ids.
        """
        prefix = namespace + "."
        with self._lock:
            canceled = []
            for ds_id, dataset in self._datasets.items():
                if not ds_id.startswith(prefix):
                    continue
                if dataset.complete or dataset.error:
                    continue
                dataset.error = reason
                self.scheduler.cancel_dataset(ds_id)
                canceled.append(ds_id)
            self._cond.notify_all()
        events = self.observability.events
        if events is not None:
            events.emit(
                "job.cancel", job_id=namespace, datasets=len(canceled)
            )
        return canceled

    def release_namespace(self, namespace: str) -> int:
        """Release a finished job's intermediate data and bookkeeping.

        Run directories and slave-local copies of every dataset under
        the namespace are removed (user outdirs are untouched), and the
        scheduler/dataset maps forget them so a long-lived server's
        memory does not grow with every job ever run.  The per-job
        metrics registry is kept so the job's final numbers remain
        queryable.  Returns the number of datasets released.
        """
        prefix = namespace + "."
        with self._lock:
            ds_ids = [i for i in self._datasets if i.startswith(prefix)]
        for ds_id in ds_ids:
            self.remove_data(ds_id)
        telemetry = self.observability.telemetry
        with self._lock:
            for ds_id in ds_ids:
                self._datasets.pop(ds_id, None)
                self._task_seconds.pop(ds_id, None)
                self._failures.forget_dataset(ds_id)
                self.scheduler.forget_dataset(ds_id)
                if telemetry is not None:
                    telemetry.skew.forget_dataset(ds_id)
            self._job_programs.pop(namespace, None)
            self.scheduler.job_dispatches.pop(namespace, None)
        return len(ds_ids)

    def job_status(self, namespace: str) -> Dict[str, Any]:
        """A per-job slice of :meth:`status`: only this job's datasets,
        spans, and (isolated) metrics registry."""
        prefix = namespace + "."
        with self._lock:
            datasets = [
                {
                    "id": dataset.id,
                    "complete": bool(dataset.complete),
                    "error": dataset.error,
                    "progress": self.scheduler.progress(dataset.id),
                }
                for ds_id, dataset in self._datasets.items()
                if ds_id.startswith(prefix)
            ]
            registry = self._job_registries.get(namespace)
            snapshot = registry.snapshot() if registry is not None else {}
            dispatched = self.scheduler.job_dispatches.get(namespace, 0)
        view = self.observability.status_view(dataset_prefix=prefix)
        view.update(
            {
                "job_id": namespace,
                "datasets": datasets,
                "metrics": snapshot,
                "dispatched_tasks": dispatched,
            }
        )
        return view

    def status(self) -> Dict[str, Any]:
        """A snapshot of the job for monitoring: slaves, datasets,
        progress, outstanding work.  Exposed over RPC as ``status`` so
        external tools (or a curious user with ``xmlrpc.client``) can
        watch a running master."""
        with self._lock:
            slaves = [
                {
                    "id": record.id,
                    "address": record.address,
                    "alive": record.alive,
                    "busy": list(record.busy) if record.busy else None,
                }
                for record in self._slaves.values()
            ]
            datasets = [
                {
                    "id": dataset.id,
                    "complete": bool(dataset.complete),
                    "error": dataset.error,
                    "progress": self.scheduler.progress(dataset.id),
                }
                for dataset in self._datasets.values()
            ]
            status = self.observability.status_view()
            status.update(
                {
                    "address": self.rpc.address,
                    "data_plane": self.data_plane,
                    "outstanding_tasks": self.scheduler.outstanding(),
                    "slaves": slaves,
                    "datasets": datasets,
                }
            )
            return status

    def telemetry(self) -> Dict[str, Any]:
        """The cluster telemetry snapshot, including the scheduler's
        live straggler candidates (empty when --mrs-telemetry off)."""
        telemetry = self.observability.telemetry
        if telemetry is None:
            return {}
        with self._lock:
            candidates = self.scheduler.straggler_candidates()
            scorer = self.scheduler.straggler_scorer
            flagged = scorer.flagged_total if scorer is not None else 0
        return telemetry.snapshot(
            stragglers=candidates, flagged_total=flagged
        )

    def task_stats(self, dataset_id: str) -> Dict[str, float]:
        """Count/total/mean/max wall seconds of a dataset's tasks."""
        with self._lock:
            samples = list(self._task_seconds.get(dataset_id, ()))
        if not samples:
            return {"count": 0, "total": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": len(samples),
            "total": sum(samples),
            "mean": sum(samples) / len(samples),
            "max": max(samples),
        }

    def task_done(
        self,
        slave_id: int,
        dataset_id: str,
        task_index: int,
        bucket_urls: List[Tuple[int, str]],
        seconds: float = 0.0,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        task: TaskId = (dataset_id, task_index)
        # Accept both (split, url) pairs and (split, url, sorted) triples.
        reported = protocol.parse_bucket_urls(bucket_urls)
        cleanup_dir: Optional[str] = None
        with self._lock:
            record = self._slaves.get(slave_id)
            if record is not None and record.busy == task:
                record.busy = None
            dataset = self._datasets.get(dataset_id)
            if dataset is None or dataset.error:
                # Released or canceled dataset: clear the assignment,
                # but the output is unwanted — a straggler finishing
                # after a cancel/remove_data would otherwise leave
                # fresh spill files in the run dir forever.  User
                # outdirs are never swept.
                self.scheduler.task_done(slave_id, task)
                if dataset is None or not getattr(dataset, "outdir", None):
                    cleanup_dir = os.path.join(self.tmpdir, dataset_id)
                self._cond.notify_all()
            else:
                self._accept_task_done(
                    slave_id, dataset, task, reported, seconds, metrics
                )
        if cleanup_dir is not None and os.path.isdir(cleanup_dir):
            shutil.rmtree(cleanup_dir, ignore_errors=True)
        self._dispatch()

    def _accept_task_done(
        self,
        slave_id: int,
        dataset: BaseDataset,
        task: TaskId,
        reported: List[Tuple[int, str, bool]],
        seconds: float,
        metrics: Optional[Dict[str, Any]],
    ) -> None:
        """Record a live dataset's task completion (caller holds the
        lock)."""
        dataset_id, task_index = task
        # The scheduler rejects stale duplicate reports (e.g. from a
        # slave presumed dead whose tasks were reassigned).
        accepted, dataset_complete = self.scheduler.task_done(slave_id, task)
        if accepted:
            self._producers[task] = slave_id
            self._task_seconds.setdefault(dataset_id, []).append(
                float(seconds)
            )
            for split, url, url_sorted in reported:
                bucket = Bucket(source=task_index, split=split, url=url)
                bucket.url_sorted = url_sorted
                dataset.add_bucket(bucket)
            self._record_task_metrics(
                slave_id, dataset_id, task_index, float(seconds), metrics
            )
        if dataset_complete:
            dataset.complete = True
            logger.info("dataset %s complete", dataset_id)
            events = self.observability.events
            if events is not None:
                events.emit("dataset.complete", dataset_id=dataset_id)
        self._drain_scheduler()
        self._cond.notify_all()

    def _record_task_metrics(
        self,
        slave_id: int,
        dataset_id: str,
        task_index: int,
        seconds: float,
        metrics: Optional[Dict[str, Any]],
    ) -> None:
        """Fold one accepted completion (and its piggybacked slave
        metrics) into the whole-job view.  Caller holds the lock."""
        obs = self.observability
        obs.registry.counter("tasks.completed").inc()
        obs.registry.histogram("task.seconds").observe(seconds)
        span = obs.tracer.span(dataset_id, task_index)
        payload = protocol.parse_task_metrics(metrics)
        namespace = self._namespace_of(dataset_id)
        if namespace is not None:
            job_registry = self._job_registries.get(namespace)
            if job_registry is not None:
                job_registry.counter("tasks.completed").inc()
                job_registry.histogram("task.seconds").observe(seconds)
                job_registry.merge_snapshot(payload["registry"])
        for event, phase_seconds in payload["durations"].items():
            span.add_duration(event, phase_seconds)
            if event in PIGGYBACK_PHASES:
                obs.phases.add(event, phase_seconds)
        obs.merge_remote(payload["registry"], source=f"slave-{slave_id}")
        telemetry = obs.telemetry
        if telemetry is not None:
            telemetry.record_remote(
                f"slave-{slave_id}", payload.get("health")
            )
            if payload["buckets"]:
                telemetry.skew.record_emitted(
                    dataset_id, payload["buckets"]
                )
            counters = payload["registry"].get("counters")
            if isinstance(counters, dict):
                fetched = counters.get("fetch.bytes")
                if fetched:
                    # The reduce side of skew: what this task actually
                    # pulled over the data plane for its input split.
                    telemetry.skew.record_fetched(
                        dataset_id, task_index, fetched
                    )
        span.mark("committed")
        events = obs.events
        if events is not None:
            # Re-anchor the slave's per-task event batch (offsets from
            # its own task start) at this master's dispatch timestamp —
            # the same skew-tolerant model as span.add_duration.
            anchor = span.event_time("started")
            if anchor is not None and payload["events"]:
                events.emit_anchored(
                    payload["events"],
                    anchor,
                    role="slave",
                    dataset_id=dataset_id,
                    task_index=task_index,
                    slave=slave_id,
                )
            events.emit(
                "task.committed",
                dataset_id=dataset_id,
                task_index=task_index,
                slave=slave_id,
                seconds=seconds,
            )

    def task_failed(
        self, slave_id: int, dataset_id: str, task_index: int, message: str
    ) -> None:
        task: TaskId = (dataset_id, task_index)
        logger.warning(
            "task %s failed on slave %d: %s", task, slave_id, message
        )
        self.observability.registry.counter("tasks.failed").inc()
        with self._lock:
            namespace = self._namespace_of(dataset_id)
            if namespace is not None:
                job_registry = self._job_registries.get(namespace)
                if job_registry is not None:
                    job_registry.counter("tasks.failed").inc()
            record = self._slaves.get(slave_id)
            if record is not None and record.busy == task:
                record.busy = None
            # A fetch failure while the input dataset is being
            # re-executed (lineage recovery) is expected, not a strike:
            # requeue without burning the failure budget.
            dataset = self._datasets.get(dataset_id)
            input_dataset = (
                self._datasets.get(getattr(dataset, "input_id", None))
                if dataset is not None
                else None
            )
            free_retry = (
                "FetchError" in message
                and input_dataset is not None
                and not input_dataset.complete
                and not input_dataset.error
            )
            events = self.observability.events
            if events is not None:
                events.emit(
                    "task.failed",
                    dataset_id=dataset_id,
                    task_index=task_index,
                    slave=slave_id,
                    error=message,
                    free_retry=free_retry,
                )
            if free_retry:
                self.scheduler.task_failed(slave_id, task)
            elif self._failures.record(task):
                if dataset is not None and not dataset.error:
                    dataset.error = (
                        f"task {task_index} failed "
                        f"{self._failures.count(task)} times; "
                        f"last: {message}"
                    )
                    # Dependents can never run; fail them too so any
                    # wait() on them returns instead of hanging, and
                    # drop the dataset's remaining queued tasks.
                    propagate_error(self._datasets, dataset_id)
                    # Dependents may hold pre-queued pipelined tasks;
                    # drop those too, they can only waste slaves.
                    for errored_id, errored in self._datasets.items():
                        if errored.error:
                            self.scheduler.cancel_dataset(errored_id)
                    if events is not None:
                        events.emit(
                            "dataset.failed",
                            dataset_id=dataset_id,
                            error=dataset.error,
                        )
            else:
                self.scheduler.task_failed(slave_id, task)
            if events is not None and (
                free_retry or (dataset is not None and not dataset.error)
            ):
                events.emit(
                    "task.requeued",
                    dataset_id=dataset_id,
                    task_index=task_index,
                    failures=self._failures.count(task),
                    free_retry=free_retry,
                )
            self._cond.notify_all()
        self._dispatch()

    def lose_slave(self, slave_id: int, reason: str) -> None:
        with self._lock:
            record = self._slaves.get(slave_id)
            if record is None or not record.alive:
                return
            record.alive = False
            record.busy = None
            reassigned = self.scheduler.remove_slave(slave_id)
            recomputed = 0
            if self.data_plane == "http":
                recomputed = self._recover_lost_data(slave_id)
            alive = sum(1 for s in self._slaves.values() if s.alive)
            self._cond.notify_all()
        self.observability.registry.counter("slaves.lost").inc()
        self.observability.registry.gauge("slaves.alive").set(alive)
        events = self.observability.events
        if events is not None:
            events.emit(
                "slave.lost",
                slave=slave_id,
                reason=reason,
                reassigned=len(reassigned),
                recomputed=recomputed,
            )
        if reassigned or recomputed:
            logger.warning(
                "slave %d lost (%s); reassigning %d tasks, "
                "re-executing %d for lost data",
                slave_id,
                reason,
                len(reassigned),
                recomputed,
            )
        self._dispatch()

    def _recover_lost_data(self, slave_id: int) -> int:
        """Lineage re-execution for the direct (http) data plane.

        Buckets served from a dead slave's data server are gone; any
        completed task that produced them must run again.  Caller
        holds the lock.  (The file data plane needs none of this —
        "storage on a filesystem for increased fault-tolerance",
        section IV-B.)
        """
        by_dataset: Dict[str, List[int]] = {}
        for (dataset_id, task_index), producer in self._producers.items():
            if producer != slave_id:
                continue
            dataset = self._datasets.get(dataset_id)
            if dataset is None:
                continue
            # User-facing output was written to a real filesystem path
            # (outdir), not the slave's ephemeral store.
            if getattr(dataset, "outdir", None):
                continue
            by_dataset.setdefault(dataset_id, []).append(task_index)
        recomputed = 0
        for dataset_id, task_indices in by_dataset.items():
            dataset = self._datasets[dataset_id]
            reset = self.scheduler.reset_tasks(dataset_id, task_indices)
            if reset:
                for task_index in task_indices:
                    dataset.remove_source(task_index)
                    self._producers.pop((dataset_id, task_index), None)
                dataset.complete = False
                # Consumers' queued tasks must not run against partial
                # input while the re-execution is in flight.
                self.scheduler.unmark_complete(dataset_id)
                recomputed += reset
        return recomputed

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        """Hand pending tasks to idle slaves (outside the lock for I/O)."""
        while True:
            to_send: List[Tuple[SlaveRecord, TaskId, Dict[str, Any]]] = []
            with self._lock:
                for record in self._slaves.values():
                    if not record.alive or record.busy is not None:
                        continue
                    task = self.scheduler.next_task(record.id)
                    if task is None:
                        continue
                    descriptor = self._build_descriptor(task)
                    record.busy = task
                    to_send.append((record, task, descriptor))
                pipelined = self.scheduler.pipelined_dispatches
                if pipelined > self._pipelined_seen:
                    self.observability.registry.counter(
                        "scheduler.pipelined_dispatches"
                    ).inc(pipelined - self._pipelined_seen)
                    self._pipelined_seen = pipelined
            if not to_send:
                return
            # First work handed out: the job is effectively started even
            # if the caller never blocked in wait_for_slaves.
            self.observability.mark_startup_complete()
            events = self.observability.events
            for record, task, descriptor in to_send:
                dataset_id, task_index = task
                self.observability.tracer.span(dataset_id, task_index).mark(
                    "started"
                )
                self.observability.registry.counter("tasks.dispatched").inc()
                if events is not None:
                    events.emit(
                        "task.started",
                        dataset_id=dataset_id,
                        task_index=task_index,
                        slave=record.id,
                    )
                try:
                    record.client().start_task(descriptor)
                except Exception as exc:
                    self.lose_slave(record.id, f"start_task failed: {exc}")

    def _build_descriptor(self, task: TaskId) -> Dict[str, Any]:
        """Build the wire descriptor for a task (caller holds the lock)."""
        dataset_id, task_index = task
        dataset = self._datasets[dataset_id]
        assert isinstance(dataset, ComputedData)
        input_dataset = self._datasets[dataset.input_id]
        input_urls = []
        input_sorted = []
        for bucket in input_dataset.buckets_for_split(task_index):
            if bucket.url is None:
                self._spill_bucket(input_dataset, bucket)
            input_urls.append(bucket.url)
            input_sorted.append(bucket.url_sorted)
        user_output = dataset.outdir is not None
        if user_output:
            outdir: Optional[str] = dataset.outdir
            ext = dataset.format_ext or "txt"
        elif self.data_plane == "file":
            outdir = os.path.join(self.tmpdir, dataset.id)
            ext = dataset.format_ext or "mrsb"
        else:
            outdir = None  # slave-local + HTTP
            ext = dataset.format_ext or "mrsb"
        program_spec: Optional[str] = None
        program_args: Optional[List[str]] = None
        namespace = self._namespace_of(dataset.id)
        if namespace is not None:
            program_spec, program_args = self._job_programs[namespace]
        return protocol.make_task_descriptor(
            program_spec=program_spec,
            program_args=program_args,
            dataset_id=dataset.id,
            task_index=task_index,
            op_dict=dataset.operation.to_dict(),
            input_urls=input_urls,
            outdir=outdir,
            format_ext=ext,
            user_output=user_output,
            key_serializer=dataset.key_serializer,
            value_serializer=dataset.value_serializer,
            input_key_serializer=getattr(input_dataset, "key_serializer", None),
            input_value_serializer=getattr(
                input_dataset, "value_serializer", None
            ),
            input_sorted=input_sorted,
        )

    def _spill_bucket(self, dataset: BaseDataset, bucket: Bucket) -> None:
        """Write a master-resident bucket to the data plane so slaves
        can read it (LocalData pairs live only in master memory)."""
        path = dataplane.spill_bucket(dataset, bucket, self.tmpdir)
        if self.data_plane == "http" and self.dataserver is not None:
            bucket.url = self.dataserver.url_for(path)
        else:
            bucket.url = "file:" + path
        events = self.observability.events
        if events is not None:
            events.emit(
                "spill.bucket",
                dataset_id=dataset.id,
                split=bucket.split,
                url=bucket.url,
            )

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        while not self._closed:
            time.sleep(self._ping_interval)
            if self._closed:
                return
            with self._lock:
                records = [s for s in self._slaves.values() if s.alive]
            events = self.observability.events
            if events is not None:
                events.emit("heartbeat", alive=len(records))
            telemetry = self.observability.telemetry
            for record in records:
                if self._closed:
                    return
                started = time.perf_counter()
                try:
                    result = record.client().ping()
                except Exception as exc:
                    # 3-strike budget: a single transient timeout must
                    # not lose a healthy slave (mirrors the slave side's
                    # MASTER_PING_FAILURES policy).
                    record.ping_failures += 1
                    if record.ping_failures >= PING_FAILURES:
                        self.lose_slave(
                            record.id,
                            f"ping failed {record.ping_failures} "
                            f"consecutive times: {exc}",
                        )
                    else:
                        logger.warning(
                            "slave %d ping failure %d/%d: %s",
                            record.id,
                            record.ping_failures,
                            PING_FAILURES,
                            exc,
                        )
                    continue
                rtt = time.perf_counter() - started
                record.ping_failures = 0
                record.last_rtt = rtt
                if telemetry is not None:
                    # Slaves with telemetry on answer pings with a
                    # throttled health sample instead of bare True.
                    health = result if isinstance(result, dict) else None
                    telemetry.record_remote(
                        f"slave-{record.id}", health, rtt_seconds=rtt
                    )
            self._poll_stragglers()

    def _poll_stragglers(self) -> None:
        """Emit ``task.straggler`` events for tasks newly over the
        threshold (telemetry on; piggybacks on the watchdog cadence)."""
        if self.observability.telemetry is None:
            return
        with self._lock:
            candidates = self.scheduler.straggler_candidates()
        events = self.observability.events
        if events is None:
            return
        for cand in candidates:
            if cand.get("first_flag"):
                events.emit(
                    "task.straggler",
                    dataset_id=cand["dataset_id"],
                    task_index=cand["task_index"],
                    slave=cand["slave"],
                    elapsed_seconds=cand["elapsed_seconds"],
                    median_seconds=cand["median_seconds"],
                    ratio=cand["ratio"],
                )


class MasterInterface:
    """RPC surface exposed to slaves (``rpc_`` prefix is stripped)."""

    def __init__(self, backend: MasterBackend):
        self.backend = backend

    def rpc_signin(self, version: int, slave_host: str, slave_port: int) -> int:
        address = format_address(slave_host, slave_port)
        return self.backend.slave_signin(version, address)

    def rpc_done(
        self,
        slave_id: int,
        dataset_id: str,
        task_index: int,
        bucket_urls: Any,
        seconds: float = 0.0,
        metrics: Any = None,
    ) -> bool:
        urls = protocol.parse_bucket_urls(bucket_urls)
        self.backend.task_done(
            slave_id, dataset_id, task_index, urls, seconds, metrics
        )
        return True

    def rpc_failed(
        self, slave_id: int, dataset_id: str, task_index: int, message: str
    ) -> bool:
        self.backend.task_failed(slave_id, dataset_id, task_index, message)
        return True

    def rpc_ping(self, slave_id: int = 0) -> bool:
        return True

    def rpc_status(self) -> Dict[str, Any]:
        return self.backend.status()
