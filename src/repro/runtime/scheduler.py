"""Task scheduler with iteration affinity (section IV-A).

"The task scheduler in Mrs also attempts to assign corresponding tasks
to the same processor from one iteration to the next, which reduces
communication between nodes and latency between iterations."

The scheduler is a pure data structure (no I/O, no threads) so its
policies are unit-testable: the master drives it under its own lock.

Model
-----
* A *dataset* becomes **runnable** when its input dataset (and any
  extra blockers) are complete; it then expands into one task per
  input split.
* A *task* is ``(dataset_id, task_index)``; it is pending, assigned to
  a slave, or done.
* Affinity: when a task completes on a slave, the scheduler remembers
  ``(affinity_group, task_index) -> slave``.  Future tasks with the
  same key prefer that slave.  Iterative programs get this for free
  because every iteration's datasets share an affinity group.

Bucket-granular pipelining
--------------------------
Dependencies are tracked at *bucket* granularity, not just dataset
granularity.  Every completed task of a scheduled dataset records a
**source commit**: source ``i``'s output buckets are durable and their
URLs published.  When a producer has *identity routing* (its task ``i``
writes only split ``i`` — true for a reduce that re-partitions with the
same partition function and split count as its input, because a reduce
emits each group's key unchanged), a consumer task ``j`` reads exactly
the producer's source-``j`` bucket plus structurally empty ones.  Such
consumer tasks are queued as soon as the consumer is submitted and
become *eligible* the moment source ``j`` commits — even while sibling
producer tasks are still running.  Dense (all-to-all) edges keep the
classic dataset barrier.

Lineage recovery revokes commits with the same precision:
``reset_tasks`` removes exactly the reset sources' commits, so a
revoked producer re-blocks exactly its consumers' corresponding tasks
and nothing else.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

TaskId = Tuple[str, int]

#: Producer task ``i`` writes only split ``i`` (diagonal bucket grid);
#: consumer task ``j`` depends on source ``j`` alone.
ROUTING_IDENTITY = "identity"


class TaskState:
    PENDING = "pending"
    ASSIGNED = "assigned"
    DONE = "done"


class ScheduledDataset:
    """Scheduler-side bookkeeping for one computed dataset."""

    def __init__(
        self,
        dataset_id: str,
        ntasks: int,
        affinity_group: str,
        input_id: str,
        blocking_ids: Sequence[str] = (),
        routing: Optional[str] = None,
        job_id: Optional[str] = None,
    ):
        self.id = dataset_id
        self.ntasks = ntasks
        self.affinity_group = affinity_group
        self.input_id = input_id
        self.blocking_ids = set(blocking_ids)
        #: Job this dataset belongs to (service mode).  ``next_task``
        #: round-robins across distinct job ids so one large job cannot
        #: starve the others; ``None`` (the single-job case) is its own
        #: bucket and degenerates to the classic FIFO behaviour.
        self.job_id = job_id
        #: How this dataset's output buckets route to consumers:
        #: ``None`` (dense — any consumer task may read any source) or
        #: :data:`ROUTING_IDENTITY`.
        self.routing = routing
        self.task_state: Dict[int, str] = {}
        self.runnable = False
        #: Tasks were queued ahead of activation (pipelined consumer).
        self.prequeued = False
        #: Source indices whose output buckets are durable.  A source
        #: commits when its task completes and is revoked when lineage
        #: recovery resets that task.
        self.committed: Set[int] = set()

    @property
    def done_count(self) -> int:
        return sum(
            1 for state in self.task_state.values() if state == TaskState.DONE
        )

    @property
    def complete(self) -> bool:
        return self.runnable and self.done_count == self.ntasks


class Scheduler:
    """Affinity-aware FIFO task scheduler."""

    def __init__(self, affinity: bool = True, pipeline: bool = True):
        self.affinity_enabled = affinity
        #: Bucket-granular pipelining: dispatch a consumer task as soon
        #: as its specific input buckets are committed, instead of
        #: waiting for the whole input dataset (``--mrs-pipeline``).
        self.pipeline_enabled = pipeline
        self._datasets: Dict[str, ScheduledDataset] = {}
        #: Insertion order of datasets — FIFO across datasets keeps
        #: early operations flowing first.
        self._order: List[str] = []
        self._order_rank: Dict[str, int] = {}
        self._pending: List[TaskId] = []
        self._assigned: Dict[TaskId, int] = {}
        self._slave_tasks: Dict[int, Set[TaskId]] = {}
        self._affinity: Dict[Tuple[str, int], int] = {}
        #: Completed input datasets (including non-computed ones the
        #: master marks complete directly).
        self._complete_ids: Set[str] = set()
        #: dataset id -> scheduled datasets that read it as input.
        self._consumers: Dict[str, List[str]] = {}
        #: Tasks dispatched before their input dataset completed.
        self.pipelined_dispatches = 0
        #: Fair-share rotation pointer: the job id served by the most
        #: recent ``next_task`` pick.
        self._last_job: Optional[str] = None
        #: Dispatch counts per job id (fairness introspection).
        self.job_dispatches: Dict[Optional[str], int] = {}
        #: Drain queues for the driving backend (under its lock):
        #: datasets that completed without any task running (ntasks=0)
        #: and tasks whose eligibility just flipped on a bucket commit.
        self._completed_datasets: List[str] = []
        self._unblocked: List[Dict[str, Any]] = []
        #: Straggler scorer (telemetry plane): set by the backend when
        #: ``--mrs-telemetry`` is on; the scheduler feeds it assignment
        #: and completion timings under the backend's lock.  None costs
        #: one attribute check per transition.
        self.straggler_scorer: Optional[Any] = None

    # -- dataset lifecycle ------------------------------------------------

    def add_dataset(self, sched: ScheduledDataset) -> None:
        if sched.id in self._datasets:
            raise ValueError(f"dataset {sched.id} already scheduled")
        self._datasets[sched.id] = sched
        self._order_rank[sched.id] = len(self._order)
        self._order.append(sched.id)
        self._consumers.setdefault(sched.input_id, []).append(sched.id)
        if not self._maybe_activate(sched) and self._pipelinable(sched):
            # The input is an identity-routing producer: queue every
            # task now so each becomes dispatchable the moment its own
            # source bucket commits.
            sched.prequeued = True
            for task_index in range(sched.ntasks):
                sched.task_state[task_index] = TaskState.PENDING
                self._insert_pending((sched.id, task_index))

    def _pipelinable(self, sched: ScheduledDataset) -> bool:
        if not self.pipeline_enabled:
            return False
        producer = self._datasets.get(sched.input_id)
        return producer is not None and producer.routing == ROUTING_IDENTITY

    def mark_input_complete(self, dataset_id: str) -> List[str]:
        """Record that ``dataset_id`` is complete; activate dependents.

        Returns the ids of datasets that just became runnable.
        """
        self._complete_ids.add(dataset_id)
        activated = []
        for ds_id in list(self._order):
            sched = self._datasets[ds_id]
            if not sched.runnable and self._maybe_activate(sched):
                activated.append(ds_id)
        return activated

    def _maybe_activate(self, sched: ScheduledDataset) -> bool:
        if sched.runnable:
            return False
        deps = {sched.input_id} | sched.blocking_ids
        if not deps <= self._complete_ids:
            return False
        sched.runnable = True
        if not sched.prequeued:
            for task_index in range(sched.ntasks):
                sched.task_state[task_index] = TaskState.PENDING
                self._insert_pending((sched.id, task_index))
        if sched.ntasks == 0:
            # A zero-task dataset is complete the instant it activates;
            # nothing will ever call task_done for it, so completion
            # must propagate here or its dependents stall forever.
            self._completed_datasets.append(sched.id)
            self.mark_input_complete(sched.id)
        return True

    def is_complete(self, dataset_id: str) -> bool:
        return dataset_id in self._complete_ids

    def unmark_complete(self, dataset_id: str) -> None:
        """Revoke a dataset's completeness (lineage recovery): its
        consumers' pending tasks become ineligible until the data is
        re-executed and the dataset completes again."""
        self._complete_ids.discard(dataset_id)

    def take_completed_datasets(self) -> List[str]:
        """Drain datasets that completed without running any task
        (``ntasks == 0``) so the backend can mark them complete and
        wake waiters."""
        drained = self._completed_datasets
        self._completed_datasets = []
        return drained

    def take_unblocked(self) -> List[Dict[str, Any]]:
        """Drain pipelined eligibility flips: each entry names the task
        that just became dispatchable and the bucket that enabled it."""
        drained = self._unblocked
        self._unblocked = []
        return drained

    # -- slaves ------------------------------------------------------------

    def add_slave(self, slave_id: int) -> None:
        self._slave_tasks.setdefault(slave_id, set())

    def remove_slave(self, slave_id: int) -> List[TaskId]:
        """Drop a slave; its assigned tasks return to pending.

        Returns the reassigned task ids.
        """
        tasks = sorted(self._slave_tasks.pop(slave_id, set()))
        for task in tasks:
            self._assigned.pop(task, None)
            dataset_id, task_index = task
            if self.straggler_scorer is not None:
                self.straggler_scorer.task_abandoned(dataset_id, task_index)
            sched = self._datasets.get(dataset_id)
            if sched is not None and sched.task_state.get(task_index) == (
                TaskState.ASSIGNED
            ):
                sched.task_state[task_index] = TaskState.PENDING
                self._insert_pending(task)
        # Affinity entries pointing at the dead slave are stale.
        self._affinity = {
            key: slave
            for key, slave in self._affinity.items()
            if slave != slave_id
        }
        return tasks

    def known_slaves(self) -> List[int]:
        return sorted(self._slave_tasks)

    # -- assignment ----------------------------------------------------------

    def _insert_pending(self, task: TaskId) -> None:
        """Queue a task at its FIFO position.

        ``_pending`` is kept sorted by (dataset insertion order, task
        index) so requeued tasks — slave loss, failure retry, lineage
        re-execution — rejoin *ahead* of later iterations' work instead
        of starving the dependency frontier at the tail of the queue.
        """
        rank = (self._order_rank.get(task[0], len(self._order)), task[1])
        lo, hi = 0, len(self._pending)
        while lo < hi:
            mid = (lo + hi) // 2
            queued = self._pending[mid]
            queued_rank = (
                self._order_rank.get(queued[0], len(self._order)),
                queued[1],
            )
            if queued_rank <= rank:
                lo = mid + 1
            else:
                hi = mid
        self._pending.insert(lo, task)

    def _task_eligible(self, task: TaskId) -> bool:
        """A task may run once the buckets it reads are durable.

        Dataset granularity: the input (and any blockers) are complete.
        Bucket granularity: with pipelining on and an identity-routing
        producer, task ``j`` needs only producer source ``j`` committed.
        Lineage recovery can *revoke* either level while consumers are
        already queued — dispatching one then would silently compute
        over partial input.
        """
        sched = self._datasets[task[0]]
        if not sched.blocking_ids <= self._complete_ids:
            return False
        if sched.input_id in self._complete_ids:
            return True
        if not self.pipeline_enabled:
            return False
        producer = self._datasets.get(sched.input_id)
        return (
            producer is not None
            and producer.routing == ROUTING_IDENTITY
            and task[1] in producer.committed
        )

    def next_task(self, slave_id: int) -> Optional[TaskId]:
        """Pick a pending *eligible* task for ``slave_id``.

        Two policies compose here:

        * **Fair share across jobs** — one scan collects, per job id,
          the first eligible task (FIFO within the job) and the first
          affinity-matching eligible task; the job to serve is then
          chosen round-robin after the last-served job.  With a single
          job (all ``job_id`` equal) this is exactly the classic scan.
        * **Affinity within the chosen job** — the affinity hit wins
          over plain FIFO position, as before.
        """
        if slave_id not in self._slave_tasks:
            raise KeyError(f"unknown slave {slave_id}")
        first_eligible: Dict[Optional[str], int] = {}
        affinity_hits: Dict[Optional[str], int] = {}
        for index, (dataset_id, task_index) in enumerate(self._pending):
            sched = self._datasets[dataset_id]
            job = sched.job_id
            if job in first_eligible and (
                not self.affinity_enabled or job in affinity_hits
            ):
                continue  # nothing more to learn about this job
            if not self._task_eligible((dataset_id, task_index)):
                continue
            if job not in first_eligible:
                first_eligible[job] = index
            if self.affinity_enabled and job not in affinity_hits:
                key = (sched.affinity_group, task_index)
                if self._affinity.get(key) == slave_id:
                    affinity_hits[job] = index
        if not first_eligible:
            return None
        job = self._pick_job(first_eligible)
        choice_index = affinity_hits.get(job, first_eligible[job])
        task = self._pending.pop(choice_index)
        dataset_id, task_index = task
        self._last_job = job
        self.job_dispatches[job] = self.job_dispatches.get(job, 0) + 1
        self._datasets[dataset_id].task_state[task_index] = TaskState.ASSIGNED
        self._assigned[task] = slave_id
        self._slave_tasks[slave_id].add(task)
        if dataset_id in self._datasets and (
            self._datasets[dataset_id].input_id not in self._complete_ids
        ):
            self.pipelined_dispatches += 1
        if self.straggler_scorer is not None:
            self.straggler_scorer.task_started(
                dataset_id, task_index, slave_id
            )
        return task

    def _pick_job(self, candidates: Dict[Optional[str], Any]) -> Optional[str]:
        """Round-robin job choice: the first candidate strictly after
        the last-served job in a deterministic cyclic order (``None``
        sorts first)."""
        jobs = sorted(candidates, key=lambda j: (j is not None, j or ""))
        if len(jobs) == 1 or self._last_job is None:
            return jobs[0]
        last_key = (self._last_job is not None, self._last_job or "")
        for job in jobs:
            if (job is not None, job or "") > last_key:
                return job
        return jobs[0]

    def has_pending(self) -> bool:
        return bool(self._pending)

    def assigned_slave(self, task: TaskId) -> Optional[int]:
        return self._assigned.get(task)

    # -- completion ------------------------------------------------------------

    def task_done(self, slave_id: int, task: TaskId) -> Tuple[bool, bool]:
        """Record task completion.

        Returns ``(accepted, dataset_complete)``.  Stale reports (task
        already done or reassigned elsewhere) are rejected — a slave
        that was presumed dead may still deliver a result after its
        tasks were given away.
        """
        dataset_id, task_index = task
        sched = self._datasets.get(dataset_id)
        if sched is None:
            return False, False
        if self._assigned.get(task) != slave_id:
            return False, False
        if sched.task_state.get(task_index) != TaskState.ASSIGNED:
            return False, False
        sched.task_state[task_index] = TaskState.DONE
        del self._assigned[task]
        self._slave_tasks[slave_id].discard(task)
        if self.straggler_scorer is not None:
            self.straggler_scorer.task_finished(dataset_id, task_index)
        if self.affinity_enabled:
            self._affinity[(sched.affinity_group, task_index)] = slave_id
        # The producing task is known and its bucket bytes are durable
        # by the time the backend reports done: commit the source.
        sched.committed.add(task_index)
        if sched.complete:
            self.mark_input_complete(dataset_id)
            return True, True
        self._note_unblocked(sched, task_index)
        return True, False

    def _note_unblocked(self, sched: ScheduledDataset, source: int) -> None:
        """Record consumer tasks whose eligibility just flipped because
        ``sched`` committed ``source`` (the dataset itself is still
        incomplete, so this is a genuinely pipelined unblock)."""
        if not self.pipeline_enabled or sched.routing != ROUTING_IDENTITY:
            return
        for consumer_id in self._consumers.get(sched.id, ()):
            consumer = self._datasets[consumer_id]
            if consumer.task_state.get(source) != TaskState.PENDING:
                continue
            if self._task_eligible((consumer_id, source)):
                self._unblocked.append(
                    {
                        "task": (consumer_id, source),
                        "input_id": sched.id,
                        "source": source,
                        "split": source,
                    }
                )

    def reset_tasks(self, dataset_id: str, task_indices) -> int:
        """Return completed tasks to the pending queue (lineage
        re-execution: their output data was lost with a dead slave).

        Tasks currently assigned are left alone — if they were assigned
        to the dead slave, :meth:`remove_slave` already requeued them.
        Revokes the reset sources' bucket commits, so pipelined
        consumers of exactly those sources re-block until the data is
        recomputed.  Returns the number of tasks reset.
        """
        sched = self._datasets.get(dataset_id)
        if sched is None:
            return 0
        count = 0
        for task_index in task_indices:
            # The bucket is gone whether or not the task re-runs here.
            sched.committed.discard(task_index)
            if sched.task_state.get(task_index) == TaskState.DONE:
                sched.task_state[task_index] = TaskState.PENDING
                self._insert_pending((dataset_id, task_index))
                count += 1
        return count

    def cancel_dataset(self, dataset_id: str) -> int:
        """Drop every pending task of a permanently failed dataset.

        Once a dataset is marked failed, its remaining queued tasks can
        only waste workers (and, for crash-inducing tasks, kill them
        again); remove them from the pending queue.  Tasks already
        assigned are left to finish or fail on their own.  Returns the
        number of tasks dropped.
        """
        before = len(self._pending)
        self._pending = [task for task in self._pending if task[0] != dataset_id]
        return before - len(self._pending)

    def forget_dataset(self, dataset_id: str) -> None:
        """Drop every trace of a dataset (service mode: a finished
        job's datasets are released so a long-lived scheduler's state
        does not grow with every job ever run).  Any still-assigned
        task is abandoned — a late completion report for it is then
        rejected as stale by :meth:`task_done`.
        """
        sched = self._datasets.pop(dataset_id, None)
        if sched is None:
            return
        if self.straggler_scorer is not None:
            self.straggler_scorer.forget_dataset(dataset_id)
        # _order keeps its other entries' ranks stable: the rank map is
        # per-id, not positional, so removal never renumbers.
        if dataset_id in self._order:
            self._order.remove(dataset_id)
        self._order_rank.pop(dataset_id, None)
        self._pending = [t for t in self._pending if t[0] != dataset_id]
        for task in [t for t in self._assigned if t[0] == dataset_id]:
            slave = self._assigned.pop(task)
            self._slave_tasks.get(slave, set()).discard(task)
        self._complete_ids.discard(dataset_id)
        self._consumers.pop(dataset_id, None)
        consumers = self._consumers.get(sched.input_id)
        if consumers and dataset_id in consumers:
            consumers.remove(dataset_id)
        # Affinity hints keyed by this dataset's group are only shared
        # within its own job; releasing the whole job drops them all.
        self._affinity = {
            key: slave
            for key, slave in self._affinity.items()
            if key[0] != sched.affinity_group
        }

    def task_failed(self, slave_id: int, task: TaskId) -> None:
        """Return a failed task to the pending queue (retried elsewhere)."""
        dataset_id, task_index = task
        sched = self._datasets.get(dataset_id)
        if sched is None:
            return
        if self._assigned.get(task) != slave_id:
            return
        del self._assigned[task]
        self._slave_tasks[slave_id].discard(task)
        if self.straggler_scorer is not None:
            self.straggler_scorer.task_abandoned(dataset_id, task_index)
        sched.task_state[task_index] = TaskState.PENDING
        self._insert_pending(task)
        # Affinity must not steer the retry straight back to the slave
        # the task just failed on.
        key = (sched.affinity_group, task_index)
        if self._affinity.get(key) == slave_id:
            del self._affinity[key]

    # -- introspection ------------------------------------------------------------

    def progress(self, dataset_id: str) -> float:
        sched = self._datasets.get(dataset_id)
        if sched is None:
            return 1.0 if dataset_id in self._complete_ids else 0.0
        if sched.ntasks == 0:
            return 1.0 if sched.runnable else 0.0
        return sched.done_count / sched.ntasks

    def affinity_slave(self, group: str, task_index: int) -> Optional[int]:
        return self._affinity.get((group, task_index))

    def outstanding(self) -> int:
        """Tasks pending or assigned across all runnable datasets."""
        return len(self._pending) + len(self._assigned)

    def straggler_candidates(self) -> List[Dict[str, Any]]:
        """Running tasks over the straggler threshold (telemetry plane),
        most severe first; empty when no scorer is attached.  This is
        the API speculative execution consumes to pick re-launch
        victims."""
        if self.straggler_scorer is None:
            return []
        return self.straggler_scorer.candidates()
