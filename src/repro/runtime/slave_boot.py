"""Boot a slave process for a program class given as ``module:Class``.

In the paper's deployments, slaves are started by re-running the same
program script with ``--mrs slave`` (Program 3's pssh/PBS loop).  For
programmatic cluster launches (tests, benchmarks, examples) we instead
spawn::

    python -m repro.runtime.slave_boot repro.apps.wordcount:WordCount \
        --mrs slave --mrs-master 127.0.0.1:40123 [program args...]

which imports the class and enters the standard ``main`` dispatcher.
"""

from __future__ import annotations

import importlib
import sys
from typing import Any


def resolve_program(spec: str) -> Any:
    """Resolve a ``package.module:ClassName`` spec to the class."""
    if ":" not in spec:
        raise ValueError(f"program spec must be module:Class, got {spec!r}")
    module_name, class_name = spec.split(":", 1)
    module = importlib.import_module(module_name)
    try:
        return getattr(module, class_name)
    except AttributeError:
        raise ImportError(
            f"module {module_name!r} has no class {class_name!r}"
        ) from None


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    program_class = resolve_program(argv[0])

    from repro.core.main import main as mrs_main

    return mrs_main(program_class, argv[1:])


if __name__ == "__main__":
    sys.exit(main())
