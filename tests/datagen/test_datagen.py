"""Synthetic corpus and Zipf vocabulary."""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.random_streams import numpy_stream
from repro.datagen.corpus import (
    CorpusSpec,
    corpus_file_list,
    count_dirs,
    document_lengths,
    flat_path,
    generate_corpus,
    gutenberg_path,
)
from repro.datagen.zipf import ZipfVocabulary, synthetic_word, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(100).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50)
        assert (np.diff(weights) < 0).all()

    def test_zipf_ratio(self):
        weights = zipf_weights(10, exponent=1.0)
        assert weights[0] / weights[1] == pytest.approx(2.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, exponent=0)


class TestSyntheticWords:
    def test_first_words(self):
        assert [synthetic_word(i) for i in range(3)] == ["a", "b", "c"]

    def test_rollover(self):
        assert synthetic_word(26) == "aa"

    def test_unique(self):
        words = [synthetic_word(i) for i in range(2000)]
        assert len(set(words)) == 2000


class TestVocabulary:
    def test_sampling_deterministic(self):
        vocab = ZipfVocabulary(100)
        a = vocab.sample_words(20, numpy_stream(1))
        b = vocab.sample_words(20, numpy_stream(1))
        assert a == b

    def test_head_words_dominate(self):
        vocab = ZipfVocabulary(1000, exponent=1.1)
        indices = vocab.sample_indices(20_000, numpy_stream(2))
        top_ten_share = (indices < 10).mean()
        assert top_ten_share > 0.25

    def test_text_token_count(self):
        vocab = ZipfVocabulary(50)
        text = vocab.text(37, numpy_stream(3))
        assert len(text.split()) == 37

    def test_empty_text(self):
        assert ZipfVocabulary(10).text(0, numpy_stream(4)) == ""


class TestPaths:
    def test_gutenberg_digit_tree(self):
        assert gutenberg_path("/r", 1234) == "/r/1/2/3/1234/1234.txt"

    def test_single_digit_under_zero(self):
        assert gutenberg_path("/r", 7) == "/r/0/7/7.txt"

    def test_flat(self):
        assert flat_path("/r", 42) == "/r/42.txt"


class TestGenerateCorpus:
    def test_file_count_and_listing(self, tmp_path):
        spec = CorpusSpec(n_files=20, mean_words_per_file=50, seed=2)
        paths = generate_corpus(str(tmp_path / "c"), spec)
        assert len(paths) == 20
        assert corpus_file_list(str(tmp_path / "c")) == sorted(paths)

    def test_gutenberg_layout_many_dirs(self, tmp_path):
        spec = CorpusSpec(n_files=30, mean_words_per_file=20, seed=1)
        generate_corpus(str(tmp_path / "g"), spec)
        assert count_dirs(str(tmp_path / "g")) > 30  # one dir per book + tree

    def test_flat_layout_single_dir(self, tmp_path):
        spec = CorpusSpec(n_files=30, mean_words_per_file=20, seed=1,
                          layout="flat")
        generate_corpus(str(tmp_path / "f"), spec)
        assert count_dirs(str(tmp_path / "f")) == 1

    def test_deterministic_bytes(self, tmp_path):
        spec = CorpusSpec(n_files=5, mean_words_per_file=100, seed=7)
        a = generate_corpus(str(tmp_path / "a"), spec)
        b = generate_corpus(str(tmp_path / "b"), spec)
        for pa, pb in zip(a, b):
            assert open(pa, "rb").read() == open(pb, "rb").read()

    def test_layout_change_keeps_content(self, tmp_path):
        base = dict(n_files=5, mean_words_per_file=60, seed=3)
        g = generate_corpus(str(tmp_path / "g"), CorpusSpec(**base))
        f = generate_corpus(
            str(tmp_path / "f"), CorpusSpec(layout="flat", **base)
        )
        assert [open(p).read() for p in g] == [open(p).read() for p in f]

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            CorpusSpec(n_files=0)
        with pytest.raises(ValueError):
            CorpusSpec(layout="spiral")

    def test_document_lengths_positive(self):
        spec = CorpusSpec(n_files=100, mean_words_per_file=500, sigma=1.0)
        lengths = document_lengths(spec, numpy_stream(5))
        assert (lengths >= 1).all()
        assert 100 <= lengths.mean() <= 2500  # log-normal around the mean

    def test_constant_lengths_when_sigma_zero(self):
        spec = CorpusSpec(n_files=10, mean_words_per_file=100, sigma=0.0)
        lengths = document_lengths(spec, numpy_stream(6))
        assert (lengths == 100).all()


@given(st.integers(min_value=1, max_value=5000))
@settings(max_examples=50)
def test_synthetic_word_bijective(index):
    word = synthetic_word(index)
    assert word.isalpha() and word.islower()
