"""Command-line entry points."""

import os

import pytest

from repro.datagen.__main__ import main as datagen_main
from repro.hadoopsim.__main__ import main as hadoopsim_main


class TestDatagenCli:
    def test_generates_corpus(self, tmp_path, capsys):
        outdir = str(tmp_path / "c")
        status = datagen_main(
            [outdir, "--files", "10", "--mean-words", "50", "--seed", "4"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "10 files" in out
        assert os.path.isdir(outdir)

    def test_flat_layout(self, tmp_path, capsys):
        outdir = str(tmp_path / "f")
        datagen_main([outdir, "--files", "5", "--layout", "flat",
                      "--mean-words", "20"])
        assert "in 1 directories" in capsys.readouterr().out

    def test_requires_outdir(self):
        with pytest.raises(SystemExit):
            datagen_main([])


class TestHadoopsimCli:
    def test_overhead(self, capsys):
        assert hadoopsim_main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "30" in out

    def test_job(self, capsys):
        status = hadoopsim_main(
            ["job", "--maps", "8", "--map-seconds", "2",
             "--reduces", "2", "--reduce-seconds", "1"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "map_phase" in out

    def test_enumerate_matches_model(self, capsys):
        hadoopsim_main(["enumerate", "--files", "31173"])
        out = capsys.readouterr().out
        assert "min" in out
        # the paper's nine-minute number
        minutes = float(out.split("(")[1].split(" min")[0])
        assert 8 <= minutes <= 11

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            hadoopsim_main([])
