"""HadoopJob facade: modeled runs, real-execution parity."""

import pytest

from repro.apps.wordcount import WordCountCombined, count_words_serially
from repro.core.main import run_program
from repro.core.options import default_options
from repro.hadoopsim import HadoopCluster, HadoopJob
from repro.hadoopsim.costmodel import HadoopCostModel


class TestRunModeled:
    def test_scalar_durations_expand(self):
        result = HadoopJob().run_modeled(
            map_seconds=1.0, n_map_tasks=4, reduce_seconds=0.5, n_reduce_tasks=2
        )
        assert result.n_map_tasks == 4
        assert result.n_reduce_tasks == 2

    def test_scalar_requires_count(self):
        with pytest.raises(ValueError):
            HadoopJob().run_modeled(map_seconds=1.0)

    def test_per_job_overhead_is_paper_floor(self):
        assert 28.0 <= HadoopJob().per_job_overhead() <= 36.0

    def test_compute_dominates_at_scale(self):
        """Fig 3 right side: for long tasks, total ≈ compute."""
        job = HadoopJob(HadoopCluster(n_nodes=4, map_slots_per_node=2))
        result = job.run_modeled(
            map_seconds=300.0, n_map_tasks=8, reduce_seconds=0.0,
            n_reduce_tasks=1,
        )
        assert result.modeled_seconds >= 300.0
        assert result.modeled_seconds <= 300.0 + 60.0

    def test_startup_seconds_property(self):
        result = HadoopJob().run_modeled(
            map_seconds=0.0, n_map_tasks=1, enumeration_seconds=120.0
        )
        assert result.startup_seconds >= 120.0


class TestRunProgram:
    def test_output_parity_with_mrs_serial(self, small_corpus, tmp_path):
        """The simulator executes real user code: its WordCount output
        must equal the Mrs serial run and the plain Counter."""
        root, paths = small_corpus
        program = WordCountCombined(default_options(), [])
        result = HadoopJob().run_program(
            program, paths, n_reduce_tasks=2, combiner=program.combine
        )
        hadoop_counts = dict(result.pairs)

        mrs_prog = run_program(
            WordCountCombined, [root, str(tmp_path / "out")], impl="serial"
        )
        mrs_counts = dict(mrs_prog.output_data.iterdata())
        assert hadoop_counts == mrs_counts

        lines = []
        for path in paths:
            lines.extend(open(path).read().splitlines())
        assert hadoop_counts == count_words_serially(lines)

    def test_enumeration_reflects_tree_shape(self, small_corpus):
        root, paths = small_corpus
        program = WordCountCombined(default_options(), [])
        result = HadoopJob().run_program(program, paths)
        assert result.breakdown.get("input_enumeration") > 0

    def test_one_map_task_per_file(self, small_corpus):
        _, paths = small_corpus
        program = WordCountCombined(default_options(), [])
        result = HadoopJob().run_program(program, paths)
        assert result.n_map_tasks == len(paths)

    def test_parity_timings_recorded(self, small_corpus):
        _, paths = small_corpus
        program = WordCountCombined(default_options(), [])
        result = HadoopJob().run_program(program, paths)
        assert len(result.parity.map_seconds) == len(paths)
        assert all(s >= 0 for s in result.parity.map_seconds)


class TestClusterConfig:
    def test_defaults_match_paper_cluster(self):
        cluster = HadoopCluster()
        assert cluster.n_nodes == 21

    def test_slot_totals(self):
        cluster = HadoopCluster(n_nodes=3, map_slots_per_node=4,
                                reduce_slots_per_node=2)
        assert cluster.total_map_slots == 12
        assert cluster.total_reduce_slots == 6

    def test_model_overrides(self):
        model = HadoopCostModel().with_overrides(heartbeat_interval=1.0)
        fast = HadoopJob(HadoopCluster(model=model)).per_job_overhead()
        slow = HadoopJob().per_job_overhead()
        assert fast < slow

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ValueError):
            HadoopCluster(n_nodes=0)
