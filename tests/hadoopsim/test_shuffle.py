"""Shuffle/sort cost model."""

import pytest

from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.shuffle import (
    estimate_record_bytes,
    map_side_sort_seconds,
    reduce_side_shuffle_seconds,
    spread_evenly,
)


@pytest.fixture
def model():
    return HadoopCostModel()


class TestSortCost:
    def test_zero_bytes_free(self, model):
        assert map_side_sort_seconds(model, 0) == 0.0
        assert map_side_sort_seconds(model, -5) == 0.0

    def test_linear_in_bytes(self, model):
        one = map_side_sort_seconds(model, 1e6)
        ten = map_side_sort_seconds(model, 1e7)
        assert ten == pytest.approx(10 * one)

    def test_rate_matches_model(self, model):
        assert map_side_sort_seconds(model, model.sort_rate) == pytest.approx(1.0)


class TestShuffleCost:
    def test_share_divided_among_reducers(self, model):
        one = reduce_side_shuffle_seconds(model, 1e8, 1)
        four = reduce_side_shuffle_seconds(model, 1e8, 4)
        assert one == pytest.approx(4 * four)

    def test_degenerate_inputs(self, model):
        assert reduce_side_shuffle_seconds(model, 0, 4) == 0.0
        assert reduce_side_shuffle_seconds(model, 1e6, 0) == 0.0


class TestHelpers:
    def test_record_bytes_default(self):
        assert estimate_record_bytes(1000) == 20_000.0

    def test_spread_evenly(self):
        assert spread_evenly(10.0, 4) == [2.5] * 4
        assert spread_evenly(10.0, 0) == []


class TestEndToEndEffect:
    def test_data_heavy_job_pays_shuffle(self, model):
        """WordCount-scale intermediate data visibly lengthens the
        reduce phase relative to a compute-only job."""
        from repro.hadoopsim import HadoopCluster, HadoopJob

        job = HadoopJob(HadoopCluster(model=model))
        shuffle = reduce_side_shuffle_seconds(model, 2e9, 4)
        heavy = job.run_modeled(
            map_seconds=1.0, n_map_tasks=8,
            reduce_seconds=shuffle, n_reduce_tasks=4,
        )
        light = job.run_modeled(
            map_seconds=1.0, n_map_tasks=8,
            reduce_seconds=0.0, n_reduce_tasks=4,
        )
        assert heavy.modeled_seconds > light.modeled_seconds + shuffle / 2
