"""Virtual clock and event ordering."""

import pytest

from repro.hadoopsim.clock import VirtualClock


class TestVirtualClock:
    def test_events_fire_in_time_order(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(2.0, lambda: fired.append("late"))
        clock.schedule(1.0, lambda: fired.append("early"))
        clock.run_until_idle()
        assert fired == ["early", "late"]
        assert clock.now == 2.0

    def test_ties_fire_in_insertion_order(self):
        clock = VirtualClock()
        fired = []
        for name in ("a", "b", "c"):
            clock.schedule(1.0, lambda n=name: fired.append(n))
        clock.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_events_can_schedule_events(self):
        clock = VirtualClock()
        fired = []

        def recurse(depth):
            fired.append(clock.now)
            if depth:
                clock.schedule(1.5, lambda: recurse(depth - 1))

        clock.schedule(0.0, lambda: recurse(3))
        clock.run_until_idle()
        assert fired == [0.0, 1.5, 3.0, 4.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        clock = VirtualClock()
        clock.schedule(1.0, lambda: None)
        clock.run_until_idle()
        with pytest.raises(ValueError):
            clock.schedule_at(0.5, lambda: None)

    def test_runaway_guard(self):
        clock = VirtualClock()

        def forever():
            clock.schedule(1.0, forever)

        clock.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            clock.run_until_idle(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert VirtualClock().step() is False

    def test_pending_count(self):
        clock = VirtualClock()
        clock.schedule(1, lambda: None)
        assert clock.pending == 1
