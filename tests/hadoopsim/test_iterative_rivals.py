"""Related-work iterative-framework cost models (section II)."""

import pytest

from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.iterative_rivals import (
    HaLoopModel,
    TwisterModel,
    hadoop_per_iteration_overhead,
    overhead_ladder,
)


class TestOverheadLadder:
    def test_ordering_matches_related_work_narrative(self):
        """Hadoop >> HaLoop > Twister: each design strips more
        per-iteration machinery."""
        ladder = dict((name.split()[0], s) for name, s in overhead_ladder())
        assert ladder["Hadoop"] > 4 * ladder["HaLoop"]
        assert ladder["HaLoop"] > ladder["Twister"]

    def test_hadoop_matches_calibrated_floor(self):
        assert 28.0 <= hadoop_per_iteration_overhead() <= 36.0

    def test_haloop_keeps_heartbeat_costs(self):
        overhead = HaLoopModel().per_iteration_overhead()
        heartbeat = HadoopCostModel().heartbeat_interval
        assert overhead >= 2 * heartbeat  # dispatch + report waves
        assert overhead < 15.0

    def test_haloop_scales_with_task_waves(self):
        small = HaLoopModel().per_iteration_overhead(n_tasks=1)
        large = HaLoopModel().per_iteration_overhead(n_tasks=1000)
        assert large > small

    def test_twister_sub_second(self):
        assert TwisterModel().per_iteration_overhead() < 1.0

    def test_twister_failure_rework(self):
        model = TwisterModel(checkpoint_interval_iterations=50)
        assert model.expected_rework_on_failure(49) == 49
        assert model.expected_rework_on_failure(50) == 0
        assert model.expected_rework_on_failure(75) == 25
