"""Mini-HDFS namespace, block placement, enumeration costs."""

import pytest

from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.hdfs import HDFSError, MiniHDFS


@pytest.fixture
def hdfs():
    return MiniHDFS(n_datanodes=4, block_size=100, replication=3)


class TestNamespace:
    def test_put_creates_parents(self, hdfs):
        hdfs.put("/a/b/c/file.txt", 10)
        assert hdfs.is_dir("/a/b/c")
        assert hdfs.exists("/a/b/c/file.txt")
        assert hdfs.size_of("/a/b/c/file.txt") == 10

    def test_listdir_sorted(self, hdfs):
        hdfs.put("/d/z.txt", 1)
        hdfs.put("/d/a.txt", 1)
        assert hdfs.listdir("/d") == ["a.txt", "z.txt"]

    def test_file_vs_dir_conflicts(self, hdfs):
        hdfs.put("/x/file", 1)
        with pytest.raises(HDFSError):
            hdfs.mkdirs("/x/file/sub")
        with pytest.raises(HDFSError):
            hdfs.put("/x", 1)

    def test_missing_paths_raise(self, hdfs):
        with pytest.raises(HDFSError):
            hdfs.listdir("/ghost")
        with pytest.raises(HDFSError):
            hdfs.size_of("/ghost.txt")

    def test_walk_files_depth_first_sorted(self, hdfs):
        for path in ("/w/2/b.txt", "/w/1/a.txt", "/w/top.txt"):
            hdfs.put(path, 1)
        assert list(hdfs.walk_files("/w")) == [
            "/w/1/a.txt",
            "/w/2/b.txt",
            "/w/top.txt",
        ]

    def test_count_tree(self, hdfs):
        hdfs.put("/t/x/1.txt", 1)
        hdfs.put("/t/y/2.txt", 1)
        n_files, n_dirs = hdfs.count_tree("/t")
        assert n_files == 2
        assert n_dirs == 3  # /t, /t/x, /t/y


class TestBlocks:
    def test_block_count_follows_size(self, hdfs):
        hdfs.put("/big.bin", 250)  # block_size=100 -> 3 blocks
        assert len(hdfs.block_locations("/big.bin")) == 3

    def test_replication_capped_by_datanodes(self):
        small = MiniHDFS(n_datanodes=2, replication=3)
        small.put("/f", 10)
        locations = small.block_locations("/f")
        assert all(len(set(replicas)) == 2 for replicas in locations)

    def test_replicas_distinct(self, hdfs):
        hdfs.put("/f", 10)
        for replicas in hdfs.block_locations("/f"):
            assert len(set(replicas)) == len(replicas)

    def test_write_cost_accumulates(self, hdfs):
        before = hdfs.modeled_seconds
        hdfs.put("/data.bin", 10_000_000)
        assert hdfs.modeled_seconds > before


class TestEnumeration:
    def test_one_split_per_block(self, hdfs):
        hdfs.put("/in/one.txt", 250)
        splits, _ = hdfs.enumerate_splits(["/in"])
        assert len(splits) == 3
        assert sum(size for _, size in splits) == 250

    def test_small_files_one_split_each(self, hdfs):
        for i in range(5):
            hdfs.put(f"/in/{i}/{i}.txt", 10)
        splits, _ = hdfs.enumerate_splits(["/in"])
        assert len(splits) == 5

    def test_gutenberg_scale_costs_match_paper(self):
        """The calibration targets: ~9 min for 31,173 nested files,
        ~1 min for the 8,316-file subset (section V-B)."""
        model = HadoopCostModel()
        full = model.listing_seconds(31_173, 31_173)
        subset = model.listing_seconds(8_316, 8_316)
        assert 8 * 60 <= full <= 11 * 60
        assert 40 <= subset <= 120

    def test_enumeration_superlinear_in_files(self):
        model = HadoopCostModel()
        small = model.listing_seconds(1000)
        big = model.listing_seconds(10_000)
        assert big > 10 * small  # superlinear namenode pressure

    def test_missing_input_raises(self, hdfs):
        with pytest.raises(HDFSError):
            hdfs.enumerate_splits(["/ghost"])
