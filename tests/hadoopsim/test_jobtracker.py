"""Discrete-event JobTracker: phase ordering, heartbeat scaling."""

import pytest

from repro.hadoopsim.clock import VirtualClock
from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.jobtracker import JobTrackerSim
from repro.hadoopsim.tasktracker import SimTaskTracker


def run_sim(n_trackers=4, map_slots=2, reduce_slots=2, model=None, **job_kw):
    model = model or HadoopCostModel()
    trackers = [
        SimTaskTracker(i, map_slots=map_slots, reduce_slots=reduce_slots)
        for i in range(n_trackers)
    ]
    sim = JobTrackerSim(trackers, model, VirtualClock())
    breakdown = sim.run_job(**job_kw)
    return sim, breakdown


class TestLifecycle:
    def test_phases_in_order(self):
        sim, _ = run_sim(map_durations=[1.0, 1.0], reduce_durations=[1.0])
        t = sim.timeline
        assert (
            t["job_arrival"]
            < t["setup_done"]
            < t["maps_done"]
            < t["reduces_done"]
            < t["cleanup_done"]
            <= t["client_notice"]
        )

    def test_empty_job_matches_paper_floor(self):
        """'Hadoop takes at least 30 seconds for each MapReduce
        operation' — the calibrated floor of the default model."""
        sim, breakdown = run_sim(map_durations=[0.0], reduce_durations=[0.0])
        assert 28.0 <= breakdown.total <= 36.0

    def test_map_only_job(self):
        sim, breakdown = run_sim(map_durations=[1.0], reduce_durations=[])
        # The empty reduce phase is skipped when the next heartbeat is
        # processed — within one heartbeat interval of maps finishing.
        lag = sim.timeline["reduces_done"] - sim.timeline["maps_done"]
        assert 0.0 <= lag <= HadoopCostModel().heartbeat_interval
        assert breakdown.get("reduce_phase") <= HadoopCostModel().heartbeat_interval

    def test_breakdown_sums_to_client_notice(self):
        sim, breakdown = run_sim(
            map_durations=[2.0] * 5, reduce_durations=[1.0]
        )
        assert breakdown.total == pytest.approx(sim.timeline["client_notice"])

    def test_enumeration_charged(self):
        _, with_enum = run_sim(
            map_durations=[0.0], reduce_durations=[], enumeration_seconds=100.0
        )
        _, without = run_sim(map_durations=[0.0], reduce_durations=[])
        assert with_enum.total >= without.total + 100.0 - 5.0  # poll rounding


class TestHeartbeatScaling:
    def test_assignment_latency_grows_with_task_count(self):
        """With stock 0.20 behaviour (one task per tracker per
        heartbeat) many tasks on few trackers serialize on the 3 s
        heartbeat."""
        classic = HadoopCostModel(tasks_per_heartbeat=1)
        _, few_tasks = run_sim(
            n_trackers=2, map_slots=8, model=classic,
            map_durations=[0.1] * 2, reduce_durations=[],
        )
        _, many_tasks = run_sim(
            n_trackers=2, map_slots=8, model=classic,
            map_durations=[0.1] * 24, reduce_durations=[],
        )
        # 22 extra tasks / 2 trackers = 11 extra heartbeat rounds ≈ 33 s.
        assert many_tasks.total >= few_tasks.total + 25.0

    def test_multiple_assignment_shrinks_wave_latency(self):
        """MAPREDUCE-318-style multiple assignment reduces the
        per-wave heartbeat serialization."""
        classic = HadoopCostModel(tasks_per_heartbeat=1)
        batched = HadoopCostModel(tasks_per_heartbeat=4)
        _, slow = run_sim(
            n_trackers=2, map_slots=8, model=classic,
            map_durations=[0.1] * 24, reduce_durations=[],
        )
        _, fast = run_sim(
            n_trackers=2, map_slots=8, model=batched,
            map_durations=[0.1] * 24, reduce_durations=[],
        )
        assert fast.total < slow.total

    def test_more_trackers_shrink_map_phase(self):
        _, small = run_sim(
            n_trackers=2, map_durations=[5.0] * 16, reduce_durations=[]
        )
        _, large = run_sim(
            n_trackers=16, map_durations=[5.0] * 16, reduce_durations=[]
        )
        assert large.get("map_phase") < small.get("map_phase")

    def test_slots_limit_concurrency(self):
        _, one_slot = run_sim(
            n_trackers=1, map_slots=1,
            map_durations=[10.0] * 4, reduce_durations=[],
        )
        _, four_slots = run_sim(
            n_trackers=1, map_slots=4,
            map_durations=[10.0] * 4, reduce_durations=[],
        )
        assert one_slot.get("map_phase") > four_slots.get("map_phase")


class TestSlotAccounting:
    def test_acquire_release(self):
        tracker = SimTaskTracker(0, map_slots=1, reduce_slots=1)
        assert tracker.acquire(True)
        assert not tracker.acquire(True)
        tracker.release(True)
        assert tracker.acquire(True)

    def test_double_release_detected(self):
        tracker = SimTaskTracker(0)
        with pytest.raises(RuntimeError):
            tracker.release(True)

    def test_reduce_slots_independent(self):
        tracker = SimTaskTracker(0, map_slots=1, reduce_slots=1)
        assert tracker.acquire(True)
        assert tracker.acquire(False)

    def test_invalid_slot_counts_rejected(self):
        with pytest.raises(ValueError):
            SimTaskTracker(0, map_slots=0)

    def test_no_trackers_rejected(self):
        with pytest.raises(ValueError):
            JobTrackerSim([], HadoopCostModel())
