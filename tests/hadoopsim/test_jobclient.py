"""Startup-script models (Programs 3 and 4, experiment E2)."""

from repro.hadoopsim.costmodel import HadoopCostModel
from repro.hadoopsim.hdfs import MiniHDFS
from repro.hadoopsim.jobclient import (
    compare_startup_scripts,
    hadoop_shared_cluster_startup,
    hadoop_shared_cluster_teardown,
    mrs_shared_cluster_startup,
)


class TestMrsStartup:
    def test_four_steps(self):
        """Program 3 'has four basic parts'."""
        report = mrs_shared_cluster_startup()
        assert report.step_count == 4

    def test_total_near_two_seconds(self):
        """Paper: Mrs startup 'is about 2 seconds'."""
        total = mrs_shared_cluster_startup().total
        assert 1.0 <= total <= 4.0


class TestHadoopStartup:
    def test_more_steps_than_mrs(self):
        reports = compare_startup_scripts(n_input_files=10)
        assert reports["hadoop"].step_count > reports["mrs"].step_count

    def test_includes_hdfs_format_and_daemons(self):
        hdfs = MiniHDFS()
        report = hadoop_shared_cluster_startup(hdfs, [("/in/a.txt", 100)])
        names = [step.name for step in report.steps]
        assert "format_namenode" in names
        assert "start_datanodes_tasktrackers" in names
        assert "copy_data_into_hdfs" in names

    def test_copy_cost_scales_with_corpus(self):
        small = compare_startup_scripts(n_input_files=10)["hadoop"].total
        large = compare_startup_scripts(n_input_files=1000)["hadoop"].total
        assert large > small

    def test_teardown_includes_daemon_stop(self):
        report = hadoop_shared_cluster_teardown(output_bytes=1e6)
        names = [step.name for step in report.steps]
        assert "stop_daemons" in names
        assert "copy_data_out_of_hdfs" in names

    def test_order_of_magnitude_gap(self):
        """Even before the MapReduce job itself, per-job Hadoop
        infrastructure costs ~10-20x Mrs's startup."""
        reports = compare_startup_scripts(n_input_files=0)
        assert reports["hadoop"].total >= 10 * reports["mrs"].total
