"""Shared fixtures for the test suite."""

import os

import pytest

from repro.datagen import CorpusSpec, generate_corpus


@pytest.fixture
def text_file(tmp_path):
    """A small multi-line text file."""
    path = tmp_path / "input.txt"
    path.write_text(
        "the quick brown fox\n"
        "jumps over the lazy dog\n"
        "the dog sleeps\n"
    )
    return str(path)


@pytest.fixture
def out_dir(tmp_path):
    return str(tmp_path / "out")


@pytest.fixture
def small_corpus(tmp_path):
    """A 12-file gutenberg-layout synthetic corpus."""
    root = str(tmp_path / "corpus")
    spec = CorpusSpec(n_files=12, mean_words_per_file=120, seed=1)
    paths = generate_corpus(root, spec)
    return root, paths


def pair_dict(pairs):
    """Collect (k, v) pairs into a dict, asserting unique keys."""
    out = {}
    for key, value in pairs:
        assert key not in out, f"duplicate key {key!r}"
        out[key] = value
    return out
