"""Programs used by integration tests (importable by slave_boot)."""

import time

import repro as mrs


class FailingMap(mrs.MapReduce):
    """Map that always raises — exercises task-failure propagation."""

    def map(self, key, value):
        raise ValueError("injected failure")

    def reduce(self, key, values):
        yield sum(values)

    def run(self, job):
        source = job.local_data([(i, i) for i in range(4)], splits=2)
        mapped = job.map_data(source, self.map, splits=2)
        reduced = job.reduce_data(mapped, self.reduce, splits=1)
        job.wait(reduced, timeout=60)
        self.output_data = reduced
        return 0


class FlakyOnce(mrs.MapReduce):
    """Map that fails on the first attempt of task 0 (per process).

    Because the retry lands on a *different* slave (or a fresh
    attempt), the job still completes — exercising the retry path
    rather than the permanent-failure path.
    """

    attempts = 0

    def map(self, key, value):
        if key == 0:
            type(self).attempts += 1
            if type(self).attempts == 1:
                raise RuntimeError("flaky first attempt")
        yield (key % 2, value)

    def reduce(self, key, values):
        yield sum(values)

    def run(self, job):
        source = job.local_data([(i, 1) for i in range(6)], splits=3)
        mapped = job.map_data(source, self.map, splits=2)
        reduced = job.reduce_data(mapped, self.reduce, splits=1)
        job.wait(reduced, timeout=60)
        self.output_data = reduced
        return 0


class SummingProgram(mrs.MapReduce):
    """Simple two-stage program driven manually by recovery tests."""

    def map(self, key, value):
        yield (key % 2, value)

    def reduce(self, key, values):
        yield sum(values)


class ModSumProgram(mrs.MapReduce):
    """Iterative-shaped program whose reduce keeps its input's
    partitioner and split count — the identity-routing shape the
    pipelined scheduler overlaps across iterations.  ``map`` increments
    every value so each pass is observable in the output."""

    def mod4(self, key, n):
        return int(key) % n

    def map(self, key, value):
        yield (key, value + 1)

    def reduce(self, key, values):
        yield sum(values)


class SlowCount(mrs.MapReduce):
    """Word count whose map dawdles — gives cancel/fairness tests a
    window while the job is genuinely running."""

    #: Seconds each map task sleeps before emitting.
    delay = 0.3

    def map(self, key, value):
        time.sleep(self.delay)
        for word in str(value).split():
            yield (word, 1)

    def reduce(self, key, values):
        yield sum(values)

    def run(self, job):
        source = job.local_data(
            [(i, "tick tock") for i in range(16)], splits=8
        )
        mapped = job.map_data(source, self.map, splits=2)
        reduced = job.reduce_data(
            mapped, self.reduce, splits=1,
            outdir=self.output_dir, format="txt",
        )
        job.wait(reduced, timeout=120)
        self.output_data = reduced
        return 0


class TypedWordCount(mrs.MapReduce):
    """WordCount whose datasets declare str/int typed serializers —
    slaves must honour the codec names from task descriptors."""

    def map(self, key, value):
        for word in value.split():
            yield (word, 1)

    def reduce(self, key, values):
        yield sum(values)

    def run(self, job):
        source = self.input_data(job)
        intermediate = job.map_data(
            source, self.map, splits=2,
            key_serializer="str", value_serializer="int",
        )
        output = job.reduce_data(
            intermediate, self.reduce, splits=2,
            outdir=self.output_dir, format="txt",
        )
        job.wait(output)
        self.output_data = output
        return 0
