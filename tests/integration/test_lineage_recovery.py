"""Lineage re-execution on the direct (http) data plane.

With ``--mrs-data-plane http``, intermediate buckets live on the
producing slave's local disk and die with it.  The master must detect
the loss, re-run the producing tasks on surviving slaves, and let
dependent tasks retry their fetches for free — the whole job still
completes with the right answer.
"""

import time

import pytest

from repro.core.job import Job
from repro.runtime.cluster import LocalCluster
from tests.integration.programs import SummingProgram

pytestmark = pytest.mark.integration


def wait_until(predicate, timeout=15.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestHttpPlaneLineageRecovery:
    def test_completed_data_lost_with_slave_is_recomputed(self):
        cluster = LocalCluster(
            SummingProgram, [], n_slaves=2, data_plane="http"
        )
        cluster.start()
        try:
            backend = cluster.backend
            job = Job(backend, cluster.program)
            source = job.local_data([(i, i) for i in range(8)], splits=4)
            mapped = job.map_data(source, cluster.program.map, splits=2)
            job.wait(mapped, timeout=60)
            assert mapped.complete
            # The map output lives on the slaves' http data servers.
            urls = [b.url for b in mapped.existing_buckets()]
            assert all(url.startswith("http://") for url in urls)

            # Kill one slave: roughly half the map output evaporates.
            cluster.kill_slave(0)
            assert wait_until(
                lambda: len(backend.alive_slaves()) == 1
            ), "watchdog must notice the dead slave"
            assert wait_until(
                lambda: mapped.complete,
                timeout=30,
            ), "lost map tasks must be re-executed on the survivor"

            # Downstream consumption now works and is correct:
            # sum over i in 0..7 split by parity: even 0+2+4+6=12,
            # odd 1+3+5+7=16.
            reduced = job.reduce_data(mapped, cluster.program.reduce, splits=1)
            done = job.wait(reduced, timeout=60)
            assert reduced in done and reduced.complete
            assert dict(reduced.data()) == {0: 12, 1: 16}
        finally:
            cluster.stop()

    def test_consumer_in_flight_during_loss_still_completes(self):
        """Queue the reduce *before* killing the slave: its tasks will
        fetch-fail against dead URLs, which must not burn the failure
        budget while the input is being re-executed."""
        cluster = LocalCluster(
            SummingProgram, [], n_slaves=2, data_plane="http"
        )
        cluster.start()
        try:
            backend = cluster.backend
            job = Job(backend, cluster.program)
            source = job.local_data([(i, 1) for i in range(8)], splits=4)
            mapped = job.map_data(source, cluster.program.map, splits=2)
            job.wait(mapped, timeout=60)
            cluster.kill_slave(1)
            # Immediately queue the consumer; the master may hand its
            # tasks out before recovery finishes.
            reduced = job.reduce_data(mapped, cluster.program.reduce, splits=1)
            done = job.wait(reduced, timeout=90)
            assert reduced in done
            assert reduced.error is None, reduced.error
            assert dict(reduced.data()) == {0: 4, 1: 4}
        finally:
            cluster.stop()

    def test_file_plane_unaffected_by_slave_death(self, tmp_path):
        """Control: on the shared-filesystem plane the same scenario
        needs no recovery at all (paper: 'increased fault-tolerance')."""
        cluster = LocalCluster(SummingProgram, [], n_slaves=2)
        cluster.start()
        try:
            job = Job(cluster.backend, cluster.program)
            source = job.local_data([(i, i) for i in range(8)], splits=4)
            mapped = job.map_data(source, cluster.program.map, splits=2)
            job.wait(mapped, timeout=60)
            cluster.kill_slave(0)
            reduced = job.reduce_data(mapped, cluster.program.reduce, splits=1)
            job.wait(reduced, timeout=60)
            assert dict(reduced.data()) == {0: 12, 1: 16}
        finally:
            cluster.stop()
