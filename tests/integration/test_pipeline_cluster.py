"""Bucket-granular pipelining on the master/slave runtime.

Two acceptance scenarios from the scheduler rework:

* zero-task datasets (an empty input split set) complete and unblock
  their dependents instead of stalling the job forever;
* killing a slave mid-iteration revokes bucket commits at task
  granularity — only the dead slave's tasks (and hence only their
  consumers) re-run, while work produced by survivors is never
  re-executed.
"""

import time

import pytest

from repro.core.job import Job
from repro.runtime.cluster import LocalCluster
from repro.runtime.scheduler import ROUTING_IDENTITY
from tests.integration.programs import ModSumProgram, SummingProgram

pytestmark = pytest.mark.integration


def wait_until(predicate, timeout=15.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestZeroTaskDatasetsOnCluster:
    def test_dependent_of_empty_dataset_completes(self):
        cluster = LocalCluster(SummingProgram, [], n_slaves=1)
        cluster.start()
        try:
            job = Job(cluster.backend, cluster.program)
            empty = job.local_data([], splits=0)
            mapped = job.map_data(empty, cluster.program.map, splits=2)
            assert mapped.ntasks == 0
            reduced = job.reduce_data(mapped, cluster.program.reduce, splits=1)
            done = job.wait(reduced, timeout=60)
            assert reduced in done
            assert reduced.error is None, reduced.error
            assert reduced.complete, "dependent of empty dataset stalled"
            assert reduced.data() == []
        finally:
            cluster.stop()


class TestPipelinedLineageRecovery:
    def test_kill_slave_mid_iteration_reruns_only_revoked_consumers(self):
        cluster = LocalCluster(
            ModSumProgram, [], n_slaves=2, data_plane="http"
        )
        cluster.start()
        try:
            backend = cluster.backend
            program = cluster.program
            events = backend.observability.enable_events(unbounded=True)
            job = Job(backend, program)

            source = job.local_data(
                [(i, 1) for i in range(8)], splits=4, parter=program.mod4
            )
            mapped = job.map_data(
                source, program.map, splits=4, parter=program.mod4
            )
            reduced = job.reduce_data(
                mapped, program.reduce, splits=4, parter=program.mod4
            )
            # The reduce keeps its input's partitioner and split count
            # and is square, so the scheduler derives identity routing:
            # consumers of ``reduced`` depend on single source buckets.
            assert (
                backend.scheduler._datasets[reduced.id].routing
                == ROUTING_IDENTITY
            )

            # Submit the next iteration while this one is still in
            # flight (the pipelined edge), then kill a slave.
            mapped2 = job.map_data(
                reduced, program.map, splits=4, parter=program.mod4
            )
            before = set(backend.alive_slaves())
            cluster.kill_slave(0)
            assert wait_until(
                lambda: len(backend.alive_slaves()) == 1, timeout=30
            ), "watchdog must notice the dead slave"
            killed = (before - set(backend.alive_slaves())).pop()

            reduced2 = job.reduce_data(mapped2, program.reduce, splits=1)
            done = job.wait(reduced2, timeout=120)
            assert reduced2 in done
            assert reduced2.error is None, reduced2.error
            # Two map passes, each incrementing by 1: (i, 1) -> 3.
            assert dict(reduced2.data()) == {i: 3 for i in range(8)}

            # Let lineage re-execution quiesce, then check precision:
            # a reduced task first produced by the *survivor* must
            # never have re-run.  Only the dead slave's commits were
            # revoked, so only their consumers saw re-execution.
            assert wait_until(
                lambda: backend.scheduler.outstanding() == 0, timeout=60
            ), "recovery never quiesced"
            commits = {}
            for event in events.snapshot():
                if event["name"] != "task.committed":
                    continue
                fields = event["fields"]
                if fields["dataset_id"] == reduced.id:
                    commits.setdefault(fields["task_index"], []).append(
                        fields["slave"]
                    )
            assert set(commits) == set(range(4)), "missing reduce commits"
            for task_index, producers in sorted(commits.items()):
                if producers[0] != killed:
                    assert len(producers) == 1, (
                        f"reduce task {task_index} was produced by a "
                        f"surviving slave but re-ran: {producers}"
                    )
        finally:
            cluster.stop()
