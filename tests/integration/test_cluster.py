"""Distributed master/slave integration: real subprocesses, real RPC.

These tests spawn actual slave processes over localhost XML-RPC,
covering the paper's master/slave implementation leg of the
cross-implementation equivalence invariant, both data planes, the
runfile handshake (Program 3's startup protocol), and failure
injection (slave death mid-job).
"""

import os
import time

import pytest

from repro.apps.pi.estimator import PiEstimator
from repro.apps.pso.mrpso import ApiaryPSO
from repro.apps.wordcount import WordCountCombined, output_counts
from repro.core.main import run_program
from repro.runtime.cluster import ClusterError, LocalCluster, program_spec

pytestmark = pytest.mark.integration


@pytest.fixture
def corpus_args(small_corpus, tmp_path):
    root, _ = small_corpus
    return [root, str(tmp_path / "out")]


class TestWordCountDistributed:
    @pytest.mark.parametrize("plane", ["file", "http"])
    def test_matches_serial(self, small_corpus, tmp_path, plane):
        root, _ = small_corpus
        serial = run_program(
            WordCountCombined, [root, str(tmp_path / "s")], impl="serial"
        )
        with LocalCluster(
            WordCountCombined,
            [root, str(tmp_path / plane)],
            n_slaves=2,
            data_plane=plane,
        ) as cluster:
            distributed = cluster.run()
        assert output_counts(distributed) == output_counts(serial)

    def test_output_files_written(self, small_corpus, tmp_path):
        root, _ = small_corpus
        out = str(tmp_path / "out")
        with LocalCluster(WordCountCombined, [root, out], n_slaves=2) as c:
            c.run()
        visible = [f for f in os.listdir(out) if not f.startswith(".")]
        assert visible and all(f.endswith(".txt") for f in visible)


class TestTransferPlaneDistributed:
    def test_fetch_counters_reach_master_metrics(self, small_corpus, tmp_path):
        """With the http data plane, reduce inputs are fetched through
        the transfer plane; the slaves' per-task fetch counters must
        ride the piggyback snapshots into the master's merged report."""
        root, _ = small_corpus
        with LocalCluster(
            WordCountCombined,
            [root, str(tmp_path / "out")],
            n_slaves=2,
            data_plane="http",
        ) as cluster:
            program = cluster.run()
        counters = program.metrics_report["metrics"]["counters"]
        assert counters.get("fetch.requests", 0) > 0
        assert counters.get("fetch.bytes", 0) > 0
        assert "fetch.connections.created" in counters


class TestPiDistributed:
    def test_matches_serial_exactly(self, tmp_path):
        flags = ["--pi-samples", "40000", "--pi-tasks", "6"]
        serial = run_program(PiEstimator, flags, impl="serial")
        with LocalCluster(PiEstimator, flags, n_slaves=2) as cluster:
            distributed = cluster.run()
        assert distributed.pi_estimate == serial.pi_estimate


class TestPsoDistributed:
    def test_stochastic_equivalence(self):
        flags = [
            "--mrs-seed", "17", "--pso-function", "sphere", "--pso-dims", "6",
            "--pso-subswarms", "3", "--pso-particles", "4",
            "--pso-inner", "3", "--pso-outer", "5",
        ]
        serial = run_program(ApiaryPSO, flags, impl="serial")
        with LocalCluster(ApiaryPSO, flags, n_slaves=2) as cluster:
            distributed = cluster.run()
        assert [tuple(r) for r in distributed.convergence] != []
        assert [
            (r.iteration, r.evals, r.best) for r in distributed.convergence
        ] == [(r.iteration, r.evals, r.best) for r in serial.convergence]


class TestFailureInjection:
    def test_slave_death_mid_job_recovers(self, tmp_path):
        """Kill one of three slaves mid-run; the watchdog reassigns its
        tasks and the job still completes with the right answer
        (file data plane: intermediate data survives the death)."""
        flags = ["--pi-samples", "120000", "--pi-tasks", "12"]
        serial = run_program(PiEstimator, flags, impl="serial")
        cluster = LocalCluster(PiEstimator, flags, n_slaves=3)
        cluster.start()
        try:
            cluster.kill_slave(0)
            program = cluster.run()
        finally:
            cluster.stop()
        assert program.pi_estimate == serial.pi_estimate

    def test_all_results_despite_slow_signin(self, tmp_path):
        """A cluster with one slave still completes a multi-task job."""
        flags = ["--pi-samples", "10000", "--pi-tasks", "5"]
        with LocalCluster(PiEstimator, flags, n_slaves=1) as cluster:
            program = cluster.run()
        serial = run_program(PiEstimator, flags, impl="serial")
        assert program.pi_estimate == serial.pi_estimate


class TestStartupProtocol:
    def test_runfile_handshake(self, tmp_path, small_corpus):
        """Program 3 step 2-3: master writes host:port to the runfile."""
        root, _ = small_corpus
        runfile = str(tmp_path / "master.run")
        cluster = LocalCluster(
            WordCountCombined,
            [root, str(tmp_path / "out")],
            n_slaves=1,
            opt_overrides={"runfile": runfile},
        )
        cluster.start()
        try:
            content = open(runfile).read().strip()
            host, port = content.rsplit(":", 1)
            assert int(port) == cluster.backend.rpc.port
        finally:
            cluster.stop()
        assert not os.path.exists(runfile)  # removed on close

    def test_main_class_must_be_importable(self):
        class Local(WordCountCombined):
            pass

        Local.__module__ = "__main__"
        with pytest.raises(ClusterError, match="importable"):
            program_spec(Local)

    def test_too_few_slaves_times_out(self, small_corpus, tmp_path, monkeypatch):
        """If slaves cannot sign in, start() fails loudly."""
        import repro.runtime.cluster as cluster_mod

        monkeypatch.setattr(cluster_mod, "SIGNIN_TIMEOUT", 2.0)
        root, _ = small_corpus

        broken = LocalCluster(
            WordCountCombined, [root, str(tmp_path / "o")], n_slaves=1
        )
        # Point the slaves at a black-hole master address by breaking
        # the spawn: use a bogus spec module.
        monkeypatch.setattr(
            cluster_mod, "program_spec", lambda cls: "no.such.module:Nope"
        )
        with pytest.raises(ClusterError, match="signed in"):
            broken.start()
        broken.stop()


class TestTypedSerializersDistributed:
    def test_typed_codecs_across_processes(self, small_corpus, tmp_path):
        """Serializer names ride in task descriptors; slave processes
        must encode/decode the binary format identically."""
        from repro.apps.wordcount import WordCountCombined
        from tests.integration.programs import TypedWordCount

        root, _ = small_corpus
        typed = run_program  # alias for line length
        with LocalCluster(
            TypedWordCount, [root, str(tmp_path / "t")], n_slaves=2
        ) as cluster:
            distributed = cluster.run()
        serial = typed(
            WordCountCombined, [root, str(tmp_path / "s")], impl="serial"
        )
        assert dict(distributed.output_data.iterdata()) == output_counts(serial)
