"""The documented command-line workflows, end to end in subprocesses.

These tests exercise exactly what README/Program 3 tell users to type:
run a program module serially, then distribute it by starting a master
that writes a runfile and slaves that join with nothing but the
address in it.
"""

import os
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.integration


def run_cli(args, timeout=120, **kw):
    return subprocess.run(
        [sys.executable, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        **kw,
    )


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "input.txt"
    path.write_text("alpha beta\nbeta gamma gamma\n")
    return str(path)


def read_counts(out_dir):
    counts = {}
    for name in os.listdir(out_dir):
        if name.startswith("."):
            continue
        with open(os.path.join(out_dir, name)) as f:
            for line in f:
                word, value = line.rstrip("\n").split("\t")
                counts[word] = int(value)
    return counts


EXPECTED = {"alpha": 1, "beta": 2, "gamma": 2}


class TestSerialCli:
    def test_module_invocation(self, corpus_file, tmp_path):
        out = str(tmp_path / "out")
        result = run_cli(
            ["-m", "repro.apps.wordcount", corpus_file, out]
        )
        assert result.returncode == 0, result.stderr
        assert read_counts(out) == EXPECTED

    def test_mockparallel_invocation(self, corpus_file, tmp_path):
        out = str(tmp_path / "out")
        result = run_cli(
            ["-m", "repro.apps.wordcount", "--mrs", "mockparallel",
             corpus_file, out]
        )
        assert result.returncode == 0, result.stderr
        assert read_counts(out) == EXPECTED

    def test_bad_flag_reports_usage(self, corpus_file, tmp_path):
        result = run_cli(
            ["-m", "repro.apps.wordcount", "--mrs", "warpdrive",
             corpus_file, str(tmp_path / "o")]
        )
        assert result.returncode != 0
        assert "implementation" in result.stderr


class TestDistributedCli:
    def test_runfile_handshake_flow(self, corpus_file, tmp_path):
        """Program 3's logic: master writes host:port to a file; a
        slave joins knowing only that address; job completes."""
        out = str(tmp_path / "out")
        runfile = str(tmp_path / "master.run")
        shared = str(tmp_path / "shared")
        spec = "repro.apps.wordcount:WordCountCombined"

        master = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.slave_boot", spec,
             "--mrs", "master", "--mrs-runfile", runfile,
             "--mrs-tmpdir", shared, corpus_file, out],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        slave = None
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(runfile):
                assert master.poll() is None, master.communicate()[1]
                assert time.monotonic() < deadline, "runfile never appeared"
                time.sleep(0.1)
            address = open(runfile).read().strip()

            slave = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.slave_boot", spec,
                 "--mrs", "slave", "--mrs-master", address,
                 "--mrs-tmpdir", shared, corpus_file, out],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            stdout, stderr = master.communicate(timeout=90)
            assert master.returncode == 0, stderr
            assert read_counts(out) == EXPECTED
        finally:
            for process in (master, slave):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)
