"""Distributed failure semantics: retries, permanent failures,
error propagation to dependents."""

import pytest

from repro.core.job import JobError
from repro.runtime.cluster import LocalCluster
from tests.integration.programs import FailingMap, FlakyOnce

pytestmark = pytest.mark.integration


class TestPermanentFailure:
    def test_failing_map_raises_joberror_not_hang(self):
        """A task that fails on every attempt must surface as a
        JobError on wait() — including for the *dependent* reduce the
        program is actually waiting on — within the retry budget."""
        with LocalCluster(FailingMap, [], n_slaves=2) as cluster:
            with pytest.raises(JobError):
                cluster.run()

    def test_error_recorded_with_context(self):
        with LocalCluster(FailingMap, [], n_slaves=2) as cluster:
            try:
                cluster.run()
            except JobError as exc:
                assert "failed" in str(exc)
            else:  # pragma: no cover
                pytest.fail("expected JobError")


class TestRetry:
    def test_flaky_task_retried_to_success(self):
        """One failed attempt requeues the task; the job completes with
        correct output."""
        with LocalCluster(FlakyOnce, [], n_slaves=2) as cluster:
            program = cluster.run()
        counts = dict(program.output_data.iterdata())
        assert counts == {0: 3, 1: 3}
