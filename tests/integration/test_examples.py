"""Every example script must run end-to-end (guards against rot)."""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.integration

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "identical output" in result.stdout

    def test_pi_estimation(self):
        result = run_example("pi_estimation.py", "200000")
        assert result.returncode == 0, result.stderr
        assert "Hadoop (modeled)" in result.stdout

    def test_pso_rosenbrock(self):
        result = run_example("pso_rosenbrock.py", "10")
        assert result.returncode == 0, result.stderr
        assert "bit-identical" in result.stdout

    def test_kmeans(self):
        result = run_example("kmeans_clustering.py")
        assert result.returncode == 0, result.stderr
        assert "converged" in result.stdout

    def test_hadoop_comparison(self):
        result = run_example("hadoop_comparison.py", "15")
        assert result.returncode == 0, result.stderr
        assert "identical counts" in result.stdout or "identical output" in (
            result.stdout
        )

    def test_optimization_suite(self):
        result = run_example("optimization_suite.py", "sphere", "5")
        assert result.returncode == 0, result.stderr
        assert "final:" in result.stdout

    def test_parameter_sweep(self):
        result = run_example("parameter_sweep.py", "150")
        assert result.returncode == 0, result.stderr
        assert "max |Δmean|" in result.stdout
