"""Command-line option parsing."""

import pytest

from repro.core.options import default_options, make_parser, parse_options


class TestParseOptions:
    def test_defaults(self):
        opts, args = parse_options(None, [])
        assert opts.mrs_impl == "serial"
        assert opts.seed == 0
        assert opts.data_plane == "file"
        assert args == []

    def test_implementation_case_insensitive(self):
        opts, _ = parse_options(None, ["--mrs", "MockParallel"])
        assert opts.mrs_impl == "mockparallel"

    def test_unknown_implementation_rejected(self):
        with pytest.raises(SystemExit):
            parse_options(None, ["--mrs", "quantum"])

    def test_positional_args_pass_through(self):
        _, args = parse_options(None, ["in.txt", "out"])
        assert args == ["in.txt", "out"]

    def test_stray_flags_rejected(self):
        with pytest.raises(SystemExit):
            parse_options(None, ["--not-a-real-flag"])

    def test_master_slave_options(self):
        opts, _ = parse_options(
            None,
            ["--mrs", "slave", "--mrs-master", "10.0.0.1:4000"],
        )
        assert opts.master == "10.0.0.1:4000"

    def test_numeric_options(self):
        opts, _ = parse_options(
            None, ["--mrs-seed", "99", "--mrs-reduce-tasks", "7"]
        )
        assert opts.seed == 99
        assert opts.reduce_tasks == 7

    def test_data_plane_choices(self):
        opts, _ = parse_options(None, ["--mrs-data-plane", "http"])
        assert opts.data_plane == "http"
        with pytest.raises(SystemExit):
            parse_options(None, ["--mrs-data-plane", "carrier-pigeon"])


class TestProgramOptions:
    def test_program_parser_hook(self):
        class Prog:
            @classmethod
            def update_parser(cls, parser):
                parser.add_argument("--flavor", default="plain")
                return parser

        opts, _ = parse_options(Prog, ["--flavor", "spicy"])
        assert opts.flavor == "spicy"

    def test_program_flags_and_mrs_flags_coexist(self):
        class Prog:
            @classmethod
            def update_parser(cls, parser):
                parser.add_argument("--n", type=int, default=1)
                return parser

        opts, args = parse_options(
            Prog, ["--mrs-seed", "3", "--n", "5", "input", "output"]
        )
        assert (opts.seed, opts.n) == (3, 5)
        assert args == ["input", "output"]


class TestDefaultOptions:
    def test_overrides_applied(self):
        opts = default_options(seed=123, custom_thing="x")
        assert opts.seed == 123
        assert opts.custom_thing == "x"

    def test_parser_builds_without_program(self):
        assert make_parser(None) is not None
