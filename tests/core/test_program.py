"""MapReduce program base class defaults and helpers."""

import os

import pytest

from repro.core.main import run_program
from repro.core.options import default_options
from repro.core.program import IterativeMR, MapReduce, expand_input_paths


class Minimal(MapReduce):
    def map(self, key, value):
        yield (value, 1)

    def reduce(self, key, values):
        yield sum(values)


class TestDefaults:
    def test_map_reduce_required(self):
        prog = MapReduce(default_options(), [])
        with pytest.raises(NotImplementedError):
            list(prog.map(0, "x"))
        with pytest.raises(NotImplementedError):
            list(prog.reduce("x", iter([1])))

    def test_bypass_not_implemented_by_default(self):
        with pytest.raises(NotImplementedError):
            MapReduce(default_options(), []).bypass()

    def test_default_partition_is_stable_hash(self):
        prog = Minimal(default_options(), [])
        assert prog.partition("word", 4) == prog.partition("word", 4)
        assert 0 <= prog.partition("word", 4) < 4

    def test_output_dir_is_last_arg(self):
        prog = Minimal(default_options(), ["a", "b", "outdir"])
        assert prog.output_dir == "outdir"

    def test_input_data_requires_two_args(self):
        prog = Minimal(default_options(), ["only-one"])
        with pytest.raises(ValueError, match="usage"):
            prog.input_data(None)


class TestRandomMethod:
    def test_seed_prefixes_streams(self):
        p1 = Minimal(default_options(seed=1), [])
        p2 = Minimal(default_options(seed=2), [])
        assert p1.random(5).random() != p2.random(5).random()

    def test_same_seed_same_stream(self):
        p1 = Minimal(default_options(seed=9), [])
        p2 = Minimal(default_options(seed=9), [])
        assert p1.random(1, 2).random() == p2.random(1, 2).random()

    def test_numpy_random(self):
        prog = Minimal(default_options(seed=4), [])
        assert (prog.numpy_random(1).random(3) == prog.numpy_random(1).random(3)).all()


class TestExpandInputPaths:
    def test_plain_file(self, text_file):
        assert expand_input_paths([text_file]) == [text_file]

    def test_directory_walk_sorted(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.txt").write_text("b")
        (tmp_path / "a.txt").write_text("a")
        (tmp_path / "sub" / "c.txt").write_text("c")
        found = expand_input_paths([str(tmp_path)])
        names = [os.path.basename(p) for p in found]
        assert names == ["a.txt", "b.txt", "c.txt"]

    def test_glob_pattern(self, tmp_path):
        for name in ("x1.log", "x2.log", "y.txt"):
            (tmp_path / name).write_text("data")
        found = expand_input_paths([str(tmp_path / "x*.log")])
        assert len(found) == 2

    def test_missing_input_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            expand_input_paths([str(tmp_path / "absent*.txt")])

    def test_urls_pass_through(self):
        url = "http://host:1/data.mrsb"
        assert expand_input_paths([url]) == [url]

    def test_order_preserved_across_arguments(self, tmp_path):
        a = tmp_path / "zz.txt"
        b = tmp_path / "aa.txt"
        a.write_text("1")
        b.write_text("2")
        assert expand_input_paths([str(a), str(b)]) == [str(a), str(b)]


class TestDefaultRun:
    def test_end_to_end_writes_output_dir(self, text_file, out_dir):
        prog = run_program(Minimal, [text_file, out_dir], impl="serial")
        pairs = dict(prog.output_data.data())
        assert pairs["the quick brown fox"] == 1
        assert os.path.isdir(out_dir)

    def test_reduce_tasks_option_respected(self, text_file, out_dir):
        prog = run_program(
            Minimal, [text_file, out_dir], impl="serial", reduce_tasks=3
        )
        assert prog.output_data.splits == 3


class CountDown(IterativeMR):
    """Iterative program that queues local maps until a counter hits 0."""

    def __init__(self, opts, args):
        super().__init__(opts, args)
        self.remaining = 4
        self.consumed = []

    def noop_map(self, key, value):
        yield (key, value + 1)

    def producer(self, job):
        if self.remaining <= 0:
            return []
        source = job.local_data([(0, self.remaining)])
        self.remaining -= 1
        return [job.map_data(source, self.noop_map, splits=1)]

    def consumer(self, dataset):
        self.consumed.append(dataset.data())
        return True


class TestIterativeMR:
    def test_producer_consumer_loop(self):
        prog = run_program(CountDown, [], impl="serial")
        assert len(prog.consumed) == 4
        assert prog.consumed[0] == [(0, 5)]

    def test_consumer_can_stop_early(self):
        class StopAtTwo(CountDown):
            def __init__(self, opts, args):
                super().__init__(opts, args)
                self.remaining = 100

            def consumer(self, dataset):
                self.consumed.append(dataset)
                return len(self.consumed) < 2

        prog = run_program(StopAtTwo, [], impl="serial")
        # qmax lookahead means at most consumed + qmax were produced.
        assert 2 <= len(prog.consumed) <= 2 + prog.iterative_qmax
