"""Job facade: dataset registry, queueing, wait semantics."""

import pytest

from repro.core.job import Job, JobError
from repro.core.main import run_program
from repro.core.options import default_options
from repro.core.program import MapReduce
from repro.runtime.serial import SerialBackend


class Doubler(MapReduce):
    def map(self, key, value):
        yield (key, value * 2)

    def reduce(self, key, values):
        yield sum(values)

    def bad_map(self, key, value):
        raise RuntimeError("intentional failure")


@pytest.fixture
def job():
    program = Doubler(default_options(), [])
    return Job(SerialBackend(program), program), program


class TestDatasetCreation:
    def test_local_data_registered(self, job):
        j, _ = job
        ds = j.local_data([("a", 1)])
        assert j.get_dataset(ds.id) is ds

    def test_map_data_is_lazy(self, job):
        j, p = job
        source = j.local_data([(1, 1)])
        mapped = j.map_data(source, p.map)
        assert not mapped.complete  # queued, not computed

    def test_wait_completes_queued_chain(self, job):
        j, p = job
        source = j.local_data([(1, 1), (2, 2)], splits=2)
        mapped = j.map_data(source, p.map)
        reduced = j.reduce_data(mapped, p.reduce)
        done = j.wait(reduced)
        assert reduced in done
        assert sorted(reduced.data()) == [(1, 2), (2, 4)]

    def test_wait_empty_is_noop(self, job):
        j, _ = job
        assert j.wait() == []

    def test_duplicate_ids_rejected(self, job):
        j, _ = job
        ds = j.local_data([("a", 1)])
        with pytest.raises(ValueError, match="duplicate"):
            j._register(ds)

    def test_default_splits_from_backend(self, job):
        j, p = job
        source = j.local_data([(1, 1)])
        mapped = j.map_data(source, p.map)
        assert mapped.splits == SerialBackend.default_splits


class TestFailurePropagation:
    def test_failed_task_raises_joberror_on_wait(self, job):
        j, p = job
        source = j.local_data([(1, 1)])
        mapped = j.map_data(source, p.bad_map)
        with pytest.raises(JobError, match="intentional failure"):
            j.wait(mapped)

    def test_error_recorded_on_dataset(self, job):
        j, p = job
        source = j.local_data([(1, 1)])
        mapped = j.map_data(source, p.bad_map)
        with pytest.raises(JobError):
            j.wait(mapped)
        assert mapped.error is not None


class TestProgress:
    def test_progress_zero_then_one(self, job):
        j, p = job
        source = j.local_data([(1, 1)])
        mapped = j.map_data(source, p.map)
        assert j.progress(mapped) == 0.0
        j.wait(mapped)
        assert j.progress(mapped) == 1.0


class TestRemoveData:
    def test_remove_clears_pairs(self, job):
        j, p = job
        source = j.local_data([(1, 1)])
        mapped = j.map_data(source, p.map)
        j.wait(mapped)
        assert mapped.data()
        j.remove_data(mapped)
        assert mapped.data() == []


class ChainProgram(MapReduce):
    """Three chained operations queued before any wait."""

    def map(self, key, value):
        yield (key, value + 1)

    def reduce(self, key, values):
        yield max(values)

    def run(self, job):
        source = job.local_data([(i, 0) for i in range(4)], splits=2)
        a = job.map_data(source, self.map)
        b = job.map_data(a, self.map)
        c = job.reduce_data(b, self.reduce)
        job.wait(c)
        self.result = sorted(c.data())
        return 0


def test_deep_pipeline_queues_then_resolves():
    prog = run_program(ChainProgram, [], impl="serial")
    assert prog.result == [(i, 2) for i in range(4)]


def test_deep_pipeline_mockparallel_matches():
    a = run_program(ChainProgram, [], impl="serial").result
    b = run_program(ChainProgram, [], impl="mockparallel").result
    assert a == b
