"""Property-based tests of core dataflow invariants."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dataset import LocalData, make_map_data, make_reduce_data
from repro.core.job import Job
from repro.core.options import default_options
from repro.core.program import MapReduce
from repro.io.partition import hash_partition
from repro.runtime.serial import SerialBackend


class Identity(MapReduce):
    def map(self, key, value):
        yield (key, value)

    def reduce(self, key, values):
        for value in values:
            yield value

    def count_reduce(self, key, values):
        yield sum(1 for _ in values)


def make_job():
    program = Identity(default_options(), [])
    return Job(SerialBackend(program), program), program


pairs_strategy = st.lists(
    st.tuples(
        st.one_of(st.integers(min_value=-50, max_value=50),
                  st.text(max_size=6)),
        st.integers(),
    ),
    min_size=1,
    max_size=40,
)


@given(pairs_strategy, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_localdata_partitions_all_pairs(pairs, splits):
    """Every pair lands in exactly one split; none invented or lost."""
    data = LocalData(pairs, splits=splits)
    reassembled = []
    for split in range(splits):
        reassembled.extend(data.splitdata(split))
    assert collections.Counter(map(repr, reassembled)) == collections.Counter(
        map(repr, pairs)
    )


@given(pairs_strategy, st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_map_identity_preserves_multiset(pairs, splits):
    """An identity map over any partitioning preserves the multiset."""
    job, program = make_job()
    source = job.local_data(pairs, splits=min(splits, len(pairs)))
    mapped = job.map_data(source, program.map, splits=splits)
    job.wait(mapped)
    assert collections.Counter(map(repr, mapped.data())) == (
        collections.Counter(map(repr, pairs))
    )


@given(pairs_strategy, st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_reduce_counts_match_key_multiplicity(pairs, map_splits, reduce_splits):
    """Counting reduce == Counter over keys, for any decomposition."""
    job, program = make_job()
    source = job.local_data(pairs, splits=min(map_splits, len(pairs)))
    mapped = job.map_data(source, program.map, splits=map_splits)
    reduced = job.reduce_data(mapped, program.count_reduce, splits=reduce_splits)
    job.wait(reduced)
    expected = collections.Counter(key for key, _ in pairs)
    got = {}
    for key, count in reduced.data():
        assert key not in got, "same key reduced in two splits"
        got[key] = count
    assert got == dict(expected)


@given(pairs_strategy, st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_same_key_same_split(pairs, splits):
    """After a map, all occurrences of one key share a split column."""
    job, program = make_job()
    source = job.local_data(pairs, splits=min(3, len(pairs)))
    mapped = job.map_data(source, program.map, splits=splits)
    job.wait(mapped)
    location = {}
    for split in range(splits):
        for key, _ in mapped.splitdata(split):
            token = repr(key)
            assert location.setdefault(token, split) == split
            assert split == hash_partition(key, splits)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_chained_identities_stable(data):
    """N chained identity maps leave the multiset unchanged."""
    pairs = data.draw(pairs_strategy)
    depth = data.draw(st.integers(min_value=1, max_value=4))
    job, program = make_job()
    dataset = job.local_data(pairs, splits=2)
    for _ in range(depth):
        dataset = job.map_data(dataset, program.map, splits=3)
    job.wait(dataset)
    assert collections.Counter(map(repr, dataset.data())) == (
        collections.Counter(map(repr, pairs))
    )
