"""Operation descriptors: wire round-trips and method resolution."""

import pytest

from repro.core.operations import (
    MapOperation,
    Operation,
    ReduceMapOperation,
    ReduceOperation,
    callable_name,
)


class TestCallableName:
    def test_none_passthrough(self):
        assert callable_name(None) is None

    def test_string_passthrough(self):
        assert callable_name("map") == "map"

    def test_function_name(self):
        def my_func():
            pass

        assert callable_name(my_func) == "my_func"

    def test_bound_method(self):
        class P:
            def reduce(self):
                pass

        assert callable_name(P().reduce) == "reduce"

    def test_unnameable_rejected(self):
        with pytest.raises(TypeError):
            callable_name(42)


class TestWireRoundTrip:
    def test_map_operation(self):
        op = MapOperation("map", splits=3, combine_name="combine")
        clone = Operation.from_dict(op.to_dict())
        assert isinstance(clone, MapOperation)
        assert clone.map_name == "map"
        assert clone.splits == 3
        assert clone.combine_name == "combine"
        assert clone.parter_name == "partition"

    def test_reduce_operation(self):
        op = ReduceOperation("reduce", splits=2, parter_name="mod_partition")
        clone = Operation.from_dict(op.to_dict())
        assert isinstance(clone, ReduceOperation)
        assert clone.reduce_name == "reduce"
        assert clone.parter_name == "mod_partition"

    def test_reducemap_operation(self):
        op = ReduceMapOperation("reduce", "map", splits=4)
        clone = Operation.from_dict(op.to_dict())
        assert isinstance(clone, ReduceMapOperation)
        assert (clone.reduce_name, clone.map_name) == ("reduce", "map")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown operation"):
            Operation.from_dict({"kind": "mystery", "splits": 1})

    def test_dict_is_xmlrpc_safe(self):
        """Only scalars/strings/None — serializable by xmlrpc."""
        d = ReduceMapOperation("r", "m", splits=2, combine_name=None).to_dict()
        for value in d.values():
            assert value is None or isinstance(value, (str, int))


class TestValidation:
    def test_rejects_nonpositive_splits(self):
        with pytest.raises(ValueError):
            MapOperation("map", splits=0)

    def test_resolve_finds_method(self):
        class P:
            def map(self, k, v):
                return []

        op = MapOperation("map", splits=1)
        assert callable(op.resolve(P(), "map"))

    def test_resolve_missing_method_is_informative(self):
        class P:
            pass

        op = MapOperation("mapper", splits=1)
        with pytest.raises(AttributeError, match="mapper"):
            op.resolve(P(), "mapper")

    def test_resolve_none_is_none(self):
        op = MapOperation("map", splits=1)
        assert op.resolve(object(), None) is None
