"""Independent pseudorandom streams: injectivity and determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.random_streams import (
    MAX_OFFSETS,
    numpy_stream,
    random_stream,
    spawn_seeds,
    stream_seed,
)

offsets_strategy = st.lists(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    max_size=8,
)


class TestStreamSeed:
    def test_no_offsets(self):
        assert stream_seed() == 1

    def test_length_matters(self):
        assert stream_seed(0) != stream_seed(0, 0)
        assert stream_seed() != stream_seed(0)

    def test_order_matters(self):
        assert stream_seed(1, 2) != stream_seed(2, 1)

    def test_negative_offsets_fold_to_distinct_lanes(self):
        assert stream_seed(-1) != stream_seed(1)
        assert stream_seed(-1) == stream_seed(2**64 - 1)  # two's complement

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            stream_seed(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            stream_seed(1.5)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            stream_seed(2**64)
        with pytest.raises(ValueError):
            stream_seed(-(2**63) - 1)

    def test_paper_scale_300_offsets(self):
        """The paper: 'around 300 arguments that are each 64-bit
        integers'."""
        offsets = list(range(MAX_OFFSETS))
        seed = stream_seed(*offsets)
        assert seed != stream_seed(*offsets[:-1])
        assert seed.bit_length() <= 64 * MAX_OFFSETS + 1


class TestRandomStream:
    def test_same_offsets_same_sequence(self):
        a = [random_stream(3, 4).random() for _ in range(3)]
        b = [random_stream(3, 4).random() for _ in range(3)]
        assert a == b

    def test_different_offsets_different_sequences(self):
        a = random_stream(1).random()
        b = random_stream(2).random()
        assert a != b

    def test_streams_are_independent_objects(self):
        s1 = random_stream(9)
        s2 = random_stream(9)
        s1.random()
        assert s2.random() == random_stream(9).random()

    def test_task_style_usage(self):
        """One stream per (seed, dataset, task): all distinct."""
        draws = {
            random_stream(42, ds, task).random()
            for ds in range(5)
            for task in range(5)
        }
        assert len(draws) == 25


class TestNumpyStream:
    def test_deterministic(self):
        a = numpy_stream(1, 2).random(4)
        b = numpy_stream(1, 2).random(4)
        assert (a == b).all()

    def test_distinct_from_other_offsets(self):
        assert numpy_stream(1).random() != numpy_stream(2).random()

    def test_distinct_from_stdlib_stream(self):
        # Same offsets, different generator families: no accidental
        # coupling expected (sanity, not a hard guarantee).
        assert numpy_stream(5).random() != random_stream(5).random()


class TestSpawnSeeds:
    def test_count_and_distinctness(self):
        seeds = list(spawn_seeds(7, 10))
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_matches_stream_seed(self):
        assert list(spawn_seeds(3, 2)) == [stream_seed(3, 0), stream_seed(3, 1)]


@given(offsets_strategy, offsets_strategy)
@settings(max_examples=200)
def test_injectivity_property(a, b):
    """Distinct offset tuples (mod 64-bit folding) give distinct seeds."""
    fold = lambda xs: tuple(x & (2**64 - 1) for x in xs)
    if fold(a) != fold(b):
        assert stream_seed(*a) != stream_seed(*b)
    else:
        assert stream_seed(*a) == stream_seed(*b)


@given(offsets_strategy)
def test_seed_positive(offsets):
    assert stream_seed(*offsets) >= 1
