"""Dataset grid semantics: LocalData, FileData, computed datasets."""

import pytest

from repro.core.dataset import (
    BaseDataset,
    FileData,
    LocalData,
    make_map_data,
    make_reduce_data,
    make_reducemap_data,
)
from repro.core.operations import MapOperation
from repro.io.bucket import Bucket


class TestBaseDataset:
    def test_bucket_get_or_create(self):
        ds = BaseDataset(splits=2)
        bucket = ds.bucket(0, 1)
        assert ds.bucket(0, 1) is bucket

    def test_buckets_for_split(self):
        ds = BaseDataset(splits=2)
        ds.bucket(0, 0)
        ds.bucket(1, 0)
        ds.bucket(0, 1)
        assert [b.source for b in ds.buckets_for_split(0)] == [0, 1]

    def test_rejects_negative_splits(self):
        with pytest.raises(ValueError):
            BaseDataset(splits=-1)

    def test_zero_splits_allowed_but_not_with_pairs(self):
        # splits=0 is a legal empty dataset (its dependents have no
        # tasks); partitioning actual pairs into it is not.
        assert BaseDataset(splits=0).splits == 0
        assert LocalData([], splits=0).complete
        with pytest.raises(ValueError):
            LocalData([("k", 1)], splits=0)

    def test_unique_ids(self):
        assert BaseDataset().id != BaseDataset().id

    def test_n_sources(self):
        ds = BaseDataset()
        assert ds.n_sources == 0
        ds.bucket(3, 0)
        assert ds.n_sources == 4

    def test_clear_keeps_urls(self):
        ds = BaseDataset()
        bucket = Bucket(0, 0, url="file:/x")
        bucket.addpair(("a", 1))
        ds.add_bucket(bucket)
        ds.clear()
        assert len(ds.existing_buckets()[0]) == 0
        assert ds.existing_buckets()[0].url == "file:/x"


class TestLocalData:
    def test_round_robin_default(self):
        ds = LocalData([("a", 1), ("b", 2), ("c", 3)], splits=2)
        assert ds.splitdata(0) == [("a", 1), ("c", 3)]
        assert ds.splitdata(1) == [("b", 2)]

    def test_custom_parter(self):
        ds = LocalData(
            [(0, "x"), (1, "y"), (2, "z")],
            splits=2,
            parter=lambda key, n: key % n,
        )
        assert ds.splitdata(0) == [(0, "x"), (2, "z")]

    def test_all_split_columns_exist_even_empty(self):
        ds = LocalData([("only", 1)], splits=4)
        for split in range(4):
            assert ds.buckets_for_split(split)

    def test_complete_on_creation(self):
        assert LocalData([("a", 1)]).complete

    def test_rejects_non_pairs(self):
        with pytest.raises(TypeError, match="item 1"):
            LocalData([("ok", 1), "not-a-pair"])

    def test_rejects_out_of_range_parter(self):
        with pytest.raises(ValueError, match="outside"):
            LocalData([("a", 1)], splits=2, parter=lambda k, n: 7)

    def test_data_returns_everything(self):
        pairs = [(i, i * i) for i in range(7)]
        ds = LocalData(pairs, splits=3)
        assert sorted(ds.data()) == pairs


class TestFileData:
    def test_one_bucket_per_file(self, text_file):
        ds = FileData([text_file, text_file])
        assert ds.splits == 2
        assert ds.complete

    def test_urls_get_file_scheme(self, text_file):
        ds = FileData([text_file])
        assert ds.existing_buckets()[0].url == "file:" + text_file

    def test_existing_scheme_preserved(self):
        ds = FileData(["http://host:1/x.mrsb"])
        assert ds.existing_buckets()[0].url == "http://host:1/x.mrsb"

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            FileData([])

    def test_fetchall_loads_lines(self, text_file):
        ds = FileData([text_file])
        ds.fetchall()
        pairs = ds.data()
        assert pairs[0] == (0, "the quick brown fox")


class TestComputedFactories:
    def test_map_data_tasks_follow_input_splits(self):
        source = LocalData([(i, i) for i in range(6)], splits=3)
        ds = make_map_data(source, "map", splits=2)
        assert ds.ntasks == 3
        assert ds.splits == 2
        assert ds.operation.map_name == "map"
        assert not ds.complete

    def test_callable_names_extracted(self):
        class Prog:
            def my_map(self):
                pass

        source = LocalData([(0, 0)])
        ds = make_map_data(source, Prog.my_map, splits=1)
        assert ds.operation.map_name == "my_map"

    def test_reduce_data(self):
        source = LocalData([(0, 0)], splits=2)
        ds = make_reduce_data(source, "reduce", splits=5)
        assert ds.operation.reduce_name == "reduce"
        assert ds.ntasks == 2
        assert ds.splits == 5

    def test_reducemap_data(self):
        source = LocalData([(0, 0)])
        ds = make_reducemap_data(source, "reduce", "map", splits=2)
        assert ds.operation.reduce_name == "reduce"
        assert ds.operation.map_name == "map"

    def test_affinity_group_defaults_to_id(self):
        ds = BaseDataset()
        assert ds.affinity_group == ds.id

    def test_id_prefixes_reflect_kind(self):
        source = LocalData([(0, 0)])
        assert make_map_data(source, "m", splits=1).id.startswith("map")
        assert make_reduce_data(source, "r", splits=1).id.startswith("reduce")
