"""The mrs.main dispatcher."""

import pytest

from repro.core.main import main, run_program
from repro.core.program import MapReduce


class Recorder(MapReduce):
    """Program that records which path ran."""

    def map(self, key, value):
        yield (key, value)

    def reduce(self, key, values):
        yield sum(values)

    def run(self, job):
        source = job.local_data([(0, 1), (1, 2)])
        out = job.reduce_data(job.map_data(source, self.map), self.reduce)
        job.wait(out)
        self.ran = "run"
        self.pairs = sorted(out.data())
        return 0

    def bypass(self):
        self.ran = "bypass"
        return 0


class Failing(Recorder):
    def run(self, job):
        return 3


class TestMainDispatch:
    def test_serial_default(self, capsys):
        status = main(Recorder, ["dummy_in", "dummy_out"])
        assert status == 0

    def test_explicit_serial(self):
        assert main(Recorder, ["--mrs", "serial", "a", "b"]) == 0

    def test_bypass_path(self):
        assert main(Recorder, ["--mrs", "bypass"]) == 0

    def test_nonzero_exit_propagates(self):
        assert main(Failing, []) == 3

    def test_bad_impl_exits(self):
        with pytest.raises(SystemExit):
            main(Recorder, ["--mrs", "nonsense"])

    def test_slave_requires_master_address(self):
        with pytest.raises(ValueError, match="mrs-master"):
            main(Recorder, ["--mrs", "slave"])

    def test_verbose_flag_accepted(self):
        assert main(Recorder, ["--mrs-verbose"]) == 0


class TestRunProgram:
    def test_returns_program_instance(self):
        prog = run_program(Recorder, [], impl="serial")
        assert prog.ran == "run"
        assert prog.pairs == [(0, 1), (1, 2)]

    def test_bypass_impl(self):
        prog = run_program(Recorder, [], impl="bypass")
        assert prog.ran == "bypass"

    def test_nonzero_status_raises(self):
        with pytest.raises(RuntimeError, match="status 3"):
            run_program(Failing, [], impl="serial")

    def test_opt_overrides_applied(self):
        prog = run_program(Recorder, [], impl="serial", seed=777)
        assert prog.opts.seed == 777

    def test_positional_args_separated(self):
        prog = run_program(Recorder, ["in.txt", "out"], impl="bypass")
        assert prog.args == ["in.txt", "out"]
