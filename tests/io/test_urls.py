"""URL-addressed bucket fetches over file and HTTP transports."""

import os

import pytest

from repro.comm.dataserver import DataServer
from repro.io.bucket import FileBucket
from repro.io.urls import FetchError, fetch_pairs, parse, path_of_file_url


@pytest.fixture
def bucket_file(tmp_path):
    path = str(tmp_path / "data.mrsb")
    bucket = FileBucket(path)
    bucket.addpair(("alpha", 1))
    bucket.addpair(("beta", [2, 3]))
    bucket.close_writer()
    return path


class TestFileUrls:
    def test_fetch_with_scheme(self, bucket_file):
        assert fetch_pairs("file:" + bucket_file) == [
            ("alpha", 1),
            ("beta", [2, 3]),
        ]

    def test_fetch_bare_path(self, bucket_file):
        assert fetch_pairs(bucket_file)[0] == ("alpha", 1)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fetch_pairs("file:" + str(tmp_path / "nope.mrsb"))

    def test_path_of_file_url(self):
        assert path_of_file_url("file:/a/b.txt") == "/a/b.txt"

    def test_path_of_http_url_rejected(self):
        with pytest.raises(ValueError):
            path_of_file_url("http://host/x")

    def test_text_file_reads_as_lines(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("hello world\n")
        assert fetch_pairs(str(path)) == [(0, "hello world")]


class TestHttpUrls:
    def test_fetch_over_dataserver(self, bucket_file, tmp_path):
        with DataServer(str(tmp_path)) as server:
            url = server.url_for(bucket_file)
            assert fetch_pairs(url) == [("alpha", 1), ("beta", [2, 3])]

    def test_missing_remote_file_raises_fetch_error(self, tmp_path):
        with DataServer(str(tmp_path)) as server:
            url = f"http://{server.host}:{server.port}/nothing.mrsb"
            with pytest.raises(FetchError):
                fetch_pairs(url)

    def test_dead_server_raises_fetch_error(self, bucket_file, tmp_path):
        server = DataServer(str(tmp_path))
        url = server.url_for(bucket_file)
        server.shutdown()
        with pytest.raises(FetchError):
            fetch_pairs(url)

    def test_format_inferred_from_url_path(self, tmp_path):
        (tmp_path / "plain.txt").write_text("line one\n")
        with DataServer(str(tmp_path)) as server:
            url = server.url_for(str(tmp_path / "plain.txt"))
            assert fetch_pairs(url) == [(0, "line one")]


class TestParse:
    def test_unsupported_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            fetch_pairs("ftp://host/file")

    def test_parse_preserves_components(self):
        parsed = parse("http://h:123/p/q.mrsb")
        assert parsed.netloc == "h:123"
        assert parsed.path == "/p/q.mrsb"
