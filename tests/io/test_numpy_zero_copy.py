"""The zero-copy NumPy data plane, layer by layer.

The ``numpy`` serializer's wire format, the process-wide zero-copy
knob, the scatter-writing ``BinWriter``, the mmap-backed ``BinReader``,
and the ``!II`` frame-limit diagnostics.  The invariant pinned
throughout: the zero-copy paths are *pure optimizations* — bytes on
disk and values decoded are identical with the knob on or off.
"""

import io
import os

import numpy as np
import pytest

from repro.io import formats, serializers
from repro.io.formats import BinReader, BinWriter
from repro.io.serializers import (
    NumpySerializer,
    dumps_parts_for,
    get_serializer,
    loads_view_for,
    set_zero_copy_mode,
    zero_copy_enabled,
    zero_copy_mode,
)


@pytest.fixture
def knob():
    """Restore the zero-copy mode (and its env mirror) after the test."""
    previous = zero_copy_mode()
    previous_env = os.environ.get("MRS_ZERO_COPY")
    yield
    set_zero_copy_mode(previous)
    if previous_env is None:
        os.environ.pop("MRS_ZERO_COPY", None)
    else:
        os.environ["MRS_ZERO_COPY"] = previous_env


ARRAYS = [
    np.arange(12, dtype=np.int64).reshape(3, 4),
    np.linspace(0.0, 1.0, 7),
    np.array(3.5),  # 0-d
    np.zeros((0, 7)),  # empty
    np.array([[1 + 2j, 3 - 4j]]),
    np.arange(8, dtype=np.uint8),
    np.ones((2, 3, 4), dtype=np.float32),
]


class TestNumpySerializer:
    @pytest.mark.parametrize("arr", ARRAYS, ids=lambda a: f"{a.dtype}{a.shape}")
    def test_roundtrip_preserves_dtype_shape_bytes(self, arr):
        out = NumpySerializer.roundtrip(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_noncontiguous_input_is_encoded_contiguously(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        for arr in (base[:, ::2], base.T, np.asfortranarray(base)):
            assert np.array_equal(NumpySerializer.roundtrip(arr), arr)

    def test_dumps_parts_concatenates_to_dumps(self):
        for arr in ARRAYS:
            parts = NumpySerializer.dumps_parts(arr)
            joined = b"".join(bytes(part) for part in parts)
            assert joined == NumpySerializer.dumps(arr)

    def test_loads_view_is_zero_copy(self):
        arr = np.arange(1000, dtype=np.float64)
        blob = NumpySerializer.dumps(arr)
        view = NumpySerializer.loads_view(memoryview(blob))
        assert np.array_equal(view, arr)
        # A view over immutable bytes must be read-only, not a copy.
        assert not view.flags.writeable
        assert view.base is not None

    def test_rejects_non_arrays_and_object_dtype(self):
        with pytest.raises(TypeError):
            NumpySerializer.dumps([1, 2, 3])
        with pytest.raises(TypeError):
            NumpySerializer.dumps(np.array([object()]))


class TestZeroCopyKnob:
    def test_invalid_mode_rejected(self, knob):
        with pytest.raises(ValueError):
            set_zero_copy_mode("sometimes")

    def test_set_mirrors_into_environment(self, knob):
        set_zero_copy_mode("off")
        assert os.environ["MRS_ZERO_COPY"] == "off"
        assert not zero_copy_enabled()
        set_zero_copy_mode("on")
        assert os.environ["MRS_ZERO_COPY"] == "on"
        assert zero_copy_enabled()

    def test_gating_helpers_follow_the_knob(self, knob):
        set_zero_copy_mode("on")
        assert dumps_parts_for(NumpySerializer) is not None
        assert loads_view_for(NumpySerializer) is not None
        # Serializers without buffer support never offer a fast path.
        assert dumps_parts_for(get_serializer("int")) is None
        set_zero_copy_mode("off")
        assert dumps_parts_for(NumpySerializer) is None
        assert loads_view_for(NumpySerializer) is None


def _write_mrsb(pairs, zero_copy):
    set_zero_copy_mode("on" if zero_copy else "off")
    buffer = io.BytesIO()
    writer = BinWriter(
        buffer,
        key_serializer=get_serializer("int"),
        value_serializer=NumpySerializer,
    )
    writer.writepairs(pairs)
    writer.finish()
    return buffer.getvalue()


class TestScatterWriter:
    def test_scatter_output_is_byte_identical_to_dumps_path(self, knob):
        rng = np.random.default_rng(7)
        pairs = [
            (i, rng.standard_normal((size, 5)))
            # Mix values below and above the scatter threshold so both
            # the coalescing and the direct-write branches run.
            for i, size in enumerate([3, 40_000, 1, 25_000, 0])
        ]
        assert _write_mrsb(pairs, zero_copy=True) == _write_mrsb(
            pairs, zero_copy=False
        )

    def test_writepair_matches_writepairs(self, knob):
        set_zero_copy_mode("on")
        pairs = [(0, np.arange(30_000, dtype=np.int64)), (1, np.eye(3))]
        buffer = io.BytesIO()
        writer = BinWriter(
            buffer,
            key_serializer=get_serializer("int"),
            value_serializer=NumpySerializer,
        )
        for pair in pairs:
            writer.writepair(pair)
        writer.finish()
        assert buffer.getvalue() == _write_mrsb(pairs, zero_copy=True)


class TestMmapReader:
    def _write_file(self, path, pairs):
        with open(path, "wb") as f:
            writer = BinWriter(
                f,
                key_serializer=get_serializer("int"),
                value_serializer=NumpySerializer,
            )
            writer.writepairs(pairs)
            writer.finish()

    def test_values_are_views_over_the_map(self, tmp_path, knob):
        set_zero_copy_mode("on")
        pairs = [(i, np.full((200, 4), float(i))) for i in range(5)]
        path = tmp_path / "blocks.mrsb"
        self._write_file(path, pairs)
        with open(path, "rb") as f:
            reader = BinReader(
                f,
                key_serializer=get_serializer("int"),
                value_serializer=NumpySerializer,
                use_mmap=True,
            )
            out = list(reader)
        assert [k for k, _ in out] == [0, 1, 2, 3, 4]
        for key, value in out:
            assert value.base is not None  # a view, not a copy
            assert np.array_equal(value, np.full((200, 4), float(key)))

    def test_views_survive_reader_close(self, tmp_path, knob):
        set_zero_copy_mode("on")
        arr = np.arange(4096, dtype=np.float64)
        path = tmp_path / "one.mrsb"
        self._write_file(path, [(7, arr)])
        with open(path, "rb") as f:
            reader = BinReader(
                f,
                key_serializer=get_serializer("int"),
                value_serializer=NumpySerializer,
                use_mmap=True,
            )
            (key, value), = list(reader)
            reader.close()
        # The mmap stays alive for as long as the view references it.
        assert np.array_equal(value, arr)

    def test_mmap_and_stream_paths_decode_identically(self, tmp_path, knob):
        set_zero_copy_mode("on")
        pairs = [(i, np.arange(i * 100, dtype=np.int32)) for i in range(1, 6)]
        path = tmp_path / "same.mrsb"
        self._write_file(path, pairs)
        results = []
        for use_mmap in (True, False):
            with open(path, "rb") as f:
                reader = BinReader(
                    f,
                    key_serializer=get_serializer("int"),
                    value_serializer=NumpySerializer,
                    use_mmap=use_mmap,
                )
                results.append([(k, v.tobytes()) for k, v in reader])
        assert results[0] == results[1]

    def test_non_file_objects_fall_back_silently(self, knob):
        set_zero_copy_mode("on")
        blob = _write_mrsb([(1, np.eye(2))], zero_copy=True)
        reader = BinReader(
            io.BytesIO(blob),
            key_serializer=get_serializer("int"),
            value_serializer=NumpySerializer,
            use_mmap=True,
        )
        (key, value), = list(reader)
        assert key == 1 and np.array_equal(value, np.eye(2))


class TestFrameLimit:
    def test_oversized_value_raises_with_record_and_size(
        self, monkeypatch, knob
    ):
        set_zero_copy_mode("off")
        monkeypatch.setattr(formats, "FRAME_LIMIT", 100)
        writer = BinWriter(
            io.BytesIO(),
            key_serializer=get_serializer("str"),
            value_serializer=get_serializer("raw"),
        )
        with pytest.raises(ValueError) as exc:
            writer.writepair(("big", b"x" * 200))
        message = str(exc.value)
        assert "'big'" in message and "value" in message
        assert "200 bytes" in message and "100 over" in message

    def test_oversized_value_raises_on_scatter_path(
        self, monkeypatch, knob
    ):
        set_zero_copy_mode("on")
        monkeypatch.setattr(formats, "FRAME_LIMIT", 100)
        writer = BinWriter(
            io.BytesIO(),
            key_serializer=get_serializer("int"),
            value_serializer=NumpySerializer,
        )
        with pytest.raises(ValueError) as exc:
            writer.writepair((9, np.zeros(1000)))
        assert "frame limit" in str(exc.value)

    def test_serializer_type_errors_are_not_swallowed(self, knob):
        set_zero_copy_mode("off")
        writer = BinWriter(
            io.BytesIO(), value_serializer=get_serializer("float")
        )
        with pytest.raises(Exception) as exc:
            writer.writepairs([("k", "not-a-float")])
        assert "frame limit" not in str(exc.value)
